"""Quickstart: build sparse tensors, contract them, inspect the run.

Covers the core public API:

* building tensors from coordinates, dense arrays and generators;
* ``repro.contract`` with the paper's engines;
* the per-stage profile every run returns;
* FROSTT ``.tns`` round-tripping.

Run: ``python examples/quickstart.py``
"""

import io

import numpy as np

from repro import SparseTensor, contract, random_tensor
from repro.tensor import read_tns, tns_string


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build tensors.
    # ------------------------------------------------------------------
    # Explicit coordinates: a tiny 4-way tensor like the paper's Fig. 1.
    x = SparseTensor(
        indices=[(0, 0, 1, 2), (0, 1, 0, 0), (1, 0, 0, 0), (1, 1, 1, 1)],
        values=[1.0, 2.0, 3.0, 4.0],
        shape=(2, 2, 2, 3),
    )
    print("X:", x)

    # A random second operand whose leading modes match X's trailing
    # modes — the contraction pairs those.
    y = random_tensor((2, 3, 4, 5), nnz=25, seed=0)
    print("Y:", y)

    # ------------------------------------------------------------------
    # 2. Contract: Z = X x_{2,3}^{0,1} Y  (sum over X's last two modes
    #    against Y's first two).
    # ------------------------------------------------------------------
    result = contract(x, y, cx=(2, 3), cy=(0, 1), method="sparta")
    z = result.tensor
    print("Z:", z, "=> modes are X's free (2,2) then Y's free (4,5)")

    # Every engine computes the same thing; "dense" is the reference.
    for method in ("spa", "coo_hta", "vectorized", "dense"):
        other = contract(x, y, (2, 3), (0, 1), method=method)
        assert other.tensor.allclose(z), method
    print("all engines agree with the dense tensordot reference")

    # ------------------------------------------------------------------
    # 3. Inspect the five-stage profile (paper Figure 1 / Figure 2).
    # ------------------------------------------------------------------
    print("\nstage breakdown of the sparta run:")
    for stage, frac in result.profile.stage_fractions().items():
        print(f"  {stage.value:18s} {100 * frac:5.1f}%")
    print("operation counters:", {
        k: v for k, v in result.profile.counters.items()
        if k in ("products", "search_probes", "nnz_z")
    })

    # ------------------------------------------------------------------
    # 4. FROSTT .tns round trip.
    # ------------------------------------------------------------------
    text = tns_string(z)
    z_back = read_tns(io.StringIO(text), shape=z.shape)
    assert z_back.allclose(z)
    print(f"\n.tns round trip ok ({len(text.splitlines())} lines)")

    # ------------------------------------------------------------------
    # 5. Dense interop.
    # ------------------------------------------------------------------
    ref = np.tensordot(x.to_dense(), y.to_dense(), axes=((2, 3), (0, 1)))
    assert np.allclose(z.to_dense(), ref)
    print("matches numpy.tensordot:", True)


if __name__ == "__main__":
    main()
