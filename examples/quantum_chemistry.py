"""Quantum chemistry: element-sparse CCSD-style contractions with cutoff.

The paper's Uracil experiments come from coupled-cluster amplitudes made
element-sparse by truncating magnitudes below 1e-8 ("verified by
chemists"). This example builds a synthetic T2 amplitude tensor and a
two-electron integral block, runs the particle-particle ladder term

    W[i, j, c, d] = sum_{a, b} T2[i, j, a, b] * V[a, b, c, d]

with Sparta, and sweeps the cutoff to show the sparsity/accuracy trade:
looser cutoffs shrink the tensors (and the contraction work) while the
result drifts only slightly from the untruncated answer.

Run: ``python examples/quantum_chemistry.py``
"""

import time

import numpy as np

from repro import contract
from repro.datasets import eri_tensor, t2_amplitudes


def main() -> None:
    nocc, nvirt = 12, 22

    # The untruncated (cutoff ~ 0) reference.
    t2_full = t2_amplitudes(nocc, nvirt, cutoff=1e-300, decay=0.8, seed=1)
    v_full = eri_tensor(nocc, nvirt, cutoff=1e-300, decay=1.0, seed=2)
    ref = contract(
        t2_full, v_full, (2, 3), (0, 1), method="vectorized"
    ).tensor.to_dense()
    ref_norm = np.linalg.norm(ref)

    print(f"T2 {t2_full.shape}, V {v_full.shape}")
    print(
        f"{'cutoff':>8} {'T2 nnz':>8} {'V nnz':>8} {'density':>8} "
        f"{'time (s)':>9} {'rel error':>10}"
    )
    for cutoff in (1e-10, 1e-8, 1e-6, 1e-4, 1e-3):
        t2 = t2_full.prune(cutoff)
        v = v_full.prune(cutoff)
        t0 = time.perf_counter()
        w = contract(t2, v, (2, 3), (0, 1), method="sparta")
        dt = time.perf_counter() - t0
        err = np.linalg.norm(w.tensor.to_dense() - ref) / ref_norm
        print(
            f"{cutoff:8.0e} {t2.nnz:8d} {v.nnz:8d} "
            f"{t2.density:8.3f} {dt:9.3f} {err:10.2e}"
        )

    # The five-stage profile of the last run (cf. §5.2's stage shares).
    print("\nsparta stage shares at cutoff 1e-3:")
    t2 = t2_full.prune(1e-3)
    v = v_full.prune(1e-3)
    res = contract(
        t2, v, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
    )
    for stage, frac in res.profile.stage_fractions().items():
        print(f"  {stage.value:18s} {100 * frac:5.1f}%")


if __name__ == "__main__":
    main()
