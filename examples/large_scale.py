"""Large-scale contraction with the vectorized fast path.

The looped engines are faithful to the paper's algorithms; the
``vectorized`` engine is this library's C-replacement fast path for real
workloads. This example contracts million-nonzero tensors, shows the
memory-bounded chunking knob, and cross-checks a sample of the output
against the sparta engine on a slice.

Run: ``python examples/large_scale.py``
"""

import time

import numpy as np

from repro import contract
from repro.tensor import random_tensor_fibered


def main() -> None:
    print("generating ~1M-nonzero operands ...")
    x = random_tensor_fibered(
        (2000, 2000, 800, 800), 1_000_000, 2, 4000, seed=31, skew=0.6
    )
    y = random_tensor_fibered(
        (800, 800, 1500, 1500), 1_500_000, 2, 400_000, seed=32
    )
    print(f"X = {x}\nY = {y}")

    for chunk in (20_000_000, 1_000_000):
        t0 = time.perf_counter()
        res = contract(
            x, y, (2, 3), (0, 1),
            method="vectorized", chunk_pairs=chunk,
        )
        dt = time.perf_counter() - t0
        print(
            f"chunk_pairs={chunk:>11,d}: {dt:6.2f}s, "
            f"nnz_Z={res.nnz:,d}, "
            f"products={res.profile.counters['products']:,d}"
        )

    # Spot-check against the paper engine on a sub-problem: restrict X
    # to one free fiber and compare that slice of Z.
    fiber = x.indices[0, :2]
    mask = np.all(x.indices[:, :2] == fiber, axis=1)
    from repro.tensor import SparseTensor

    x_slice = SparseTensor(x.indices[mask], x.values[mask], x.shape)
    a = contract(x_slice, y, (2, 3), (0, 1), method="vectorized")
    b = contract(
        x_slice, y, (2, 3), (0, 1),
        method="sparta", swap_larger_to_y=False,
    )
    assert a.tensor.allclose(b.tensor)
    print(
        f"slice cross-check vs sparta engine: ok "
        f"({x_slice.nnz} X-nonzeros, {a.nnz} outputs)"
    )


if __name__ == "__main__":
    main()
