"""Thread scaling: run parallel Sparta and predict multi-core curves.

Executes the §3.5 parallel decomposition on a real thread pool (verifying
the gather of thread-local Z_local buffers) and uses the §5.4-calibrated
scalability model with this run's measured stage breakdown to predict the
Figure-6 curves.

Run: ``python examples/thread_scaling.py``
"""

from repro import contract
from repro.datasets import make_case
from repro.parallel import ScalabilityModel, parallel_sparta


def main() -> None:
    case = make_case("nips", 1, scale=0.4, seed=0)
    print(f"workload: {case.label}  X={case.x}  Y={case.y}")

    serial = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    print(f"serial run: {serial.profile.total_seconds:.3f}s, stage mix:")
    for stage, frac in serial.profile.stage_fractions().items():
        print(f"  {stage.value:18s} {100 * frac:5.1f}%")

    # Real thread-pool execution: identical results, per-worker stats.
    par = parallel_sparta(
        case.x, case.y, case.cx, case.cy, threads=4
    )
    assert par.result.tensor.allclose(serial.tensor)
    print(f"\n4-worker pool verified identical output "
          f"(load imbalance {par.load_imbalance:.2f}):")
    for st in par.thread_stats:
        print(
            f"  worker {st.worker}: {st.subtensors} sub-tensors, "
            f"{st.nnz_x} nnz, {st.products} products"
        )

    # Predicted multi-core scaling (this host has one core; the model is
    # calibrated to the paper's per-stage 12-thread speedups).
    model = ScalabilityModel(load_imbalance=par.load_imbalance)
    print("\npredicted end-to-end speedup:")
    for threads in (1, 2, 4, 8, 12):
        pred = model.predict(serial.profile, threads)
        bar = "#" * int(round(pred.speedup * 3))
        print(f"  {threads:2d} threads: {pred.speedup:5.2f}x {bar}")
    print("(paper Figure 6: 10.2x on NIPS 1-mode at 12 threads)")


if __name__ == "__main__":
    main()
