"""Graph algorithms via semiring contraction.

The element-wise engine generalizes beyond (+, x): min-plus composes
shortest paths, boolean composes reachability. This example builds a
sparse random road network and runs both with the semiring option of the
vectorized engine, cross-checked against scipy.

Run: ``python examples/graph_semiring.py``
"""

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.core import BOOLEAN, MIN_PLUS
from repro.core.vectorized import vectorized_contract
from repro.tensor import SparseTensor


def random_graph(n, degree, seed):
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), degree)
    cols = rng.integers(0, n, size=n * degree)
    keep = rows != cols
    weights = rng.uniform(1.0, 10.0, size=keep.sum())
    return SparseTensor(
        np.column_stack((rows[keep], cols[keep])), weights, (n, n)
    ).coalesce()


def main() -> None:
    n = 150
    g = random_graph(n, degree=3, seed=11)
    print(f"graph: {n} nodes, {g.nnz} weighted edges")

    # ------------------------------------------------------------------
    # Min-plus: repeated squaring gives <= 2^k-hop shortest paths.
    # ------------------------------------------------------------------
    paths = g
    hops = 1
    for _ in range(3):
        nxt = vectorized_contract(
            paths, paths, (1,), (0,), semiring=MIN_PLUS
        ).tensor
        # Combine with the current bound (paths of <= hops still count):
        stacked = SparseTensor(
            np.concatenate((paths.indices, nxt.indices)),
            np.concatenate((paths.values, nxt.values)),
            (n, n),
        )
        # min-coalesce: keep the smaller distance per coordinate
        order = np.lexsort(
            (stacked.values, stacked.indices[:, 1], stacked.indices[:, 0])
        )
        idx = stacked.indices[order]
        vals = stacked.values[order]
        first = np.concatenate(
            ([True], np.any(idx[1:] != idx[:-1], axis=1))
        )
        paths = SparseTensor(idx[first], vals[first], (n, n))
        hops *= 2
        print(f"  <= {hops:2d} hops: {paths.nnz} reachable pairs")

    # Cross-check a sample against scipy's shortest paths.
    dense = g.to_dense()
    sp = csgraph.shortest_path(
        csgraph.csgraph_from_dense(dense, null_value=0.0),
        method="D",
    )
    ours = {
        (int(i), int(j)): v
        for (i, j), v in zip(paths.indices, paths.values)
    }
    checked = mismatches = 0
    for (i, j), v in list(ours.items())[:500]:
        if i == j:
            continue
        checked += 1
        # our bound covers <= `hops` hops; scipy is the full closure,
        # so ours >= scipy, equal when the optimum uses few hops.
        if v < sp[i, j] - 1e-9:
            mismatches += 1
    print(
        f"min-plus sanity vs scipy: {checked} pairs checked, "
        f"{mismatches} violations (must be 0)"
    )
    assert mismatches == 0

    # ------------------------------------------------------------------
    # Boolean: 2-hop reachability.
    # ------------------------------------------------------------------
    adj = SparseTensor(
        g.indices, np.ones(g.nnz), (n, n)
    )
    two_hop = vectorized_contract(
        adj, adj, (1,), (0,), semiring=BOOLEAN
    ).tensor
    ref = (adj.to_dense() @ adj.to_dense()) > 0
    assert np.array_equal(two_hop.to_dense() > 0, ref)
    print(
        f"boolean 2-hop reachability: {two_hop.nnz} pairs, "
        "matches dense reference"
    )


if __name__ == "__main__":
    main()
