"""Quantum physics: element-wise vs block-sparse contraction (Figure 5).

Tensor-network codes (ITensor et al.) store quantum-number symmetry
blocks densely and contract them with GEMM. When a value cutoff makes
blocks internally sparse, the block engine wastes arithmetic on stored
zeros. This example contracts Hubbard-2D-style operands with both
paradigms and reports the work ratio — the paper's 7.1x average win for
element-wise Sparta.

Run: ``python examples/hubbard_blocks.py``
"""

from repro import contract
from repro.baselines import block_contract, element_flops
from repro.datasets import all_cases


def main() -> None:
    print(
        f"{'case':>7} {'X blocks':>9} {'X nnz':>8} {'block MFLOP':>12} "
        f"{'elem MFLOP':>11} {'work speedup':>13} {'match':>6}"
    )
    ratios = []
    for case in all_cases(scale=0.6, seed=0):
        block = block_contract(case.x, case.y, case.cx, case.cy)
        x_el = case.x.to_coo()
        y_el = case.y.to_coo()
        element = contract(
            x_el, y_el, case.cx, case.cy, method="vectorized"
        )
        eflops = element_flops(element.profile.counters["products"])
        ratio = block.flops / eflops
        ratios.append(ratio)
        match = element.tensor.allclose(
            block.tensor.to_coo().coalesce().prune(1e-12),
            rtol=1e-8, atol=1e-10,
        )
        print(
            f"{case.label:>7} {case.x.num_blocks:9d} {x_el.nnz:8d} "
            f"{block.flops / 1e6:12.2f} {eflops / 1e6:11.2f} "
            f"{ratio:12.1f}x {'yes' if match else 'NO':>6}"
        )
    print(
        f"\naverage work speedup of element-wise over block-sparse: "
        f"{sum(ratios) / len(ratios):.1f}x (paper: 7.1x)"
    )
    print(
        "why: the cutoff leaves blocks internally sparse, and the block\n"
        "engine multiplies every stored element while the element-wise\n"
        "engine touches only actual non-zero pairs."
    )


if __name__ == "__main__":
    main()
