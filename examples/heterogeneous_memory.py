"""Heterogeneous memory: characterize, place, and compare policies.

Walks the paper's §4 workflow on a simulated DRAM+Optane machine:

1. run Sparta once and collect per-object, per-stage traffic (Table 2);
2. characterize placement sensitivity (Figure 3) — each object alone in
   PMM;
3. derive the static priority placement (§4.2) with the Eq. 5/6 size
   estimates;
4. compare against IAL, hardware Memory mode, Optane-only and DRAM-only
   (Figure 7).

Run: ``python examples/heterogeneous_memory.py``
"""

from repro import contract
from repro.core.profile import DataObject
from repro.datasets import make_case
from repro.memory import (
    DEFAULT_IAL_LAG,
    HMSimulator,
    all_dram_placement,
    all_pmm_placement,
    dram,
    ial_schedule,
    pmm,
    single_object_pmm,
    verify_table2,
)
from repro.memory.devices import HeterogeneousMemory
from repro.memory.policies import sparta_policy_characterized


def main() -> None:
    case = make_case("nell2", 2, scale=0.5, seed=0)
    print(f"workload: {case.label}  X={case.x}  Y={case.y}")

    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    violations = verify_table2(res.profile)
    print(f"Table-2 access-pattern check: "
          f"{'ok' if not violations else violations}")

    peak = res.profile.peak_bytes()
    print(f"peak footprint: {peak / 1e6:.1f} MB; "
          "simulating a machine whose DRAM holds half of it")
    hm = HeterogeneousMemory(
        dram=dram(int(peak * 0.5)), pmm=pmm(peak * 20)
    )
    sim = HMSimulator(hm)

    # ------------------------------------------------------------------
    # Figure 3: single-object characterization.
    # ------------------------------------------------------------------
    base = sim.simulate(res.profile, all_dram_placement()).total_seconds
    print("\nplacement sensitivity (one object in PMM, rest DRAM):")
    slowdowns = {}
    for obj in DataObject:
        t = sim.simulate(res.profile, single_object_pmm(obj)).total_seconds
        slowdowns[obj] = t / base - 1
    for obj, s in sorted(
        slowdowns.items(), key=lambda kv: kv[1], reverse=True
    ):
        print(f"  {obj.value:8s} +{100 * s:5.1f}%")

    # ------------------------------------------------------------------
    # §4.2 placement + Figure 7 policy comparison.
    # ------------------------------------------------------------------
    policy = sparta_policy_characterized(
        res.profile, sim, hm.dram.capacity_bytes
    )
    print("\nsparta static placement:")
    for obj in DataObject:
        print(f"  {obj.value:8s} -> {policy.device_of(obj)}")

    runs = {
        "sparta": sim.simulate(res.profile, policy),
        "ial": sim.simulate_schedule(
            res.profile,
            ial_schedule(res.profile, hm.dram.capacity_bytes),
            lag_fraction=DEFAULT_IAL_LAG,
        ),
        "memory mode": sim.simulate_memory_mode(res.profile),
        "optane-only": sim.simulate(res.profile, all_pmm_placement()),
        "dram-only": sim.simulate(res.profile, all_dram_placement()),
    }
    optane = runs["optane-only"].total_seconds
    print("\npolicy comparison (speedup over optane-only):")
    for name, run in runs.items():
        print(
            f"  {name:12s} {run.total_seconds * 1000:8.2f} ms  "
            f"{optane / run.total_seconds:5.2f}x"
        )


if __name__ == "__main__":
    main()
