"""CP decomposition of a sparse tensor — the intro's application context.

The paper situates SpTC next to the well-studied sparse tensor
decomposition kernels (MTTKRP and friends). This example factorizes a
synthetic low-rank sparse tensor with CP-ALS built on this library's
MTTKRP, then shows a downstream SpTC on the same data: contracting the
tensor with itself to form a mode-similarity Gram tensor.

Run: ``python examples/cp_decomposition.py``
"""

import numpy as np

from repro import contract
from repro.tensor import SparseTensor
from repro.tensor.decomposition import cp_als


def low_rank_sparse(shape, rank, noise, seed):
    rng = np.random.default_rng(seed)
    factors = [rng.standard_normal((d, rank)) for d in shape]
    dense = np.zeros(shape)
    for r in range(rank):
        term = factors[0][:, r]
        for f in factors[1:]:
            term = np.multiply.outer(term, f[:, r])
        dense += term
    dense += noise * rng.standard_normal(shape)
    # Truncate small entries, as the paper does for quantum data.
    return SparseTensor.from_dense(dense, cutoff=0.3)


def main() -> None:
    shape, true_rank = (30, 28, 26), 4
    t = low_rank_sparse(shape, true_rank, noise=0.02, seed=7)
    print(f"tensor: {t} (built from rank {true_rank} + noise)")

    print("\nCP-ALS fit by rank:")
    for rank in (1, 2, 4, 6):
        model = cp_als(t, rank=rank, iterations=80, seed=0)
        bar = "#" * int(model.fit * 40)
        print(f"  rank {rank}: fit {model.fit:6.3f} {bar}")

    model = cp_als(t, rank=true_rank, iterations=120, seed=0)
    print(
        f"\nrank-{true_rank} model: weights "
        f"{np.round(np.sort(model.weights)[::-1], 2)}"
    )

    # Downstream SpTC: mode-0 similarity via self-contraction over the
    # other modes — Gram[i, i'] = sum_{jk} T[i,j,k] T[i',j,k].
    res = contract(t, t, (1, 2), (1, 2), method="sparta")
    gram = res.tensor
    print(f"\nself-contraction Gram tensor: {gram}")
    ref = np.tensordot(t.to_dense(), t.to_dense(), axes=((1, 2), (1, 2)))
    assert np.allclose(gram.to_dense(), ref)
    print("matches dense tensordot:", True)
    print(
        "sparta stage shares:",
        {
            s.value: f"{100 * f:.0f}%"
            for s, f in res.profile.stage_fractions().items()
        },
    )


if __name__ == "__main__":
    main()
