"""Synthetic analogues of the paper's evaluation tensors (Table 3).

We cannot ship the FROSTT tensors (3M-140M non-zeros; the paper's largest
runs need 768 GB). Each entry here reproduces, at laptop scale, the
*statistics that drive the experiments*:

* tensor order and mode-size ratios;
* the number of mode-F sub-tensors of X (the outer-loop trip count and
  parallel grain);
* the number of distinct contract-index fibers of Y (the linear-search
  space that HtY's O(1) lookup collapses);
* skew: real FROSTT tensors concentrate non-zeros on few fibers.

A case is an SpTC ``Z = X ×_{cx}^{cy} Y`` contracting the trailing *n*
modes of X against the leading *n* modes of Y, exactly the paper's
"n-Mode" experiments. All generators are deterministic per (name, n,
scale, seed).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.tensor.random import random_tensor_fibered


@dataclass(frozen=True)
class DatasetSpec:
    """Scaled profile of one Table-3 tensor."""

    name: str
    #: paper metadata, kept for the Table 3 report
    paper_order: int
    paper_dims: Tuple[int, ...]
    paper_nnz: int
    paper_density: float
    #: scaled generation parameters
    dims: Tuple[int, ...]
    nnz: int
    #: number of distinct X sub-tensors (mode-F fibers); controls the
    #: outer-loop grain. Real tensors have few heavy fibers -> skew.
    x_fibers: int
    x_skew: float
    #: Y's non-zeros and distinct contract fibers (the search space)
    y_nnz_factor: float = 2.0
    y_fiber_fraction: float = 0.10
    #: Y's free-mode indices are drawn from a pool of this fraction of
    #: nnz_Y distinct keys — real tensors revisit the same free indices,
    #: which is what makes accumulation (HtA hits) heavy.
    y_free_pool_fraction: float = 0.25


#: Table 3, scaled. Dimensions keep the paper's aspect ratios at ~1/10
#: (mode sizes capped so dense LN key spaces stay in int64).
SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="nell2",
            paper_order=3,
            paper_dims=(12_000, 9_000, 28_000),
            paper_nnz=76_000_000,
            paper_density=2.4e-5,
            dims=(1200, 900, 2800),
            nnz=60_000,
            x_fibers=400,
            x_skew=0.6,
            y_fiber_fraction=0.03,
            y_free_pool_fraction=0.005,
        ),
        DatasetSpec(
            name="nips",
            paper_order=4,
            paper_dims=(2_000, 3_000, 14_000, 17_000),
            paper_nnz=3_000_000,
            paper_density=1.8e-6,
            dims=(200, 300, 1400, 1700),
            nnz=30_000,
            x_fibers=250,
            x_skew=0.6,
        ),
        DatasetSpec(
            name="uber",
            paper_order=4,
            paper_dims=(183, 24, 1_000, 1_000),
            paper_nnz=3_000_000,
            paper_density=2e-4,
            dims=(183, 24, 500, 500),
            nnz=40_000,
            x_fibers=300,
            x_skew=0.6,
        ),
        DatasetSpec(
            name="chicago",
            paper_order=4,
            paper_dims=(6_000, 24, 77, 32),
            paper_nnz=5_000_000,
            paper_density=1e-2,
            dims=(1200, 24, 77, 32),
            nnz=50_000,
            x_fibers=350,
            x_skew=0.6,
        ),
        DatasetSpec(
            name="uracil",
            paper_order=4,
            paper_dims=(90, 90, 174, 174),
            paper_nnz=10_000_000,
            paper_density=4.2e-2,
            dims=(90, 90, 174, 174),
            nnz=90_000,
            x_fibers=500,
            x_skew=0.5,
            y_nnz_factor=2.5,
            y_fiber_fraction=0.3,
        ),
        DatasetSpec(
            name="flickr",
            paper_order=4,
            paper_dims=(320_000, 28_000_000, 2_000_000, 731),
            paper_nnz=113_000_000,
            paper_density=1.1e-4,
            dims=(3200, 28_000, 2000, 73),
            nnz=80_000,
            x_fibers=450,
            x_skew=0.7,
        ),
        DatasetSpec(
            name="delicious",
            paper_order=4,
            paper_dims=(533_000, 17_000_000, 2_000_000, 1_000),
            paper_nnz=140_000_000,
            paper_density=4.3e-8,
            dims=(5330, 17_000, 2000, 100),
            nnz=90_000,
            x_fibers=500,
            x_skew=0.7,
        ),
        DatasetSpec(
            name="vast",
            paper_order=5,
            paper_dims=(165_000, 11_000, 2, 100, 89),
            paper_nnz=26_000_000,
            paper_density=8e-7,
            dims=(1650, 1100, 2, 100, 89),
            nnz=50_000,
            x_fibers=350,
            x_skew=0.6,
        ),
    ]
}

#: the five tensors of Figures 2 and 4
FIGURE4_DATASETS = ("chicago", "nips", "uber", "vast", "uracil")
#: the six tensors of Figures 7 and 9 (the paper's "*" expressions)
FIGURE7_DATASETS = ("chicago", "nips", "vast", "flickr", "delicious", "nell2")


@dataclass
class SpTCCase:
    """One runnable contraction from the registry."""

    name: str
    dataset: str
    n_modes: int
    x: SparseTensor
    y: SparseTensor
    cx: Tuple[int, ...]
    cy: Tuple[int, ...]
    spec: DatasetSpec = field(repr=False)

    @property
    def label(self) -> str:
        """Human label matching the paper's x-axes, e.g. "Chicago 2-Mode"."""
        return f"{self.dataset.capitalize()} {self.n_modes}-Mode"


def dataset_names() -> Tuple[str, ...]:
    """All registered dataset names."""
    return tuple(SPECS)


def _dedup_free_indices(
    y: SparseTensor,
    n_modes: int,
    pool_size: int,
    rng: np.random.Generator,
) -> SparseTensor:
    """Restrict Y's free-mode indices to a pool of distinct values.

    Remaps each non-zero's free part onto one of ``pool_size`` free-index
    tuples, so different products frequently land on the same output key
    — the accumulator-dedup behaviour of real tensors (nnz_Z < products).
    Coordinates that collide after remapping are coalesced.
    """
    from repro.tensor.linearize import delinearize, ln_capacity
    from repro.types import INDEX_DTYPE

    order = y.order
    free_dims = y.shape[n_modes:]
    capacity = ln_capacity(free_dims)
    pool_size = min(max(pool_size, 1), capacity)
    pool = rng.choice(capacity, size=pool_size, replace=False).astype(
        INDEX_DTYPE
    )
    picks = pool[rng.integers(0, pool_size, size=y.nnz)]
    indices = y.indices.copy()
    indices[:, n_modes:] = delinearize(picks, free_dims)
    return SparseTensor(
        indices, y.values, y.shape, copy=False, validate=False
    ).coalesce()


#: fraction of X non-zeros whose contract indices exist in Y. The paper's
#: experiments contract expressions over the *same* dataset, so most X
#: probes hit; misses still exist (Algorithm 2 lines 8-9).
X_HIT_RATE = 0.85


def _compose_x(
    x_dims: Tuple[int, ...],
    nnz: int,
    n_modes: int,
    y: SparseTensor,
    *,
    num_fibers: int,
    skew: float,
    rng: np.random.Generator,
) -> SparseTensor:
    """Build X so its contract indices mostly hit Y's fibers.

    Free-mode indices concentrate on ``num_fibers`` skewed fibers (the
    mode-F sub-tensors of Algorithm 2); contract-mode indices are drawn
    from Y's existing contract keys with probability :data:`X_HIT_RATE`
    and uniformly otherwise.
    """
    from repro.tensor.linearize import delinearize, linearize, ln_capacity
    from repro.types import INDEX_DTYPE, VALUE_DTYPE

    order = len(x_dims)
    free_dims = x_dims[: order - n_modes]
    contract_dims = x_dims[order - n_modes :]

    # Free part: skewed fibers, as random_tensor_fibered does.
    free_capacity = ln_capacity(free_dims)
    num_fibers = min(max(num_fibers, 1), free_capacity, nnz)
    fiber_keys = rng.choice(free_capacity, size=num_fibers, replace=False)
    if skew > 0.0:
        weights = 1.0 / np.arange(1, num_fibers + 1) ** skew
        weights /= weights.sum()
    else:
        weights = np.full(num_fibers, 1.0 / num_fibers)
    counts = np.ones(num_fibers, dtype=np.int64)
    if nnz > num_fibers:
        counts += rng.multinomial(nnz - num_fibers, weights)
    free_ln = np.repeat(fiber_keys.astype(INDEX_DTYPE), counts)
    total = int(counts.sum())

    # Contract part: sample from Y's distinct contract keys (hits) or
    # uniformly from the full space (misses).
    y_keys = np.unique(
        linearize(y.indices[:, :n_modes], contract_dims)
    )
    contract_capacity = ln_capacity(contract_dims)
    hits = rng.random(total) < X_HIT_RATE
    contract_ln = np.empty(total, dtype=INDEX_DTYPE)
    n_hit = int(hits.sum())
    if y_keys.size and n_hit:
        contract_ln[hits] = rng.choice(y_keys, size=n_hit, replace=True)
    else:
        hits[:] = False
    n_miss = int((~hits).sum())
    if n_miss:
        contract_ln[~hits] = rng.integers(0, contract_capacity, size=n_miss)

    indices = np.column_stack(
        (
            delinearize(free_ln, free_dims),
            delinearize(contract_ln, contract_dims),
        )
    )
    values = rng.standard_normal(total).astype(VALUE_DTYPE)
    values[values == 0.0] = 1.0
    return SparseTensor(
        indices, values, x_dims, copy=False, validate=False
    ).coalesce()


def make_large_tensor(
    dims: Tuple[int, ...],
    target_nnz: int,
    *,
    seed: int = 0,
    pool_modes: int = 0,
    pool_at: str = "trail",
    pool_size: int = 1024,
    pool_seed: int | None = None,
    chunk_nnz: int = 1 << 18,
) -> SparseTensor:
    """Seeded large-tensor generator with streamed construction.

    Builds exactly *target_nnz* distinct coordinates for the given mode
    extents without ever materializing an oversampled candidate set:
    the non-pooled modes' linear key space is partitioned into
    ``target_nnz`` equal strides and one key drawn per stride, so
    coordinates are unique (and sorted) by construction — no global
    ``coalesce``. Work proceeds in ``chunk_nnz``-row chunks, so
    temporary allocations stay bounded by the chunk size regardless of
    ``target_nnz`` — the property the out-of-core benchmarks rely on to
    grow inputs 10x under a fixed :class:`~repro.ooc.MemoryBudget`.

    ``pool_modes`` restricts the leading (``pool_at="lead"``) or
    trailing (``"trail"``) that-many modes to a pool of ``pool_size``
    distinct index tuples derived from ``pool_seed`` (default *seed*).
    Two tensors generated with the same pooled extents and the same
    ``pool_seed`` share the pool — generate X with its trailing
    contract modes pooled and Y with its leading contract modes pooled
    from the same ``pool_seed`` and every X probe lands on a real Y
    fiber, which is what keeps contraction output dense enough to
    stress accumulation at scale.

    Deterministic per ``(dims, target_nnz, seed, pool_*)``.
    """
    from repro.tensor.linearize import delinearize, ln_capacity
    from repro.types import INDEX_DTYPE, VALUE_DTYPE

    order = len(dims)
    if not 0 <= pool_modes < order:
        raise ShapeError(
            f"pool_modes must be in [0, {order}), got {pool_modes}"
        )
    if pool_at not in ("lead", "trail"):
        raise ShapeError(
            f"pool_at must be 'lead' or 'trail', got {pool_at!r}"
        )
    if target_nnz <= 0:
        raise ShapeError(f"target_nnz must be positive, got {target_nnz}")
    if pool_at == "lead":
        pool_dims, uniq_dims = dims[:pool_modes], dims[pool_modes:]
    else:
        cut = order - pool_modes
        uniq_dims, pool_dims = dims[:cut], dims[cut:]
    uniq_capacity = ln_capacity(uniq_dims)
    if target_nnz > uniq_capacity:
        raise ShapeError(
            f"target_nnz={target_nnz} exceeds the {uniq_capacity} "
            f"distinct keys of the non-pooled modes {uniq_dims}"
        )
    # One child stream per draw kind, each consumed strictly in row
    # order — the result is invariant to ``chunk_nnz``.
    rng_off, rng_pick, rng_val = (
        np.random.default_rng(s)
        for s in np.random.SeedSequence(
            [zlib.crc32(b"make_large_tensor"), seed, target_nnz]
        ).spawn(3)
    )

    pool_keys = None
    if pool_modes:
        pool_capacity = ln_capacity(pool_dims)
        n_pool = min(max(int(pool_size), 1), pool_capacity)
        pool_rng = np.random.default_rng(
            np.random.SeedSequence(
                [
                    zlib.crc32(b"make_large_tensor.pool"),
                    seed if pool_seed is None else int(pool_seed),
                ]
            )
        )
        # Distinct by construction (one key per stride) — sampling
        # without replacement over a huge capacity would need O(capacity)
        # memory, which is exactly what this generator avoids.
        p_stride = pool_capacity // n_pool
        pool_keys = (
            np.arange(n_pool, dtype=np.int64) * p_stride
            + pool_rng.integers(0, p_stride, size=n_pool)
        ).astype(INDEX_DTYPE)

    indices = np.empty((target_nnz, order), dtype=INDEX_DTYPE)
    values = np.empty(target_nnz, dtype=VALUE_DTYPE)
    stride = uniq_capacity // target_nnz
    chunk_nnz = max(int(chunk_nnz), 1)
    for lo in range(0, target_nnz, chunk_nnz):
        hi = min(lo + chunk_nnz, target_nnz)
        n = hi - lo
        uniq_ln = (
            np.arange(lo, hi, dtype=np.int64) * stride
            + rng_off.integers(0, stride, size=n)
        ).astype(INDEX_DTYPE)
        if pool_keys is None:
            indices[lo:hi] = delinearize(uniq_ln, dims)
        else:
            picks = pool_keys[rng_pick.integers(0, len(pool_keys), size=n)]
            if pool_at == "lead":
                indices[lo:hi, :pool_modes] = delinearize(
                    picks, pool_dims
                )
                indices[lo:hi, pool_modes:] = delinearize(
                    uniq_ln, uniq_dims
                )
            else:
                cut = order - pool_modes
                indices[lo:hi, :cut] = delinearize(uniq_ln, uniq_dims)
                indices[lo:hi, cut:] = delinearize(picks, pool_dims)
        vals = rng_val.standard_normal(n).astype(VALUE_DTYPE)
        vals[vals == 0.0] = 1.0
        values[lo:hi] = vals

    if pool_keys is not None and pool_at == "lead":
        # Leading modes vary per row: restore row-major order. (The
        # other layouts are sorted for free — the leading linear key is
        # strictly increasing across rows.)
        from repro.tensor.linearize import linearize

        perm = np.argsort(
            linearize(indices, dims), kind="stable"
        )
        indices = indices[perm]
        values = values[perm]
    return SparseTensor(
        indices, values, dims, copy=False, validate=False
    )


def make_case(
    dataset: str,
    n_modes: int,
    *,
    scale: float = 1.0,
    seed: int = 0,
    fiber_scale: float = 1.0,
) -> SpTCCase:
    """Build the "dataset n-Mode" SpTC at the given size *scale*.

    X contracts its trailing *n_modes* modes against the leading *n_modes*
    modes of Y. Y's dims are X's dims rotated so contract modes lead
    (Y models the same dataset in "correct mode order", as the artifact's
    pre-permuted inputs do). Y holds ``y_nnz_factor`` x more non-zeros —
    the paper always treats the larger tensor as Y.

    ``fiber_scale`` multiplies the fiber counts of both operands: X gets
    more mode-F sub-tensors (the spec's fiber count does not grow with
    ``scale`` past 1.0, so large-``scale`` cases otherwise have few,
    large fibers) and Y gets more, smaller contract-key groups. The
    many-small-fibers regime it enables is where per-sub-tensor driver
    overhead dominates — the regime the fused flat-batch kernel targets.
    """
    try:
        spec = SPECS[dataset]
    except KeyError:
        raise ShapeError(
            f"unknown dataset {dataset!r}; choose from {sorted(SPECS)}"
        ) from None
    order = len(spec.dims)
    if not 0 < n_modes < order:
        raise ShapeError(
            f"n_modes must be in (0, {order}) for {dataset}, got {n_modes}"
        )
    if scale <= 0:
        raise ShapeError(f"scale must be positive, got {scale}")
    if fiber_scale <= 0:
        raise ShapeError(
            f"fiber_scale must be positive, got {fiber_scale}"
        )

    nnz_x = max(int(spec.nnz * scale), 64)
    nnz_y = max(int(spec.nnz * spec.y_nnz_factor * scale), 64)
    x_dims = spec.dims
    contract_dims = x_dims[order - n_modes :]
    y_dims = contract_dims + x_dims[: order - n_modes]
    cx = tuple(range(order - n_modes, order))
    cy = tuple(range(n_modes))

    rng = np.random.default_rng(
        np.random.SeedSequence(
            [zlib.crc32(dataset.encode()), n_modes, seed]
        )
    )
    y = random_tensor_fibered(
        y_dims,
        nnz_y,
        lead_modes=n_modes,
        num_fibers=max(
            int(nnz_y * min(spec.y_fiber_fraction * fiber_scale, 1.0)), 8
        ),
        skew=0.2,
        seed=rng,
    )
    y = _dedup_free_indices(
        y, n_modes, max(int(nnz_y * spec.y_free_pool_fraction), 8), rng
    )
    x = _compose_x(
        x_dims,
        nnz_x,
        n_modes,
        y,
        num_fibers=max(
            int(spec.x_fibers * min(scale, 1.0) ** 0.5 * fiber_scale), 8
        ),
        skew=spec.x_skew,
        rng=rng,
    )
    return SpTCCase(
        name=f"{dataset}-{n_modes}mode",
        dataset=dataset,
        n_modes=n_modes,
        x=x,
        y=y,
        cx=cx,
        cy=cy,
        spec=spec,
    )
