"""Hubbard-2D-like block-sparse SpTC pairs (paper Table 4, Figure 5).

The paper's ITensor comparison contracts ten (X, Y) pairs exported from a
Hubbard-2D tensor-network model: X is order 5 with ~10-20k small dense
blocks (quantum-number symmetry blocks), Y is order 4 with 218 blocks, and
values below 1e-8 are cut off. We generate structurally matching pairs at
~1/4 scale: block grids with a controlled fraction of occupied blocks,
block-internal element density well under 100% (this intra-block sparsity
is exactly what the element-wise engine exploits and the block-wise engine
pays dense FLOPs for).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.blocks import BlockSparseTensor
from repro.types import VALUE_DTYPE

#: default truncation threshold (paper: "cutting off values smaller
#: than 1e-8")
CUTOFF = 1e-8


@dataclass
class HubbardCase:
    """One SpTC of Figure 5: block-sparse operands plus contract modes."""

    index: int
    x: BlockSparseTensor
    y: BlockSparseTensor
    cx: Tuple[int, ...]
    cy: Tuple[int, ...]

    @property
    def label(self) -> str:
        """Figure 5 x-axis label."""
        return f"SpTC{self.index}"


# Scaled Table 4: (X dims, X block shape, X contract modes,
#                  Y contract modes, occupied-block fraction of X).
# Y is always the paper's 24 x 36 x 4 x 4 tensor with 218-ish blocks;
# cy picks the Y modes whose extents match cx's.
_X_CASES = [
    ((32, 4, 48, 24, 4), (4, 2, 4, 4, 2), (3, 4), (0, 2), 0.10),
    ((32, 4, 48, 24, 4), (4, 2, 4, 4, 2), (3, 4), (0, 2), 0.12),
    ((4, 32, 48, 24, 4), (2, 4, 4, 4, 2), (3, 4), (0, 2), 0.12),
    ((4, 32, 4, 24, 104), (2, 4, 2, 4, 4), (3, 2), (0, 2), 0.14),
    ((32, 4, 104, 36, 4), (4, 2, 4, 4, 2), (3, 4), (1, 2), 0.12),
    ((4, 32, 4, 24, 104), (2, 4, 2, 4, 4), (3, 2), (0, 2), 0.15),
    ((32, 4, 104, 36, 4), (4, 2, 4, 4, 2), (3, 4), (1, 2), 0.14),
    ((4, 4, 32, 24, 104), (2, 2, 4, 4, 4), (3, 1), (0, 2), 0.15),
    ((4, 32, 104, 36, 4), (2, 4, 4, 4, 2), (3, 4), (1, 2), 0.14),
    ((4, 28, 4, 36, 120), (2, 4, 2, 4, 4), (3, 2), (1, 2), 0.15),
]

_Y_DIMS = (24, 36, 4, 4)
_Y_BLOCK = (4, 4, 2, 2)
_Y_BLOCK_FRACTION = 0.30

#: element density inside an occupied block, before the cutoff
_INTRA_BLOCK_DENSITY = 0.38


def _fill_blocks(
    dims: Tuple[int, ...],
    block: Tuple[int, ...],
    fraction: float,
    rng: np.random.Generator,
) -> BlockSparseTensor:
    """Occupy a random *fraction* of the block grid with sparse blocks.

    Block values follow a log-normal magnitude distribution so a 1e-8
    cutoff removes a realistic tail rather than an arbitrary slice.
    """
    t = BlockSparseTensor(dims, block)
    grid = t.grid
    total = int(np.prod(grid))
    n_blocks = max(1, int(round(total * fraction)))
    chosen = rng.choice(total, size=min(n_blocks, total), replace=False)
    for flat in chosen:
        key = np.unravel_index(int(flat), grid)
        mask = rng.random(block) < _INTRA_BLOCK_DENSITY
        if not mask.any():
            mask.flat[rng.integers(0, mask.size)] = True
        vals = np.zeros(block, dtype=VALUE_DTYPE)
        magnitudes = np.exp(rng.normal(-2.0, 3.0, size=int(mask.sum())))
        signs = rng.choice([-1.0, 1.0], size=magnitudes.shape)
        vals[mask] = magnitudes * signs
        t.set_block(tuple(int(k) for k in key), vals)
    return t


def hubbard_case(
    index: int, *, scale: float = 1.0, seed: int = 0, cutoff: float = CUTOFF
) -> HubbardCase:
    """Build SpTC*index* (1-based, 1..10) of Figure 5.

    ``scale`` multiplies the occupied-block fraction (clamped to [0, 1]);
    values at or below *cutoff* are removed, as in the paper.
    """
    if not 1 <= index <= len(_X_CASES):
        raise ShapeError(
            f"index must be in [1, {len(_X_CASES)}], got {index}"
        )
    dims, block, cx, cy, fraction = _X_CASES[index - 1]
    rng = np.random.default_rng(
        np.random.SeedSequence([zlib.crc32(b"hubbard"), index, seed])
    )
    x = _fill_blocks(
        dims, block, min(fraction * scale, 1.0), rng
    ).prune(cutoff)
    y = _fill_blocks(
        _Y_DIMS, _Y_BLOCK, min(_Y_BLOCK_FRACTION * scale, 1.0), rng
    ).prune(cutoff)
    # Contracted modes must tile identically for the block engine.
    for mx, my in zip(cx, cy):
        if x.block_shape[mx] != y.block_shape[my]:
            raise ShapeError(
                f"case {index}: block mismatch on contract pair "
                f"({mx}, {my}): {x.block_shape[mx]} != {y.block_shape[my]}"
            )
        if x.shape[mx] != y.shape[my]:
            raise ShapeError(
                f"case {index}: extent mismatch on contract pair "
                f"({mx}, {my})"
            )
    return HubbardCase(index, x, y, cx, cy)


def all_cases(
    *, scale: float = 1.0, seed: int = 0, cutoff: float = CUTOFF
) -> list[HubbardCase]:
    """All ten Figure-5 SpTCs."""
    return [
        hubbard_case(i, scale=scale, seed=seed, cutoff=cutoff)
        for i in range(1, len(_X_CASES) + 1)
    ]
