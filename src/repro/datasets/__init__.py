"""Synthetic dataset registry (Tables 3 and 4, Uracil)."""

from repro.datasets.hubbard import HubbardCase, all_cases, hubbard_case
from repro.datasets.quantum import eri_tensor, t2_amplitudes
from repro.datasets.registry import (
    FIGURE4_DATASETS,
    FIGURE7_DATASETS,
    SPECS,
    DatasetSpec,
    SpTCCase,
    dataset_names,
    make_case,
    make_large_tensor,
)

__all__ = [
    "DatasetSpec",
    "FIGURE4_DATASETS",
    "FIGURE7_DATASETS",
    "HubbardCase",
    "SPECS",
    "SpTCCase",
    "all_cases",
    "dataset_names",
    "eri_tensor",
    "hubbard_case",
    "make_case",
    "make_large_tensor",
    "t2_amplitudes",
]
