"""On-disk dataset cache: materialize registry cases as ``.tns`` files.

The artifact distributes tensors as files and feeds them to ``ttt``;
this module gives the synthetic registry the same workflow:

    >>> from repro.datasets.cache import case_files
    >>> paths = case_files("chicago", 2, scale=0.2)   # doctest: +SKIP
    >>> # paths.x / paths.y are .tns files for repro.ttt

Files are regenerated only when missing (keyed by dataset, modes, scale
and seed), so repeated CLI experiments reuse them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.datasets.registry import make_case
from repro.tensor.io import read_tns, write_tns

PathLike = Union[str, os.PathLike]

#: default cache root (override per call or with REPRO_CACHE_DIR)
DEFAULT_CACHE = Path(
    os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro-sparta")
).expanduser()


@dataclass(frozen=True)
class CaseFiles:
    """Paths of one materialized SpTC case."""

    x: Path
    y: Path
    cx: tuple
    cy: tuple
    x_shape: tuple
    y_shape: tuple

    def load(self):
        """Read both tensors back (with their full declared shapes)."""
        return (
            read_tns(self.x, shape=self.x_shape),
            read_tns(self.y, shape=self.y_shape),
        )


def case_files(
    dataset: str,
    n_modes: int,
    *,
    scale: float = 1.0,
    seed: int = 0,
    cache_dir: Optional[PathLike] = None,
    refresh: bool = False,
) -> CaseFiles:
    """Materialize (or reuse) the ``.tns`` files of one registry case."""
    root = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE
    key = f"{dataset}-{n_modes}mode-s{scale:g}-r{seed}"
    case_dir = root / key
    x_path = case_dir / "x.tns"
    y_path = case_dir / "y.tns"
    case = make_case(dataset, n_modes, scale=scale, seed=seed)
    if refresh or not (x_path.exists() and y_path.exists()):
        case_dir.mkdir(parents=True, exist_ok=True)
        write_tns(case.x, x_path)
        write_tns(case.y, y_path)
    return CaseFiles(
        x=x_path,
        y=y_path,
        cx=case.cx,
        cy=case.cy,
        x_shape=case.x.shape,
        y_shape=case.y.shape,
    )


def clear_cache(cache_dir: Optional[PathLike] = None) -> int:
    """Delete cached case files; returns the number of files removed."""
    root = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE
    removed = 0
    if not root.exists():
        return 0
    for case_dir in sorted(root.iterdir()):
        if not case_dir.is_dir():
            continue
        for f in case_dir.glob("*.tns"):
            f.unlink()
            removed += 1
        try:
            case_dir.rmdir()
        except OSError:
            pass
    return removed
