"""CCSD-like quantum-chemistry tensors (the paper's Uracil workload).

The Uracil tensor is a coupled-cluster T2 amplitude tensor
``t[i, j, a, b]`` (i, j occupied orbitals; a, b virtual), made
element-sparse by truncating magnitudes below 1e-8 — sparsity verified by
chemists per the paper. We synthesize amplitudes with the physically
motivated structure that produces that sparsity:

    t_ijab ~ g_ijab / (e_a + e_b - e_i - e_j)

with exponentially decaying pair interactions ``g`` (local correlation:
amplitudes decay with orbital distance) and a Moller-Plesset-style energy
denominator. Truncation then yields a tensor whose non-zero pattern
clusters around orbital-diagonal regions, like real CCSD data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.types import VALUE_DTYPE

#: the paper's cutoff for quantum data
DEFAULT_CUTOFF = 1e-8


def t2_amplitudes(
    nocc: int = 30,
    nvirt: int = 58,
    *,
    cutoff: float = DEFAULT_CUTOFF,
    decay: float = 0.35,
    seed: Optional[int] = None,
) -> SparseTensor:
    """Synthesize a truncated T2 amplitude tensor ``(nocc, nocc, nvirt, nvirt)``.

    ``decay`` controls how fast pair amplitudes fall off with orbital
    index distance; larger values give sparser tensors after *cutoff*.
    The paper's Uracil tensor is (90, 90, 174, 174) with 4.2e-2 density;
    the defaults give the same shape family at ~1/3 linear scale.
    """
    if nocc <= 0 or nvirt <= 0:
        raise ShapeError("nocc and nvirt must be positive")
    rng = np.random.default_rng(seed)
    # Orbital energies: occupied below the Fermi level, virtual above.
    e_occ = -np.sort(rng.uniform(0.5, 2.0, size=nocc))[::-1]
    e_virt = np.sort(rng.uniform(0.5, 3.0, size=nvirt))

    i_idx = np.arange(nocc)
    a_idx = np.arange(nvirt)
    # Pair locality: |i - j| and |a - b| distance decay.
    occ_decay = np.exp(-decay * np.abs(i_idx[:, None] - i_idx[None, :]))
    virt_decay = np.exp(
        -decay * 0.5 * np.abs(a_idx[:, None] - a_idx[None, :])
    )
    g = (
        rng.standard_normal((nocc, nocc, nvirt, nvirt))
        * occ_decay[:, :, None, None]
        * virt_decay[None, None, :, :]
    )
    denom = (
        e_virt[None, None, :, None]
        + e_virt[None, None, None, :]
        - e_occ[:, None, None, None]
        - e_occ[None, :, None, None]
    )
    t2 = (g / denom).astype(VALUE_DTYPE)
    return SparseTensor.from_dense(t2, cutoff=cutoff)


def eri_tensor(
    nocc: int = 30,
    nvirt: int = 58,
    *,
    cutoff: float = DEFAULT_CUTOFF,
    decay: float = 0.5,
    seed: Optional[int] = None,
) -> SparseTensor:
    """Synthesize a (virt, virt, virt, virt)-block two-electron tensor.

    Used as the second operand of CCSD-style contractions such as
    ``t2[i,j,a,b] * v[a,b,c,d]`` (the particle-particle ladder term) —
    the contraction family the paper's Uracil experiments exercise.
    """
    if nocc <= 0 or nvirt <= 0:
        raise ShapeError("nocc and nvirt must be positive")
    rng = np.random.default_rng(seed)
    a_idx = np.arange(nvirt)
    d1 = np.exp(-decay * np.abs(a_idx[:, None] - a_idx[None, :]))
    v = (
        rng.standard_normal((nvirt, nvirt, nvirt, nvirt))
        * d1[:, :, None, None]
        * d1[None, None, :, :]
    ).astype(VALUE_DTYPE)
    return SparseTensor.from_dense(v, cutoff=cutoff)
