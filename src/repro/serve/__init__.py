"""SpTC-as-a-service: a persistent contraction server.

The serve layer turns the repository's one-shot
:func:`~repro.core.contract` into a long-running, multi-tenant
service (see DESIGN.md, "Service architecture"):

- :class:`OperandRegistry` pins hot tensors in named shared memory so
  repeated requests reference a handle instead of re-shipping arrays;
- :class:`FairScheduler` gives tenants weighted-fair dispatch with
  bounded queues and :class:`~repro.errors.ServiceOverloadedError`
  backpressure;
- :class:`SpTCServer` batches compatible requests onto persistent
  warm workers (process-wide HtY/plan/kernel caches survive across
  requests), retries killed/corrupted workers, and degrades single
  requests to a serial parent-side recompute — never the pool;
- :class:`ServeClient` is the in-process client;
  ``ServeClient.connect("tcp://host:port")`` reaches a server started
  with ``python -m repro.serve`` (and ``ttt --serve-url`` routes the
  CLI through one);
- :class:`LoadGenerator` replays seeded request mixes for the
  integration tests and ``benchmarks/bench_serve.py``.

Served results are bit-identical — and, absent an explicit HtY-cache
opt-in, Table-2-traffic-byte-exact — to a direct ``contract()`` call:
the workers run the literal public entry point, the server only adds
routing.
"""

from repro.errors import (
    ServeError,
    ServiceOverloadedError,
    UnknownHandleError,
)
from repro.serve.client import ServeClient
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    LoadSpec,
    traffic_cells,
)
from repro.serve.net import TcpServeClient, TcpServeServer, parse_serve_url
from repro.serve.registry import OperandRegistry, PinnedOperand
from repro.serve.scheduler import FairScheduler, TenantQuota
from repro.serve.server import (
    PendingResult,
    ServeConfig,
    ServeResponse,
    SpTCServer,
)
from repro.serve.telemetry import TrafficEvent, TrafficFeed

__all__ = [
    "FairScheduler",
    "LoadGenerator",
    "LoadReport",
    "LoadSpec",
    "OperandRegistry",
    "PendingResult",
    "PinnedOperand",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeResponse",
    "ServiceOverloadedError",
    "SpTCServer",
    "TcpServeClient",
    "TcpServeServer",
    "TenantQuota",
    "TrafficEvent",
    "TrafficFeed",
    "UnknownHandleError",
    "parse_serve_url",
    "traffic_cells",
]
