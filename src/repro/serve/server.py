"""The SpTC contraction server — queueing, batching, tenancy, tracing.

:class:`SpTCServer` fronts the existing engines with a long-running
service:

- Requests enter through :meth:`~SpTCServer.submit` (thread-safe,
  returns a :class:`PendingResult`) or :meth:`~SpTCServer.submit_async`
  (awaitable bridge for the asyncio TCP front in
  :mod:`repro.serve.net`). Admission control and weighted-fair
  ordering live in :class:`~repro.serve.scheduler.FairScheduler`.
- One dispatcher thread per execution slot pops fair batches and runs
  them. ``execution="worker"`` (default) executes on persistent
  :class:`~repro.serve.pool.ServeWorker` processes whose caches stay
  warm across requests; ``execution="inline"`` runs ``contract()`` on
  the dispatcher thread itself (no process boundary — handy for tests
  and single-process embedding).
- Batches group requests sharing a *signature* — same pinned Y handle,
  contract modes and options — onto one slot back-to-back, so the
  HtY/plan/kernel caches hit for every follower. A batch whose
  requests ask ``plan="auto"`` gets one parent-side
  :func:`~repro.planner.choose_plan` decision recorded as the batch's
  ``plan`` span (the worker's own cached decision governs execution
  and is identical by determinism).
- Failure isolation: a killed, hung or corrupting worker affects only
  the request it was running — the slot respawns (fresh worker id, so
  pinned fault specs never refire) and the request is retried up to
  ``max_retries`` times, then recomputed serially in the parent
  (``on_failure="serial"``, bit-identical by construction) or failed
  (``"raise"``). Other slots, other tenants and the server itself
  never restart. Deterministic Python errors fail fast without
  burning the worker or a retry.
- Observability: every request gets a trace id and (when tracing is
  on) a private :class:`~repro.obs.Tracer` carrying
  ``request → queue_wait → plan → execute`` spans plus the engine's
  stage spans shipped back from the worker. Per-tenant counters and
  latency histograms export through
  :class:`~repro.obs.MetricsRegistry` as ``serve.<tenant>.*``.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.profile import RunProfile
from repro.errors import (
    ServeError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import CAT_CONTRACTION, Tracer
from repro.ooc.budget import MemoryBudget
from repro.serve.pool import ServeWorker, WorkerDied
from repro.serve.registry import OperandRegistry, PinnedOperand
from repro.serve.scheduler import FairScheduler, TenantQuota
from repro.serve.telemetry import TenantStats
from repro.tensor.coo import SparseTensor

__all__ = [
    "PendingResult",
    "ServeConfig",
    "ServeResponse",
    "SpTCServer",
]

#: contract() keywords a request's ``options`` may carry. Everything is
#: passed through verbatim — the served call *is* the direct call, so
#: results and Table-2 traffic match a local ``contract()`` with the
#: same options byte for byte.
ALLOWED_OPTIONS = frozenset(
    {
        "method",
        "plan",
        "threads",
        "backend",
        "max_workers",
        "sort_output",
        "num_buckets",
        "use_hty_cache",
        "planner",
        "max_retries",
        "on_failure",
        "memory_budget",
        "spill_root",
    }
)


@dataclass
class ServeConfig:
    """Server-wide knobs (all have serviceable defaults)."""

    workers: int = 2
    execution: str = "worker"  # "worker" | "inline"
    max_queue_depth: int = 64
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    memory_budget: Union[int, str, None] = "256M"
    max_batch: int = 8
    max_retries: int = 2
    on_failure: str = "serial"  # after retries: "serial" | "raise"
    unit_timeout: Optional[float] = 60.0
    start_method: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None
    tracing: bool = True
    #: optional :class:`~repro.serve.telemetry.TrafficFeed`; every
    #: successful request's RunProfile is published here so a placement
    #: engine (``repro.memory.migration.MigrationEngine``) can learn
    #: cross-request hotness
    traffic_feed: Optional[object] = None

    def __post_init__(self) -> None:
        if self.execution not in ("worker", "inline"):
            raise ServeError(
                f"execution must be 'worker' or 'inline', "
                f"got {self.execution!r}"
            )
        if self.on_failure not in ("serial", "raise"):
            raise ServeError(
                f"on_failure must be 'serial' or 'raise', "
                f"got {self.on_failure!r}"
            )
        if self.workers < 1:
            raise ServeError(
                f"need at least one worker, got {self.workers}"
            )


class PendingResult:
    """Handle to an in-flight request; fulfilled by the dispatcher."""

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        self._event = threading.Event()
        self._value: Optional["ServeResponse"] = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List = []
        self._lock = threading.Lock()

    def _fulfill(
        self,
        value: Optional["ServeResponse"] = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._value = value
            self._exc = exc
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def done(self) -> bool:
        return self._event.is_set()

    def add_done_callback(self, fn) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def result(
        self, timeout: Optional[float] = None
    ) -> "ServeResponse":
        if not self._event.wait(timeout):
            raise ServeError(
                f"request {self.request_id} did not complete within "
                f"{timeout}s"
            )
        if self._exc is not None:
            raise self._exc
        assert self._value is not None
        return self._value

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        self._event.wait(timeout)
        return self._exc


@dataclass
class ServeResponse:
    """One completed request: the result plus service metadata."""

    request_id: str
    trace_id: str
    tenant: str
    tensor: SparseTensor
    profile: RunProfile
    worker: Optional[int]
    batch_id: int
    queue_seconds: float
    service_seconds: float
    retries: int = 0
    degraded: bool = False
    tracer: Optional[Tracer] = field(default=None, repr=False)

    @property
    def records(self) -> list:
        return [] if self.tracer is None else self.tracer.records

    def write_trace(self, path) -> None:
        """Chrome trace-event JSON of this request's timeline."""
        if self.tracer is None:
            raise ServeError(
                f"request {self.request_id} was served with tracing "
                f"off; submit with trace=True"
            )
        self.tracer.write(path)


@dataclass
class _Request:
    """Internal queue entry."""

    request_id: str
    trace_id: str
    tenant: str
    x: Union[str, SparseTensor]
    y: Union[str, SparseTensor]
    cx: Tuple[int, ...]
    cy: Tuple[int, ...]
    options: dict
    pending: PendingResult
    tracer: Optional[Tracer]
    fault_plan: Optional[FaultPlan]
    arrival: float
    x_entry: Optional[PinnedOperand] = None
    y_entry: Optional[PinnedOperand] = None


class _Slot:
    """One dispatch slot: a thread plus (optionally) its worker."""

    def __init__(self, index: int, worker: Optional[ServeWorker]):
        self.index = index
        self.worker = worker
        self.thread: Optional[threading.Thread] = None
        self.respawns = 0


class SpTCServer:
    """Long-running contraction service over the existing engines."""

    def __init__(self, config: Optional[ServeConfig] = None, **over):
        config = config or ServeConfig()
        if over:
            config = dataclasses.replace(config, **over)
        self.config = config
        budget = (
            None
            if config.memory_budget is None
            else MemoryBudget(config.memory_budget)
        )
        tenant_budgets: Dict[str, MemoryBudget] = {}
        if budget is not None:
            fractions = {
                tenant: quota.memory_fraction
                for tenant, quota in config.quotas.items()
                if quota.memory_fraction is not None
            }
            if fractions:
                tenant_budgets = budget.subdivide(fractions)
        self.registry = OperandRegistry(
            budget, tenant_budgets=tenant_budgets
        )
        self.scheduler = FairScheduler(
            max_queue_depth=config.max_queue_depth,
            default_quota=config.default_quota,
        )
        for tenant, quota in config.quotas.items():
            self.scheduler.register(tenant, quota)
        self._slots: List[_Slot] = []
        self._next_wid = 0
        self._seq = itertools.count(1)
        self._batch_seq = itertools.count(1)
        self._stats_lock = threading.Lock()
        self._tenants: Dict[str, TenantStats] = {}
        self._service_ewma: Optional[float] = None
        self.batches = 0
        self.batched_requests = 0
        self.serial_fallbacks = 0
        self.planned_batches = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SpTCServer":
        """Spawn workers and dispatcher threads. Idempotent."""
        if self._started:
            return self
        if self._closed:
            raise ServeError("server is closed")
        self._started = True
        for i in range(self.config.workers):
            worker = None
            if self.config.execution == "worker":
                worker = ServeWorker(
                    self._take_wid(),
                    start_method=self.config.start_method,
                    fault_plan=self.config.fault_plan,
                )
            self._slots.append(_Slot(i, worker))
        for slot in self._slots:
            t = threading.Thread(
                target=self._dispatch_loop,
                args=(slot,),
                name=f"sptc-serve-slot-{slot.index}",
                daemon=True,
            )
            slot.thread = t
            t.start()
        return self

    def close(self) -> None:
        """Stop dispatchers, workers, and unlink every pinned segment.

        Queued requests that never dispatched are failed with
        :class:`~repro.errors.ServeError`; in-flight requests complete
        first (their dispatcher thread is joined).
        """
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        for _, req in self.scheduler.drain():
            self._release_entries(req)
            req.pending._fulfill(
                exc=ServeError("server shut down before dispatch")
            )
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=30.0)
        for slot in self._slots:
            if slot.worker is not None:
                slot.worker.close()
        self.registry.close()

    def __enter__(self) -> "SpTCServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _take_wid(self) -> int:
        wid, self._next_wid = self._next_wid, self._next_wid + 1
        return wid

    # ------------------------------------------------------------------
    # operand registry pass-throughs
    # ------------------------------------------------------------------
    def pin(
        self,
        name: str,
        tensor: SparseTensor,
        *,
        tenant: str = "default",
    ) -> str:
        return self.registry.pin(name, tensor, tenant=tenant)

    def unpin(self, name: str, *, force: bool = False) -> None:
        self.registry.unpin(name, force=force)

    def handles(self) -> Tuple[str, ...]:
        return self.registry.handles()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _tenant_stats(self, tenant: str) -> TenantStats:
        with self._stats_lock:
            st = self._tenants.get(tenant)
            if st is None:
                st = self._tenants[tenant] = TenantStats(tenant)
            return st

    def _retry_after(self) -> float:
        with self._stats_lock:
            ewma = self._service_ewma or 0.05
        depth = self.scheduler.depth() + 1
        return max(depth * ewma / max(self.config.workers, 1), 0.05)

    def _release_entries(self, req: _Request) -> None:
        for entry in (req.x_entry, req.y_entry):
            if entry is not None:
                self.registry.release(entry.name)
        req.x_entry = req.y_entry = None

    def submit(
        self,
        x: Union[str, SparseTensor],
        y: Union[str, SparseTensor],
        cx: Sequence[int],
        cy: Sequence[int],
        *,
        tenant: str = "default",
        options: Optional[dict] = None,
        trace: Optional[bool] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> PendingResult:
        """Enqueue one contraction; returns a :class:`PendingResult`.

        *x*/*y* are pinned handle names (str) or literal tensors;
        *options* is a whitelist-checked ``contract()`` kwargs dict
        passed through verbatim. Raises
        :class:`~repro.errors.ServiceOverloadedError` when admission
        control rejects the request.
        """
        if self._closed:
            raise ServeError("server is closed")
        options = dict(options or {})
        unknown = set(options) - ALLOWED_OPTIONS
        if unknown:
            raise ServeError(
                f"unknown request option(s) {sorted(unknown)}; "
                f"allowed: {sorted(ALLOWED_OPTIONS)}"
            )
        rid = f"r{next(self._seq):06d}"
        traced = self.config.tracing if trace is None else bool(trace)
        req = _Request(
            request_id=rid,
            trace_id=f"{tenant}-{rid}",
            tenant=tenant,
            x=x,
            y=y,
            cx=tuple(int(m) for m in cx),
            cy=tuple(int(m) for m in cy),
            options=options,
            pending=PendingResult(rid),
            tracer=Tracer() if traced else None,
            fault_plan=fault_plan,
            arrival=time.perf_counter(),
        )
        stats = self._tenant_stats(tenant)
        # hold the handles from submission so LRU eviction can never
        # pull an operand out from under a queued request
        try:
            if isinstance(x, str):
                req.x_entry = self.registry.acquire(x)
            if isinstance(y, str):
                req.y_entry = self.registry.acquire(y)
            self.scheduler.submit(
                req, tenant=tenant, retry_after=self._retry_after()
            )
        except ServiceOverloadedError:
            stats.note_rejected()
            self._release_entries(req)
            raise
        except BaseException:
            self._release_entries(req)
            raise
        stats.note_submitted()
        return req.pending

    def submit_and_wait(
        self, *args, timeout: Optional[float] = None, **kwargs
    ) -> ServeResponse:
        return self.submit(*args, **kwargs).result(timeout)

    async def submit_async(self, *args, **kwargs) -> ServeResponse:
        """Awaitable submit — the asyncio front over the thread back."""
        import asyncio

        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()

        def _done(pending: PendingResult) -> None:
            exc = pending._exc

            def _resolve() -> None:
                if future.cancelled():
                    return
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(pending._value)

            loop.call_soon_threadsafe(_resolve)

        self.submit(*args, **kwargs).add_done_callback(_done)
        return await future

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    @staticmethod
    def _batch_key(req: "_Request"):
        """Requests batch when they share Y, modes and options.

        Only handle-referenced Y operands batch (an inline Y has no
        stable identity), and fault-plan-carrying requests never batch
        — a chaos kill must not take followers down with it.
        """
        if not isinstance(req.y, str) or req.fault_plan is not None:
            return None
        return (
            req.y,
            req.cy,
            req.cx,
            tuple(sorted(req.options.items())),
        )

    def _dispatch_loop(self, slot: _Slot) -> None:
        while True:
            batch = self.scheduler.pop_batch(
                key=self._batch_key,
                max_batch=self.config.max_batch,
                timeout=0.2,
            )
            if not batch:
                if self._closed:
                    return
                continue
            bid = next(self._batch_seq)
            with self._stats_lock:
                self.batches += 1
                self.batched_requests += len(batch)
            plan_decision = self._plan_batch(batch)
            for _, req in batch:
                self._execute(slot, req, bid, plan_decision)

    def _plan_batch(self, batch) -> Optional[object]:
        """One parent-side planner decision per ``plan="auto"`` batch.

        Annotation only (the worker's identical cached decision governs
        execution); skipped when the batch head asks for an explicit
        schedule.
        """
        _, head = batch[0]
        if head.options.get("plan") != "auto":
            return None
        try:
            from repro.planner import plan_contraction

            x = self._resolve_operand(head, head.x, head.x_entry)
            y = self._resolve_operand(head, head.y, head.y_entry)
            decision = plan_contraction(
                x,
                y,
                head.cx,
                head.cy,
                max_workers=head.options.get("max_workers")
                or head.options.get("threads"),
            )
            with self._stats_lock:
                self.planned_batches += 1
            return decision
        except Exception:
            return None  # planning is advisory; never fail a batch

    def _resolve_operand(
        self,
        req: "_Request",
        ref: Union[str, SparseTensor],
        entry: Optional[PinnedOperand],
    ) -> SparseTensor:
        if not isinstance(ref, str):
            return ref
        if entry is not None and entry.view is not None:
            return entry.view
        return self.registry.get(ref)

    def _worker_descriptor(
        self,
        ref: Union[str, SparseTensor],
        entry: Optional[PinnedOperand],
    ) -> tuple:
        if isinstance(ref, str) and entry is not None:
            return entry.worker_ref()
        assert not isinstance(ref, str)
        return ("obj", ref)

    def _execute(
        self, slot: _Slot, req: "_Request", bid: int, decision
    ) -> None:
        t_start = time.perf_counter()
        queue_seconds = t_start - req.arrival
        tracer = req.tracer
        try:
            if slot.worker is None:
                result = self._run_inline(req, tracer)
            else:
                result = self._run_on_worker(slot, req, tracer)
            tensor, profile, service_seconds, retries, degraded = result
            t_end = time.perf_counter()
            if tracer is not None:
                tracer.add_span(
                    "queue_wait",
                    start=req.arrival,
                    end=t_start,
                    cat=CAT_CONTRACTION,
                    tenant=req.tenant,
                )
                if decision is not None:
                    tracer.add_span(
                        "plan",
                        start=t_start,
                        end=t_start,
                        cat=CAT_CONTRACTION,
                        **decision.span_args(),
                    )
                tracer.add_span(
                    "request",
                    start=req.arrival,
                    end=t_end,
                    cat=CAT_CONTRACTION,
                    trace_id=req.trace_id,
                    request_id=req.request_id,
                    tenant=req.tenant,
                    batch_id=bid,
                    slot=slot.index,
                    retries=retries,
                )
            response = ServeResponse(
                request_id=req.request_id,
                trace_id=req.trace_id,
                tenant=req.tenant,
                tensor=tensor,
                profile=profile,
                worker=None
                if slot.worker is None
                else slot.worker.wid,
                batch_id=bid,
                queue_seconds=queue_seconds,
                service_seconds=service_seconds,
                retries=retries,
                degraded=degraded,
                tracer=tracer,
            )
            feed = self.config.traffic_feed
            if feed is not None:
                feed.publish(req.tenant, profile)
            latency = t_end - req.arrival
            self._tenant_stats(req.tenant).note_completed(
                latency_seconds=latency,
                queue_seconds=queue_seconds,
                retries=retries,
                degraded=degraded,
            )
            with self._stats_lock:
                ewma = self._service_ewma
                self._service_ewma = (
                    service_seconds
                    if ewma is None
                    else 0.8 * ewma + 0.2 * service_seconds
                )
            self._release_entries(req)
            req.pending._fulfill(response)
        except BaseException as exc:
            self._tenant_stats(req.tenant).note_failed()
            self._release_entries(req)
            req.pending._fulfill(exc=exc)

    # ------------------------------------------------------------------
    def _run_inline(
        self, req: "_Request", tracer: Optional[Tracer]
    ) -> tuple:
        from repro.core import contract

        x = self._resolve_operand(req, req.x, req.x_entry)
        y = self._resolve_operand(req, req.y, req.y_entry)
        t0 = time.perf_counter()
        res = contract(
            x, y, req.cx, req.cy, tracer=tracer, **req.options
        )
        seconds = time.perf_counter() - t0
        return res.tensor, res.profile, seconds, 0, False

    def _run_on_worker(
        self, slot: _Slot, req: "_Request", tracer: Optional[Tracer]
    ) -> tuple:
        payload = {
            "x": self._worker_descriptor(req.x, req.x_entry),
            "y": self._worker_descriptor(req.y, req.y_entry),
            "cx": req.cx,
            "cy": req.cy,
            "options": req.options,
            "trace": tracer is not None,
            "fault_plan": req.fault_plan,
        }
        retries = 0
        while True:
            try:
                reply = slot.worker.run(
                    payload, timeout=self.config.unit_timeout
                )
            except WorkerDied as died:
                if tracer is not None:
                    tracer.instant(
                        "worker_failure",
                        reason=str(died),
                        worker=slot.worker.wid,
                    )
                slot.worker.respawn(self._take_wid())
                slot.respawns += 1
                retries += 1
                if retries <= self.config.max_retries:
                    continue
                if self.config.on_failure == "raise":
                    raise WorkerCrashError(
                        f"request {req.request_id} exhausted "
                        f"{self.config.max_retries} retries: {died}"
                    ) from died
                # serial fallback: recompute in the parent — same
                # contract() call, same bytes; only this request
                # degrades, the pool and other tenants are untouched
                tensor, profile, seconds, _, _ = self._run_inline(
                    req, tracer
                )
                profile.set_flag("serve_degraded", "serial")
                with self._stats_lock:
                    self.serial_fallbacks += 1
                if tracer is not None:
                    tracer.instant(
                        "serial_fallback", request=req.request_id
                    )
                return tensor, profile, seconds, retries, True
            else:
                break
        tensor = SparseTensor(
            reply["indices"],
            reply["values"],
            reply["shape"],
            copy=False,
            validate=False,
        )
        profile = RunProfile.from_json(reply["profile"])
        if tracer is not None:
            tracer.ingest(reply["records"])
        return tensor, profile, reply["seconds"], retries, False

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def fold_metrics(self, registry: MetricsRegistry) -> None:
        """Export service metrics (``serve.*``) into *registry*."""
        with self._stats_lock:
            tenants = dict(self._tenants)
            registry.set("serve.pool.batches", self.batches)
            registry.set(
                "serve.pool.batched_requests", self.batched_requests
            )
            registry.set(
                "serve.pool.serial_fallbacks", self.serial_fallbacks
            )
            registry.set(
                "serve.pool.planned_batches", self.planned_batches
            )
        registry.set("serve.pool.workers", len(self._slots))
        registry.set("serve.pool.execution", self.config.execution)
        registry.set(
            "serve.pool.respawns",
            sum(slot.respawns for slot in self._slots),
        )
        for tenant, stats in tenants.items():
            stats.fold(registry, prefix=f"serve.{tenant}")
            registry.set(
                f"serve.{tenant}.queue_depth",
                self.scheduler.depth(tenant),
            )
        registry.set("serve.queue_depth", self.scheduler.depth())
        for name, value in self.registry.counters().items():
            registry.set(f"serve.registry.{name}", value)

    def metrics(self) -> MetricsRegistry:
        """A fresh registry holding service + process-wide cache stats."""
        registry = MetricsRegistry()
        self.fold_metrics(registry)
        registry.record_caches()
        return registry
