"""Deterministic load generator for the contraction service.

Builds a seeded request mix over the Table-1 dataset surrogates
(:func:`repro.datasets.make_case`): a handful of distinct contraction
cases, interleaved across tenants by a :class:`random.Random` stream,
so the exact same traffic replays from the same
:class:`LoadSpec`. The generator pins each case's operands once, fires
the mix at a client at a chosen concurrency (optionally looping for a
wall-clock duration), and reports latency quantiles and throughput.

Every response is verifiable against ground truth:
:meth:`LoadGenerator.verify` recomputes each request with a direct
:func:`~repro.core.contract` call and demands bit-identical output —
and, for requests that did not opt into the HtY cache, byte-exact
Table-2 traffic cells. The serve integration tests and
``benchmarks/bench_serve.py`` both drive this module, so the CI smoke
job and the local suite measure the same traffic.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datasets import make_case
from repro.errors import ServeError, ServiceOverloadedError

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "LoadRequest",
    "LoadSpec",
    "traffic_cells",
]


def traffic_cells(profile) -> Dict[tuple, int]:
    """Table-2 cells: (object, stage, kind, pattern) → total bytes."""
    cells: Dict[tuple, int] = {}
    for rec in profile.traffic:
        key = (rec.obj, rec.stage, rec.kind, rec.pattern)
        cells[key] = cells.get(key, 0) + rec.nbytes
    return cells


@dataclass(frozen=True)
class LoadSpec:
    """Seeded description of one load run — same spec, same traffic."""

    seed: int = 0
    requests: int = 24
    datasets: Tuple[str, ...] = ("uber", "nips")
    n_modes: int = 3
    scale: float = 0.02
    tenants: Tuple[str, ...] = ("alpha", "beta")
    distinct_cases: int = 3
    options: tuple = ()  # (key, value) pairs applied to every request


@dataclass(frozen=True)
class LoadRequest:
    """One slot in the mix: which case, which tenant, which options."""

    index: int
    tenant: str
    case_index: int
    options: tuple


def build_mix(spec: LoadSpec) -> List[LoadRequest]:
    """The deterministic request sequence for *spec*."""
    rng = random.Random(spec.seed)
    return [
        LoadRequest(
            index=i,
            tenant=rng.choice(spec.tenants),
            case_index=rng.randrange(spec.distinct_cases),
            options=tuple(spec.options),
        )
        for i in range(spec.requests)
    ]


@dataclass
class LoadReport:
    """Outcome of one load run."""

    concurrency: int
    wall_seconds: float
    completed: int
    failed: int
    overload_retries: int
    latencies_ms: List[float] = field(default_factory=list)
    results: List[Tuple[LoadRequest, object]] = field(
        default_factory=list, repr=False
    )
    errors: List[str] = field(default_factory=list)

    def quantile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]

    @property
    def p50_ms(self) -> float:
        return self.quantile_ms(0.50)

    @property
    def p99_ms(self) -> float:
        return self.quantile_ms(0.99)

    @property
    def rps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def summary(self) -> dict:
        return {
            "concurrency": self.concurrency,
            "wall_seconds": round(self.wall_seconds, 4),
            "completed": self.completed,
            "failed": self.failed,
            "overload_retries": self.overload_retries,
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "rps": round(self.rps, 2),
        }


class LoadGenerator:
    """Fires a :class:`LoadSpec` mix at a serve client."""

    def __init__(self, client, spec: Optional[LoadSpec] = None) -> None:
        self.client = client
        self.spec = spec or LoadSpec()
        self.cases = [
            make_case(
                self.spec.datasets[i % len(self.spec.datasets)],
                self.spec.n_modes,
                scale=self.spec.scale,
                seed=1000 + self.spec.seed * 97 + i,
            )
            for i in range(self.spec.distinct_cases)
        ]
        self.mix = build_mix(self.spec)
        self._handles: Dict[int, Tuple[str, str]] = {}
        self._pinned = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def handle_names(self, case_index: int) -> Tuple[str, str]:
        tag = f"lg{self.spec.seed}c{case_index}"
        return f"{tag}-x", f"{tag}-y"

    def pin_all(self, *, tenant: str = "loadgen") -> None:
        """Pin every distinct case's operands once (idempotent)."""
        for i, case in enumerate(self.cases):
            hx, hy = self.handle_names(i)
            self.client.pin(hx, case.x, tenant=tenant)
            self.client.pin(hy, case.y, tenant=tenant)
            self._handles[i] = (hx, hy)
        self._pinned = True

    def unpin_all(self) -> None:
        for hx, hy in self._handles.values():
            for handle in (hx, hy):
                try:
                    self.client.unpin(handle)
                except ServeError:
                    pass
        self._handles.clear()
        self._pinned = False

    # ------------------------------------------------------------------
    def _fire_one(self, req: LoadRequest, report: LoadReport) -> None:
        case = self.cases[req.case_index]
        if self._pinned:
            hx, hy = self._handles[req.case_index]
        else:
            hx, hy = case.x, case.y
        options = dict(req.options)
        t0 = time.perf_counter()
        while True:
            try:
                resp = self.client.submit(
                    hx,
                    hy,
                    case.cx,
                    case.cy,
                    tenant=req.tenant,
                    options=options,
                )
                break
            except ServiceOverloadedError as exc:
                # backpressure is an invitation, not a failure
                with self._lock:
                    report.overload_retries += 1
                time.sleep(max(exc.retry_after, 0.005))
            except Exception as exc:
                with self._lock:
                    report.failed += 1
                    report.errors.append(
                        f"request {req.index}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                return
        latency_ms = (time.perf_counter() - t0) * 1e3
        with self._lock:
            report.completed += 1
            report.latencies_ms.append(latency_ms)
            report.results.append((req, resp))

    def run(
        self,
        *,
        concurrency: int = 1,
        duration: Optional[float] = None,
    ) -> LoadReport:
        """One pass over the mix (or loop it for *duration* seconds)."""
        report = LoadReport(
            concurrency=concurrency,
            wall_seconds=0.0,
            completed=0,
            failed=0,
            overload_retries=0,
        )
        counter = iter(range(10**9))
        counter_lock = threading.Lock()
        t_start = time.perf_counter()
        t_end = None if duration is None else t_start + duration

        def _worker() -> None:
            while True:
                with counter_lock:
                    i = next(counter)
                if t_end is None:
                    if i >= len(self.mix):
                        return
                    req = self.mix[i]
                else:
                    if time.perf_counter() >= t_end:
                        return
                    req = self.mix[i % len(self.mix)]
                self._fire_one(req, report)

        threads = [
            threading.Thread(
                target=_worker, name=f"loadgen-{t}", daemon=True
            )
            for t in range(max(int(concurrency), 1))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report.wall_seconds = time.perf_counter() - t_start
        return report

    # ------------------------------------------------------------------
    def verify(self, report: LoadReport) -> int:
        """Every served result vs a direct ``contract()`` — exact.

        Bit-identity always; Table-2 traffic cells byte-exact unless
        the request opted into the HtY cache (a cache hit legitimately
        skips Y-read/HtY-write traffic). Returns the number of results
        checked; raises :class:`~repro.errors.ServeError` on the first
        mismatch.
        """
        import numpy as np

        from repro.core import contract

        direct_cache: Dict[tuple, object] = {}
        for req, resp in report.results:
            case = self.cases[req.case_index]
            options = dict(req.options)
            key = (req.case_index, req.options)
            if key not in direct_cache:
                direct_cache[key] = contract(
                    case.x, case.y, case.cx, case.cy, **options
                )
            direct = direct_cache[key]
            label = (
                f"request {req.index} (case {req.case_index}, "
                f"tenant {req.tenant})"
            )
            if not (
                np.array_equal(
                    resp.tensor.indices, direct.tensor.indices
                )
                and np.array_equal(
                    resp.tensor.values, direct.tensor.values
                )
                and tuple(resp.tensor.shape)
                == tuple(direct.tensor.shape)
            ):
                raise ServeError(
                    f"{label}: served result differs from direct "
                    f"contract()"
                )
            if not options.get("use_hty_cache"):
                served_cells = traffic_cells(resp.profile)
                direct_cells = traffic_cells(direct.profile)
                if served_cells != direct_cells:
                    raise ServeError(
                        f"{label}: served Table-2 traffic cells "
                        f"differ from direct contract()"
                    )
        return len(report.results)
