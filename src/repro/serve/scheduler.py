"""Multi-tenant request scheduling — weighted-fair queues + admission.

One FIFO deque per tenant, drained by start-time fair queuing: each
tenant carries a virtual *tag*; dispatching a request advances the
tenant's tag by ``cost / weight``, and the scheduler always serves the
non-empty tenant with the smallest tag. A weight-3 tenant therefore
gets ~3x the service of a weight-1 tenant under contention, and an
idle tenant re-entering the queue resumes at the current virtual time
(no banked credit, no starvation).

Admission control is a hard bound on queue depth — per tenant and
global. A submit over either bound raises
:class:`~repro.errors.ServiceOverloadedError` carrying the server's
retry-after estimate; nothing is silently dropped, and one tenant
flooding its queue cannot consume another tenant's slots.

Batching: :meth:`FairScheduler.pop_batch` takes the fair head and then
collects further queued requests sharing the head's *batch key* (same
pinned Y handle, contract modes and options — see the server's key
function), up to ``max_batch``. Batched requests ride one dispatch to
one warm worker, so per-signature caches (HtY, plan, kernel) hit
back-to-back; each collected request is charged to its own tenant's
tag so fairness accounting survives batching.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ServeError, ServiceOverloadedError

__all__ = ["FairScheduler", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant service limits.

    ``weight`` sets the tenant's share of dispatch capacity under
    contention; ``max_queue_depth`` bounds its queued requests;
    ``memory_fraction`` (optional) is the tenant's share of the operand
    registry's memory budget — ``None`` means uncapped within the
    global budget.
    """

    weight: float = 1.0
    max_queue_depth: int = 16
    memory_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ServeError(
                f"tenant weight must be positive, got {self.weight}"
            )
        if self.max_queue_depth < 1:
            raise ServeError(
                f"tenant queue depth must be >= 1, got "
                f"{self.max_queue_depth}"
            )


class FairScheduler:
    """Weighted-fair, depth-bounded multi-tenant queue."""

    def __init__(
        self,
        *,
        max_queue_depth: int = 64,
        default_quota: Optional[TenantQuota] = None,
    ) -> None:
        self.max_queue_depth = int(max_queue_depth)
        self.default_quota = default_quota or TenantQuota()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: Dict[str, deque] = {}
        self._quotas: Dict[str, TenantQuota] = {}
        self._tags: Dict[str, float] = {}
        self._vtime = 0.0
        self._depth = 0
        self._closed = False
        self.submitted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def register(self, tenant: str, quota: TenantQuota) -> None:
        with self._lock:
            self._quotas[tenant] = quota

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    def depth(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is None:
                return self._depth
            q = self._queues.get(tenant)
            return len(q) if q else 0

    # ------------------------------------------------------------------
    def submit(
        self,
        item,
        *,
        tenant: str,
        cost: float = 1.0,
        retry_after: float = 0.0,
    ) -> None:
        """Enqueue *item*, or raise ``ServiceOverloadedError``."""
        with self._cond:
            if self._closed:
                raise ServeError("scheduler is closed")
            quota = self.quota(tenant)
            q = self._queues.setdefault(tenant, deque())
            if self._depth >= self.max_queue_depth:
                self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
                raise ServiceOverloadedError(
                    f"service queue full ({self._depth} in flight, "
                    f"bound {self.max_queue_depth})",
                    retry_after=retry_after,
                    tenant=tenant,
                )
            if len(q) >= quota.max_queue_depth:
                self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
                raise ServiceOverloadedError(
                    f"tenant {tenant!r} queue full ({len(q)} queued, "
                    f"bound {quota.max_queue_depth})",
                    retry_after=retry_after,
                    tenant=tenant,
                )
            if not q:
                # (re)activation: resume at the current virtual time so
                # an idle period banks no credit
                self._tags[tenant] = max(
                    self._tags.get(tenant, 0.0), self._vtime
                )
            q.append((float(cost), item))
            self._depth += 1
            self.submitted[tenant] = self.submitted.get(tenant, 0) + 1
            self._cond.notify()

    # ------------------------------------------------------------------
    def _pick_locked(self) -> Optional[str]:
        best = None
        best_tag = 0.0
        for tenant, q in self._queues.items():
            if not q:
                continue
            tag = self._tags.get(tenant, 0.0)
            if best is None or tag < best_tag:
                best, best_tag = tenant, tag
        return best

    def _charge_locked(self, tenant: str, cost: float) -> None:
        tag = self._tags.get(tenant, self._vtime)
        self._vtime = max(self._vtime, tag)
        self._tags[tenant] = tag + cost / self.quota(tenant).weight

    def pop_batch(
        self,
        *,
        key: Optional[Callable] = None,
        max_batch: int = 1,
        timeout: Optional[float] = None,
    ) -> List[Tuple[str, object]]:
        """Fair head plus same-key followers; ``[]`` on timeout/close.

        Returns ``(tenant, item)`` pairs. Blocks up to *timeout* for
        work (forever when ``None``); returns immediately once the
        scheduler is closed and drained.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cond:
            while self._depth == 0:
                if self._closed:
                    return []
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if self._depth == 0:
                            return []
            head_tenant = self._pick_locked()
            assert head_tenant is not None
            cost, head = self._queues[head_tenant].popleft()
            self._depth -= 1
            self._charge_locked(head_tenant, cost)
            out: List[Tuple[str, object]] = [(head_tenant, head)]
            if key is None or max_batch <= 1:
                return out
            head_key = key(head)
            if head_key is None:
                return out
            for tenant, q in self._queues.items():
                if len(out) >= max_batch:
                    break
                i = 0
                while i < len(q) and len(out) < max_batch:
                    item_cost, item = q[i]
                    if key(item) == head_key:
                        del q[i]
                        self._depth -= 1
                        self._charge_locked(tenant, item_cost)
                        out.append((tenant, item))
                    else:
                        i += 1
            return out

    # ------------------------------------------------------------------
    def drain(self) -> List[Tuple[str, object]]:
        """Remove and return everything still queued (shutdown path)."""
        with self._cond:
            out = [
                (tenant, item)
                for tenant, q in self._queues.items()
                for _, item in q
            ]
            for q in self._queues.values():
                q.clear()
            self._depth = 0
            return out

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
