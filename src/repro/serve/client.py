"""Client surfaces for the contraction service.

:class:`ServeClient` wraps an in-process
:class:`~repro.serve.server.SpTCServer` — the zero-copy path used by
the test suite, the load generator and embedded deployments. The same
method surface is implemented over TCP by
:class:`~repro.serve.net.TcpServeClient`;
:meth:`ServeClient.connect` returns one, so callers write

    client = ServeClient.connect("tcp://127.0.0.1:7077")

and never care which transport they got.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.serve.server import PendingResult, ServeResponse, SpTCServer
from repro.tensor.coo import SparseTensor

__all__ = ["ServeClient"]


class ServeClient:
    """In-process client over one :class:`SpTCServer`.

    Does not own the server: :meth:`close` is a no-op so that many
    clients (one per tenant, say) can share a server whose lifecycle
    the creator manages.
    """

    def __init__(self, server: SpTCServer) -> None:
        self.server = server

    @classmethod
    def connect(cls, url: str, *, timeout: float = 120.0):
        """A TCP-backed client with this same surface."""
        from repro.serve.net import TcpServeClient

        return TcpServeClient(url, timeout=timeout)

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return not self.server._closed

    def pin(
        self,
        name: str,
        tensor: SparseTensor,
        *,
        tenant: str = "default",
    ) -> str:
        return self.server.pin(name, tensor, tenant=tenant)

    def unpin(self, name: str, *, force: bool = False) -> None:
        self.server.unpin(name, force=force)

    # ------------------------------------------------------------------
    def submit_nowait(
        self,
        x,
        y,
        cx: Sequence[int],
        cy: Sequence[int],
        *,
        tenant: str = "default",
        options: Optional[dict] = None,
        trace: Optional[bool] = None,
        fault_plan=None,
    ) -> PendingResult:
        return self.server.submit(
            x,
            y,
            cx,
            cy,
            tenant=tenant,
            options=options,
            trace=trace,
            fault_plan=fault_plan,
        )

    def submit(
        self,
        x,
        y,
        cx: Sequence[int],
        cy: Sequence[int],
        *,
        tenant: str = "default",
        options: Optional[dict] = None,
        trace: Optional[bool] = None,
        fault_plan=None,
        timeout: Optional[float] = None,
    ) -> ServeResponse:
        """Submit one contraction and block for its response."""
        return self.submit_nowait(
            x,
            y,
            cx,
            cy,
            tenant=tenant,
            options=options,
            trace=trace,
            fault_plan=fault_plan,
        ).result(timeout)

    def submit_batch(
        self,
        requests: Sequence[dict],
        *,
        timeout: Optional[float] = None,
    ) -> List[ServeResponse]:
        """Submit many requests at once, then wait for all of them.

        Each entry is a kwargs dict for :meth:`submit_nowait` (at
        minimum ``x``/``y``/``cx``/``cy``). Submitting the whole batch
        before waiting lets the scheduler group compatible requests
        onto one warm worker.
        """
        pendings = [self.submit_nowait(**req) for req in requests]
        return [p.result(timeout) for p in pendings]

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        return self.server.metrics().as_dict()

    def close(self) -> None:
        """No-op — the server's owner controls its lifecycle."""

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
