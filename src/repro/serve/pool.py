"""Persistent contraction workers — the server's warm process pool.

:class:`~repro.parallel.procpool.SpartaProcessPool` is built for one
contraction: its workers drain a chunk claim loop and exit, so a
one-shot ``contract(..., backend="process")`` pays pool start-up every
call. The serve layer instead keeps :class:`ServeWorker` processes
alive across requests, each running a small task loop: receive a
request payload, attach any registry-pinned operands zero-copy
(:func:`~repro.serve.registry.attach_pinned`), run the *exact* public
:func:`~repro.core.contract` call the client asked for, and ship back
the result arrays, the profile (lossless JSON round trip) and any
trace records. Because the call is literally ``contract()``, served
results are bit-identical and Table-2-traffic-byte-exact to a direct
call by construction — the server adds routing, never arithmetic.

Warmth is worker-resident state: each worker's process-wide HtY, plan,
kernel and planner caches persist across the requests it serves, so a
stream of same-signature requests pays stage-1 builds and plan
decisions once. The dispatcher's batch affinity (scheduler
``pop_batch``) routes same-signature batches to one worker to maximize
those hits.

Fault machinery mirrors procpool: payloads are digest-verified
(:func:`~repro.faults.payload_digest`), a killed/hung/corrupting
worker is replaced by a respawn with a *fresh* worker id (pinned
:class:`~repro.faults.FaultSpec` entries never refire on replacements),
and deterministic Python exceptions are reported without burning the
worker. Per-request fault plans ride the payload, so chaos tests can
target one tenant's request precisely.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Optional

import numpy as np

from repro.errors import WorkerCrashError
from repro.faults import FaultInjector, FaultPlan, payload_digest
from repro.parallel.procpool import (
    _close_conn,
    _kill_worker,
    _release_blocks,
    _start_piped_worker,
    resolve_start_method,
)
from repro.serve.registry import attach_pinned

__all__ = ["ServeWorker", "WorkerDied"]


class WorkerDied(Exception):
    """Internal: the worker must be respawned (death/hang/corruption)."""


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _materialize(desc, blocks):
    """An operand from its payload descriptor (shm handle or inline)."""
    if desc[0] == "shm":
        return attach_pinned(desc, blocks)
    return desc[1]


def _execute_payload(wid: int, seq: int, payload: dict) -> dict:
    from repro.core import contract
    from repro.obs.tracer import Tracer

    plan = payload.get("fault_plan")
    injector = (
        FaultInjector(plan, worker=wid) if plan is not None else None
    )
    blocks: list = []
    try:
        x = _materialize(payload["x"], blocks)
        y = _materialize(payload["y"], blocks)
        tracer = (
            Tracer(default_tid=wid + 1)
            if payload.get("trace")
            else None
        )
        if injector is not None:
            # kill/delay before the engine runs — mid-request death
            injector.fire("index_search", seq)
        t0 = time.perf_counter()
        res = contract(
            x,
            y,
            tuple(payload["cx"]),
            tuple(payload["cy"]),
            tracer=tracer,
            **payload.get("options", {}),
        )
        seconds = time.perf_counter() - t0
        z = res.tensor
        digest = payload_digest(z.indices, z.values)
        if injector is not None:
            # perturb after digesting so the parent detects it
            injector.maybe_corrupt(
                "accumulation", seq, (z.values, z.indices)
            )
        return {
            "indices": np.ascontiguousarray(z.indices),
            "values": np.ascontiguousarray(z.values),
            "shape": tuple(z.shape),
            "profile": res.profile.to_json(),
            "records": tracer.drain() if tracer is not None else [],
            "digest": digest,
            "seconds": seconds,
            "injector": injector,
        }
    finally:
        # close (never unlink — the registry owns the segments) before
        # the reply is shipped; the result arrays are fresh engine
        # output, not views into the operands
        _release_blocks(blocks, unlink=False)


def _serve_worker_main(wid: int, conn, fault_plan, trace) -> None:
    """Task loop of one persistent worker process.

    *fault_plan*/*trace* are the pool-level knobs of the shared
    ``_start_piped_worker`` protocol; per-request fault plans and trace
    flags ride each payload and take precedence.
    """
    del trace
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg[0] == "stop":
            return
        _, seq, payload = msg
        if payload.get("fault_plan") is None and fault_plan is not None:
            payload = dict(payload, fault_plan=fault_plan)
        try:
            reply = _execute_payload(wid, seq, payload)
        except BaseException as exc:
            # deterministic failure: report it and keep serving — only
            # this request degrades, never the worker
            try:
                conn.send(
                    ("err", seq, f"{type(exc).__name__}: {exc}")
                )
            except (OSError, ValueError, BrokenPipeError):
                return
            continue
        injector = reply.pop("injector", None)
        try:
            conn.send(("ok", seq, reply))
        except (OSError, ValueError, BrokenPipeError):
            return
        if injector is not None:
            # post-shipment death: the parent already holds the result
            injector.fire("writeback", seq)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ServeWorker:
    """One persistent worker slot: process + duplex pipe + respawn."""

    def __init__(
        self,
        wid: int,
        *,
        start_method: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.method = resolve_start_method(start_method)
        self.ctx = mp.get_context(self.method)
        self.fault_plan = fault_plan
        self.wid = wid
        self.seq = 0
        self.proc = None
        self.conn = None
        self._spawn()

    def _spawn(self) -> None:
        # Start the parent's shared-memory resource tracker BEFORE
        # forking: a child forked without one would lazily spawn its
        # own on first registry attach (py<3.13 registers attaches),
        # and that private tracker unlinks the parent's pinned
        # segments when the worker exits.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except (ImportError, AttributeError):  # pragma: no cover
            pass
        self.proc, self.conn = _start_piped_worker(
            self.ctx,
            self.method,
            _serve_worker_main,
            (self.wid,),
            self.fault_plan,
            False,
        )

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return None if self.proc is None else self.proc.pid

    # ------------------------------------------------------------------
    def run(self, payload: dict, *, timeout: Optional[float] = None):
        """Execute one request payload; returns the reply dict.

        Raises :class:`WorkerDied` when the worker must be replaced
        (hard death, hang past *timeout* — the worker is killed first —
        or a payload that fails digest verification), and
        :class:`~repro.errors.WorkerCrashError` for a deterministic
        Python exception reported by the worker (the worker survives;
        re-running would fail identically, so no retry is warranted).
        """
        self.seq += 1
        seq = self.seq
        try:
            self.conn.send(("task", seq, payload))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise WorkerDied(f"send failed: {exc}") from None
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            try:
                ready = self.conn.poll(0.05)
            except (OSError, ValueError) as exc:
                raise WorkerDied(f"pipe failed: {exc}") from None
            if not ready:
                if not self.alive:
                    code = (
                        None if self.proc is None else self.proc.exitcode
                    )
                    raise WorkerDied(
                        f"worker {self.wid} died (exit code {code})"
                    )
                if (
                    deadline is not None
                    and time.monotonic() > deadline
                ):
                    _kill_worker(self.proc)
                    raise WorkerDied(
                        f"worker {self.wid} timed out after "
                        f"{timeout:.1f}s"
                    )
                continue
            try:
                msg = self.conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerDied(f"recv failed: {exc}") from None
            tag = msg[0]
            if msg[1] != seq:
                continue  # stale reply from an earlier, abandoned task
            if tag == "err":
                raise WorkerCrashError(
                    f"request failed in worker {self.wid}: {msg[2]}"
                )
            reply = msg[2]
            check = payload_digest(reply["indices"], reply["values"])
            if check != reply["digest"]:
                # corrupt payload: the sender cannot be trusted
                _kill_worker(self.proc)
                raise WorkerDied(
                    f"worker {self.wid} shipped a corrupt payload "
                    f"(digest mismatch)"
                )
            return reply

    # ------------------------------------------------------------------
    def respawn(self, new_wid: int) -> None:
        """Replace the process under a fresh worker id."""
        if self.proc is not None:
            _kill_worker(self.proc)
        _close_conn(self.conn)
        self.wid = new_wid
        self.seq = 0
        self._spawn()

    def close(self) -> None:
        if self.conn is not None:
            try:
                self.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        if self.proc is not None:
            self.proc.join(timeout=2.0)
            _kill_worker(self.proc)
        _close_conn(self.conn)
        self.conn = None
        self.proc = None
