"""TCP front end — newline-delimited JSON over a plain socket.

The repository adds no dependencies, so the wire protocol is the
simplest thing that preserves exactness: one JSON object per line,
tensors shipped as nested lists. Python's ``json`` emits floats with
``repr`` (shortest round-trip form), so every float64 value crosses
the wire bit-exactly — a served result checked against a local
``contract()`` matches byte for byte even through the TCP path.

Requests (client → server), one per line::

    {"op": "ping"}
    {"op": "pin",    "name": ..., "tenant": ..., "tensor": <wire>}
    {"op": "unpin",  "name": ..., "force": false}
    {"op": "contract", "x": {"handle": ...} | {"tensor": <wire>},
     "y": ..., "cx": [...], "cy": [...], "tenant": ...,
     "options": {...}}
    {"op": "metrics"}

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error":
"<Type>", "message": ..., "retry_after": ...}``; the client maps
errors back onto the matching exception types
(:class:`~repro.errors.ServiceOverloadedError` keeps its retry-after).

:class:`TcpServeServer` is the asyncio front over the threaded
:class:`~repro.serve.server.SpTCServer` back: the event loop accepts
connections and awaits :meth:`~repro.serve.server.SpTCServer.submit_async`
per request, so a slow contraction never blocks other clients on the
same loop. Trace records stay server-side (the CLI writes sample
traces from the server process); everything else in a
:class:`~repro.serve.server.ServeResponse` crosses the wire.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.profile import RunProfile
from repro.errors import (
    ServeError,
    ServiceOverloadedError,
    UnknownHandleError,
)
from repro.serve.server import ServeResponse, SpTCServer
from repro.tensor.coo import SparseTensor

__all__ = [
    "TcpServeClient",
    "TcpServeServer",
    "parse_serve_url",
    "tensor_from_wire",
    "tensor_to_wire",
]

#: per-line size bound — big enough for the bench tensors, small enough
#: that a garbage client cannot balloon the server
_LINE_LIMIT = 1 << 27


def parse_serve_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` (or bare ``host:port``) → ``(host, port)``."""
    spec = url.strip()
    if spec.startswith("tcp://"):
        spec = spec[len("tcp://") :]
    host, sep, port = spec.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ServeError(
            f"malformed serve url {url!r}; expected tcp://host:port"
        )
    return host, int(port)


def tensor_to_wire(t: SparseTensor) -> dict:
    return {
        "shape": [int(d) for d in t.shape],
        "indices": np.asarray(t.indices).tolist(),
        "indices_dtype": np.asarray(t.indices).dtype.str,
        "values": np.asarray(t.values).tolist(),
        "values_dtype": np.asarray(t.values).dtype.str,
    }


def tensor_from_wire(wire: dict) -> SparseTensor:
    shape = tuple(int(d) for d in wire["shape"])
    idx = np.asarray(wire["indices"], dtype=wire["indices_dtype"])
    if idx.size == 0:
        idx = idx.reshape(0, len(shape))
    val = np.asarray(wire["values"], dtype=wire["values_dtype"])
    return SparseTensor(idx, val, shape, copy=False, validate=False)


def _operand_to_wire(ref) -> dict:
    if isinstance(ref, str):
        return {"handle": ref}
    return {"tensor": tensor_to_wire(ref)}


def _operand_from_wire(desc: dict) -> Union[str, SparseTensor]:
    if "handle" in desc:
        return desc["handle"]
    return tensor_from_wire(desc["tensor"])


def _error_payload(exc: BaseException) -> dict:
    out = {
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, ServiceOverloadedError):
        out["retry_after"] = exc.retry_after
        out["tenant"] = exc.tenant
    return out


def _response_payload(resp: ServeResponse) -> dict:
    return {
        "ok": True,
        "request_id": resp.request_id,
        "trace_id": resp.trace_id,
        "tenant": resp.tenant,
        "tensor": tensor_to_wire(resp.tensor),
        "profile": resp.profile.to_json(),
        "worker": resp.worker,
        "batch_id": resp.batch_id,
        "queue_seconds": resp.queue_seconds,
        "service_seconds": resp.service_seconds,
        "retries": resp.retries,
        "degraded": resp.degraded,
    }


class TcpServeServer:
    """Asyncio TCP listener in a thread, fronting one SpTCServer."""

    def __init__(
        self,
        server: SpTCServer,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port  # 0 = ephemeral; real port set at start()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._listener = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    async def _handle_msg(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "pin":
            self.server.pin(
                msg["name"],
                tensor_from_wire(msg["tensor"]),
                tenant=msg.get("tenant", "default"),
            )
            return {"ok": True, "name": msg["name"]}
        if op == "unpin":
            self.server.unpin(
                msg["name"], force=bool(msg.get("force", False))
            )
            return {"ok": True, "name": msg["name"]}
        if op == "contract":
            resp = await self.server.submit_async(
                _operand_from_wire(msg["x"]),
                _operand_from_wire(msg["y"]),
                tuple(msg["cx"]),
                tuple(msg["cy"]),
                tenant=msg.get("tenant", "default"),
                options=msg.get("options") or {},
            )
            return _response_payload(resp)
        if op == "metrics":
            return {"ok": True, "metrics": self.server.metrics().as_dict()}
        raise ServeError(f"unknown wire op {op!r}")

    async def _on_client(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    msg = json.loads(line)
                    reply = await self._handle_msg(msg)
                except Exception as exc:  # per-request: connection lives
                    reply = _error_payload(exc)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (
            ConnectionResetError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            # shutdown cancels handler tasks; exiting cleanly keeps the
            # streams machinery from logging a phantom exception
            pass
        finally:
            writer.close()

    async def _serve(self) -> None:
        self._listener = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=_LINE_LIMIT
        )
        self.port = self._listener.sockets[0].getsockname()[1]
        self._ready.set()
        async with self._listener:
            await self._listener.serve_forever()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve())
        except asyncio.CancelledError:
            pass
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
        finally:
            self._loop.close()

    # ------------------------------------------------------------------
    def start(self) -> "TcpServeServer":
        self.server.start()
        self._thread = threading.Thread(
            target=self._run, name="sptc-serve-tcp", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServeError("TCP listener failed to start in 10s")
        if self._startup_error is not None:
            raise ServeError(
                f"TCP listener failed: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():

            def _shutdown() -> None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.server.close()

    @property
    def url(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def __enter__(self) -> "TcpServeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


_WIRE_ERRORS = {
    "ServiceOverloadedError": ServiceOverloadedError,
    "UnknownHandleError": UnknownHandleError,
}


class TcpServeClient:
    """Blocking socket client with the ServeClient surface."""

    def __init__(self, url: str, *, timeout: float = 120.0) -> None:
        self.url = url
        host, port = parse_serve_url(url)
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _roundtrip(self, msg: dict) -> dict:
        with self._lock:
            self._file.write(json.dumps(msg).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        if not line:
            raise ServeError(f"server at {self.url} closed the connection")
        reply = json.loads(line)
        if reply.get("ok"):
            return reply
        err_type = _WIRE_ERRORS.get(reply.get("error", ""))
        message = reply.get("message", "request failed")
        if err_type is ServiceOverloadedError:
            raise ServiceOverloadedError(
                message,
                retry_after=float(reply.get("retry_after", 0.0)),
                tenant=reply.get("tenant"),
            )
        if err_type is not None:
            raise err_type(message)
        raise ServeError(
            f"{reply.get('error', 'ServeError')}: {message}"
        )

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def pin(
        self,
        name: str,
        tensor: SparseTensor,
        *,
        tenant: str = "default",
    ) -> str:
        self._roundtrip(
            {
                "op": "pin",
                "name": name,
                "tenant": tenant,
                "tensor": tensor_to_wire(tensor),
            }
        )
        return name

    def unpin(self, name: str, *, force: bool = False) -> None:
        self._roundtrip({"op": "unpin", "name": name, "force": force})

    def submit(
        self,
        x,
        y,
        cx,
        cy,
        *,
        tenant: str = "default",
        options: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> ServeResponse:
        del timeout  # socket timeout governs the TCP path
        reply = self._roundtrip(
            {
                "op": "contract",
                "x": _operand_to_wire(x),
                "y": _operand_to_wire(y),
                "cx": [int(m) for m in cx],
                "cy": [int(m) for m in cy],
                "tenant": tenant,
                "options": dict(options or {}),
            }
        )
        return ServeResponse(
            request_id=reply["request_id"],
            trace_id=reply["trace_id"],
            tenant=reply["tenant"],
            tensor=tensor_from_wire(reply["tensor"]),
            profile=RunProfile.from_json(reply["profile"]),
            worker=reply["worker"],
            batch_id=reply["batch_id"],
            queue_seconds=reply["queue_seconds"],
            service_seconds=reply["service_seconds"],
            retries=reply["retries"],
            degraded=reply["degraded"],
            tracer=None,
        )

    def metrics(self) -> dict:
        return self._roundtrip({"op": "metrics"})["metrics"]

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
