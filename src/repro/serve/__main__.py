"""``python -m repro.serve`` — run the contraction service over TCP.

Examples::

    python -m repro.serve --port 7077 --workers 2
    python -m repro.serve --execution inline --duration 30
    python -m repro.serve --quota alpha=3 --quota beta=1:0.25

The process prints ``serving on tcp://host:port`` once the listener is
live (the CI smoke job and scripts wait for that line), then serves
until ``--duration`` elapses or the process receives SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import Dict, Optional, Sequence

from repro.errors import ServeError
from repro.serve.net import TcpServeServer
from repro.serve.scheduler import TenantQuota
from repro.serve.server import ServeConfig, SpTCServer


def _parse_quota(spec: str) -> tuple:
    """``tenant=weight[:memory_fraction]`` → (tenant, TenantQuota)."""
    try:
        tenant, _, rhs = spec.partition("=")
        if not tenant or not rhs:
            raise ValueError(spec)
        weight_s, _, fraction_s = rhs.partition(":")
        quota = TenantQuota(
            weight=float(weight_s),
            memory_fraction=float(fraction_s) if fraction_s else None,
        )
        return tenant, quota
    except (ValueError, ServeError) as exc:
        raise argparse.ArgumentTypeError(
            f"bad --quota {spec!r} (want tenant=weight[:fraction]): "
            f"{exc}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="SpTC-as-a-service: persistent contraction server",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, printed at startup)")
    p.add_argument("--workers", type=int, default=2,
                   help="persistent worker processes (default 2)")
    p.add_argument("--execution", choices=["worker", "inline"],
                   default="worker")
    p.add_argument("--memory-budget", default="256M",
                   help="operand-registry budget (e.g. 512M; default "
                        "256M)")
    p.add_argument("--max-queue-depth", type=int, default=64)
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--quota", action="append", type=_parse_quota,
                   default=[], metavar="TENANT=WEIGHT[:FRACTION]",
                   help="per-tenant weight and optional memory share "
                        "(repeatable)")
    p.add_argument("--no-trace", action="store_true",
                   help="disable per-request tracing")
    p.add_argument("--duration", type=float, default=None,
                   help="serve for N seconds then exit (default: "
                        "until SIGINT)")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    quotas: Dict[str, TenantQuota] = dict(args.quota)
    config = ServeConfig(
        workers=args.workers,
        execution=args.execution,
        max_queue_depth=args.max_queue_depth,
        quotas=quotas,
        memory_budget=args.memory_budget,
        max_batch=args.max_batch,
        tracing=not args.no_trace,
    )
    stop = threading.Event()

    def _on_signal(signum, frame):
        del signum, frame
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)

    front = TcpServeServer(
        SpTCServer(config), host=args.host, port=args.port
    )
    front.start()
    try:
        print(f"serving on {front.url}", flush=True)
        stop.wait(timeout=args.duration)
    finally:
        front.stop()
        print("server stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
