"""Per-tenant service telemetry — latency histograms and counters.

The server keeps one :class:`TenantStats` per tenant and folds them
into the repo-wide :class:`~repro.obs.MetricsRegistry` under the
``serve.<tenant>.*`` namespace (see the naming-scheme docstring in
:mod:`repro.obs.metrics`). Latency quantiles come from a log2-bucketed
histogram — constant memory per tenant regardless of request volume,
with quantile error bounded by one bucket (a factor of 2), which is
plenty for p50/p99 dashboards and the benchmark ladder; exact min/max
and the sample count ride alongside for calibration.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "LatencyHistogram",
    "TenantStats",
    "TrafficEvent",
    "TrafficFeed",
]

#: finest histogram bucket: everything below 50 microseconds
_BASE_SECONDS = 50e-6


class LatencyHistogram:
    """Log2-bucketed positive-duration histogram with quantiles."""

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        ratio = seconds / _BASE_SECONDS
        bucket = 0 if ratio <= 1.0 else int(math.ceil(math.log2(ratio)))
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile (seconds)."""
        if not self.count:
            return 0.0
        rank = max(int(math.ceil(q * self.count)), 1)
        seen = 0
        for bucket in sorted(self.counts):
            seen += self.counts[bucket]
            if seen >= rank:
                return min(_BASE_SECONDS * (2.0 ** bucket), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class TrafficEvent:
    """One completed request's traffic profile, tagged by tenant.

    ``profile`` is the run's :class:`~repro.core.profile.RunProfile` —
    the per-stage :class:`~repro.core.profile.TrafficRecord` stream a
    :class:`~repro.memory.migration.MigrationEngine` learns placement
    hotness from.
    """

    tenant: str
    profile: object


class TrafficFeed:
    """Bounded, thread-safe stream of completed-request traffic.

    The server publishes every successful request's
    :class:`~repro.core.profile.RunProfile` here (when a feed is
    configured); a placement engine drains it between scheduling
    decisions — the cross-request signal that makes its past-window
    policies see the *workload*, not just the one run being placed.
    Bounded so an idle consumer costs O(maxlen), not O(request count);
    overflow silently drops the oldest events (``dropped`` counts them).
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=int(maxlen))
        self.published = 0
        self.dropped = 0

    def publish(self, tenant: str, profile) -> None:
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(TrafficEvent(str(tenant), profile))
            self.published += 1

    def drain(self) -> Tuple[TrafficEvent, ...]:
        """Remove and return every pending event, oldest first."""
        with self._lock:
            events = tuple(self._events)
            self._events.clear()
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class TenantStats:
    """Thread-safe per-tenant request counters + latency histograms."""

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self._lock = threading.Lock()
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.retries = 0
        self.degraded = 0
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()

    # ------------------------------------------------------------------
    def note_submitted(self) -> None:
        with self._lock:
            self.requests += 1

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_completed(
        self,
        *,
        latency_seconds: float,
        queue_seconds: float,
        retries: int = 0,
        degraded: bool = False,
    ) -> None:
        with self._lock:
            self.completed += 1
            self.retries += int(retries)
            if degraded:
                self.degraded += 1
            self.latency.observe(latency_seconds)
            self.queue_wait.observe(queue_seconds)

    def note_failed(self) -> None:
        with self._lock:
            self.failed += 1

    # ------------------------------------------------------------------
    def fold(self, registry, *, prefix: str) -> None:
        """Export under ``<prefix>.*`` (duck-typed MetricsRegistry)."""
        with self._lock:
            registry.set(f"{prefix}.requests", self.requests)
            registry.set(f"{prefix}.completed", self.completed)
            registry.set(f"{prefix}.failed", self.failed)
            registry.set(f"{prefix}.rejected", self.rejected)
            registry.set(f"{prefix}.retries", self.retries)
            registry.set(f"{prefix}.degraded", self.degraded)
            for name, hist in (
                ("latency", self.latency),
                ("queue_wait", self.queue_wait),
            ):
                registry.set(
                    f"{prefix}.{name}.p50_ms",
                    hist.quantile(0.50) * 1e3,
                )
                registry.set(
                    f"{prefix}.{name}.p99_ms",
                    hist.quantile(0.99) * 1e3,
                )
                registry.set(
                    f"{prefix}.{name}.mean_ms", hist.mean * 1e3
                )
                registry.set(
                    f"{prefix}.{name}.max_ms",
                    (hist.max if hist.count else 0.0) * 1e3,
                )
