"""Operand registry — named, shared-memory-pinned tensors.

The server's clients contract against the same hot operands over and
over (the paper's HtY reuse argument, lifted to a request stream).
Re-shipping an operand's arrays with every request would dominate
service time, so clients *pin* a tensor once under a chosen handle
name and submit requests that reference the handle. A pin copies the
COO arrays into two named ``multiprocessing.shared_memory`` segments;
from then on every consumer — the dispatcher thread, any persistent
worker process — attaches zero-copy via
:meth:`~repro.tensor.coo.SparseTensor.from_shared_buffers`.

Lifecycle:

- **pin/unpin** are refcount-free bookkeeping: a pin registers the
  operand (idempotent for identical content), an unpin removes it.
- **acquire/release** refcount in-flight use. The server acquires every
  handle a request references at submission and releases on
  completion, so an operand can never vanish under a running
  contraction.
- **LRU eviction**: pins are charged against a
  :class:`~repro.ooc.MemoryBudget`; when a new pin does not fit, the
  least-recently-used entries with a zero refcount are evicted (their
  segments unlinked). If nothing evictable remains the pin is refused
  with :class:`~repro.errors.ServiceOverloadedError` — backpressure,
  not an OOM.
- **per-tenant shares**: optional per-tenant child budgets (see
  :meth:`MemoryBudget.subdivide`) bound each tenant's concurrently
  pinned bytes, so one tenant exhausting its share never evicts or
  blocks another tenant's pins.

Segment names carry the :data:`REGISTRY_SHM_PREFIX` prefix so the test
suite's shared-memory leak fixture can track registry segments the
same way it tracks pool-owned ``psm_`` blocks.
"""

from __future__ import annotations

import os
import secrets
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    ServeError,
    ServiceOverloadedError,
    UnknownHandleError,
)
from repro.ooc.budget import MemoryBudget
from repro.parallel.procpool import (
    SharedArraySpec,
    _attach_array,
    _release_blocks,
)
from repro.tensor.coo import SparseTensor

__all__ = [
    "OperandRegistry",
    "PinnedOperand",
    "REGISTRY_SHM_PREFIX",
    "attach_pinned",
]

#: shared-memory segment name prefix for registry-pinned operands (the
#: leak-check fixture in ``tests/conftest.py`` tracks this alongside the
#: default ``psm_`` prefix of pool-owned blocks)
REGISTRY_SHM_PREFIX = "sptcreg"


@dataclass
class PinnedOperand:
    """One pinned tensor: where its arrays live plus bookkeeping."""

    name: str
    tenant: str
    fingerprint: str
    shape: Tuple[int, ...]
    nnz: int
    nbytes: int
    idx_spec: SharedArraySpec
    val_spec: SharedArraySpec
    refcount: int = 0
    pins: int = 1
    view: Optional[SparseTensor] = field(default=None, repr=False)
    _blocks: List[shared_memory.SharedMemory] = field(
        default_factory=list, repr=False
    )

    def worker_ref(self) -> tuple:
        """Picklable descriptor a worker process attaches from."""
        return (
            "shm",
            self.idx_spec,
            self.val_spec,
            self.shape,
            self.fingerprint,
        )


def attach_pinned(
    ref: tuple, blocks: List[shared_memory.SharedMemory]
) -> SparseTensor:
    """Zero-copy attach of a :meth:`PinnedOperand.worker_ref` descriptor.

    Appends the attached segments to *blocks*; the caller closes them
    (without unlinking — the registry owns the segments) once the
    contraction is done.
    """
    _, idx_spec, val_spec, shape, fingerprint = ref
    idx = _attach_array(idx_spec, blocks)
    val = _attach_array(val_spec, blocks)
    return SparseTensor.from_shared_buffers(
        idx, val, shape, fingerprint=fingerprint
    )


class OperandRegistry:
    """Named shared-memory pins with refcounts, LRU eviction, budgets."""

    def __init__(
        self,
        budget: Union[MemoryBudget, int, str, None] = None,
        *,
        tenant_budgets: Optional[Dict[str, MemoryBudget]] = None,
        prefix: str = REGISTRY_SHM_PREFIX,
    ) -> None:
        if budget is None or isinstance(budget, MemoryBudget):
            self.budget = budget
        else:
            self.budget = MemoryBudget(budget)
        self.tenant_budgets = dict(tenant_budgets or {})
        self.prefix = str(prefix)
        self._entries: "OrderedDict[str, PinnedOperand]" = OrderedDict()
        self._lock = threading.RLock()
        self._seq = 0
        self._closed = False
        self.pin_count = 0
        self.repin_count = 0
        self.unpin_count = 0
        self.eviction_count = 0
        self.hit_count = 0

    # ------------------------------------------------------------------
    def _segment_name(self, suffix: str) -> str:
        self._seq += 1
        return (
            f"{self.prefix}_{os.getpid():x}_{self._seq:x}"
            f"{secrets.token_hex(2)}_{suffix}"
        )

    def _export(self, arr: np.ndarray, suffix: str) -> tuple:
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(arr.nbytes, 1),
            name=self._segment_name(suffix),
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        return shm, view, SharedArraySpec(
            shm.name, tuple(arr.shape), arr.dtype.str
        )

    def _evict_for_locked(self, nbytes: int) -> None:
        """Evict LRU zero-refcount entries until *nbytes* fits."""
        if self.budget is None:
            return
        while not self.budget.fits(nbytes):
            victim = next(
                (
                    e
                    for e in self._entries.values()
                    if e.refcount == 0
                ),
                None,
            )
            if victim is None:
                raise ServiceOverloadedError(
                    f"operand registry full: {nbytes} bytes do not fit "
                    f"in the {self.budget.cap}-byte budget and every "
                    f"pinned operand is in use",
                    retry_after=0.0,
                )
            self._drop_locked(victim)
            self.eviction_count += 1

    def _drop_locked(self, entry: PinnedOperand) -> None:
        self._entries.pop(entry.name, None)
        _release_blocks(entry._blocks, unlink=True)
        entry._blocks = []
        entry.view = None
        if self.budget is not None:
            self.budget.release(entry.name, entry.nbytes)
        tb = self.tenant_budgets.get(entry.tenant)
        if tb is not None:
            tb.release(entry.name, entry.nbytes)

    # ------------------------------------------------------------------
    def pin(
        self,
        name: str,
        tensor: SparseTensor,
        *,
        tenant: str = "default",
    ) -> str:
        """Pin *tensor* under *name*; returns the handle name.

        Re-pinning identical content refreshes the LRU position and is
        otherwise a no-op; re-pinning *different* content under a live
        (acquired) handle is refused.
        """
        with self._lock:
            if self._closed:
                raise ServeError("operand registry is closed")
            fingerprint = tensor.fingerprint()
            existing = self._entries.get(name)
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    self._entries.move_to_end(name)
                    existing.pins += 1
                    self.repin_count += 1
                    return name
                if existing.refcount:
                    raise ServeError(
                        f"handle {name!r} is in use by "
                        f"{existing.refcount} request(s) and holds "
                        f"different content; unpin it first"
                    )
                self._drop_locked(existing)
            nbytes = tensor.nbytes
            tb = self.tenant_budgets.get(tenant)
            if tb is not None and not tb.fits(nbytes):
                raise ServiceOverloadedError(
                    f"tenant {tenant!r} memory share exhausted: pin of "
                    f"{nbytes} bytes exceeds the remaining "
                    f"{tb.remaining} of its {tb.cap}-byte share",
                    retry_after=0.0,
                    tenant=tenant,
                )
            self._evict_for_locked(nbytes)
            blocks: List[shared_memory.SharedMemory] = []
            try:
                idx_shm, idx_view, idx_spec = self._export(
                    tensor.indices, "i"
                )
                blocks.append(idx_shm)
                val_shm, val_view, val_spec = self._export(
                    tensor.values, "v"
                )
                blocks.append(val_shm)
            except BaseException:
                _release_blocks(blocks, unlink=True)
                raise
            entry = PinnedOperand(
                name=name,
                tenant=tenant,
                fingerprint=fingerprint,
                shape=tuple(tensor.shape),
                nnz=tensor.nnz,
                nbytes=nbytes,
                idx_spec=idx_spec,
                val_spec=val_spec,
                view=SparseTensor.from_shared_buffers(
                    idx_view,
                    val_view,
                    tuple(tensor.shape),
                    fingerprint=fingerprint,
                ),
                _blocks=blocks,
            )
            if self.budget is not None:
                self.budget.charge(name, nbytes)
            if tb is not None:
                tb.charge(name, nbytes)
            self._entries[name] = entry
            self.pin_count += 1
            return name

    # ------------------------------------------------------------------
    def _entry_locked(self, name: str) -> PinnedOperand:
        try:
            entry = self._entries[name]
        except KeyError:
            raise UnknownHandleError(
                f"unknown operand handle {name!r} (never pinned, "
                f"unpinned, or evicted under memory pressure)"
            ) from None
        self._entries.move_to_end(name)
        return entry

    def get(self, name: str) -> SparseTensor:
        """The pinned tensor as a zero-copy shared-memory view."""
        with self._lock:
            entry = self._entry_locked(name)
            self.hit_count += 1
            assert entry.view is not None
            return entry.view

    def acquire(self, name: str) -> PinnedOperand:
        """Refcount a handle for the duration of one request."""
        with self._lock:
            entry = self._entry_locked(name)
            entry.refcount += 1
            return entry

    def release(self, name: str) -> None:
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None and entry.refcount > 0:
                entry.refcount -= 1

    def unpin(self, name: str, *, force: bool = False) -> None:
        """Remove a pin and unlink its segments.

        Refuses while requests hold the handle unless *force* — the
        forced path exists for administrative cleanup; :meth:`close`
        force-drops everything regardless.
        """
        with self._lock:
            entry = self._entry_locked(name)
            if entry.refcount and not force:
                raise ServeError(
                    f"handle {name!r} is referenced by "
                    f"{entry.refcount} in-flight request(s)"
                )
            self._drop_locked(entry)
            self.unpin_count += 1

    # ------------------------------------------------------------------
    def handles(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    @property
    def pinned_bytes(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    def counters(self) -> Dict[str, int]:
        """Metric snapshot (``serve.registry.*`` namespace)."""
        with self._lock:
            out = {
                "pinned": len(self._entries),
                "pinned_bytes": sum(
                    e.nbytes for e in self._entries.values()
                ),
                "pins": self.pin_count,
                "repins": self.repin_count,
                "unpins": self.unpin_count,
                "evictions": self.eviction_count,
                "lookups": self.hit_count,
            }
            if self.budget is not None:
                out["budget_cap_bytes"] = self.budget.cap
                out["budget_peak_bytes"] = self.budget.peak
            return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every segment, in-flight refcounts notwithstanding.

        Server shutdown and crashed clients land here: whoever still
        holds a handle is gone or going away, and leaking ``/dev/shm``
        segments would outlive the process. Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for entry in list(self._entries.values()):
                entry.refcount = 0
                self._drop_locked(entry)

    def __enter__(self) -> "OperandRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
