"""Shared type aliases and dtype conventions.

Conventions mirror the original C implementation of Sparta/HiParTI:

* tensor indices are 64-bit integers (``INDEX_DTYPE``) — the LN
  (large-number) representation multiplies mode sizes together, so 32 bits
  is not enough for real tensors;
* non-zero values are 64-bit floats (``VALUE_DTYPE``).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64

#: A tensor shape: one extent per mode.
Shape = Tuple[int, ...]

#: A list of mode positions (0-based), e.g. contract modes.
Modes = Sequence[int]
