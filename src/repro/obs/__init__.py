"""Run observability: span tracing + metrics export for every engine.

Two coordinated pieces:

* :class:`Tracer` (:mod:`repro.obs.tracer`) — nested timed spans and
  instant events on one monotonic timeline, across the parent and all
  parallel workers. Exported as Chrome trace-event JSON
  (:mod:`repro.obs.export`, Perfetto-loadable) or a text span tree.
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — one flat
  namespaced dict unifying the run profile's counters, stage times,
  Table-2 traffic aggregates, ``ft_*`` recovery counters and the HM
  simulator's per-device seconds; serializes to JSON next to the
  ``BENCH_*.json`` artifacts.

Every engine accepts ``tracer=`` (``contract(..., tracer=t)``,
``parallel_sparta(..., tracer=t)``); ``ttt --trace out.json`` wires it
from the command line. A ``None`` tracer — the default everywhere —
costs nothing: the :data:`NULL_TRACER` substitute is a no-op and the
run profile is byte-identical with or without it (gated by
``benchmarks/bench_obs.py``).
"""

from repro.obs.export import (
    format_span_tree,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    PeakRssSampler,
    read_rss_bytes,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceRecord,
    Tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PeakRssSampler",
    "Span",
    "TraceRecord",
    "Tracer",
    "format_span_tree",
    "read_rss_bytes",
    "to_chrome_trace",
    "write_chrome_trace",
]
