"""Metrics export — one flat namespaced dict per run.

The repo measures a run in several disconnected places: the
:class:`~repro.core.profile.RunProfile` (stage seconds, probe/multiply
counters, Table-2 traffic records, object peaks, ``ft_*`` recovery
counters, flags) and the heterogeneous-memory simulator's
:class:`~repro.memory.simulator.SimulatedRun` (per-stage, per-device
simulated seconds). :class:`MetricsRegistry` folds all of them into a
single ``{dotted.name: value}`` dict that serializes to JSON next to
the ``BENCH_*.json`` artifacts, so a downstream consumer (dashboards,
auto-tuners in the SparseAuto mold) reads one document per run.

Naming scheme (all lowercase, dot-separated)::

    run.engine                                  engine name (str)
    run.total_seconds                           sum of stage seconds
    run.stage_seconds.<stage>                   per-stage wall seconds
    run.counters.<name>                         operation + ft_* counters
    run.flags.<name>                            qualitative annotations
    run.object_bytes.<obj>                      peak object footprints
    run.traffic.<obj>.<kind>.<pattern>_bytes    Table-2 cell totals
    run.traffic.total_bytes                     all recorded traffic
    hm.<policy>.total_seconds                   simulated run time
    hm.<policy>.amplification                   calibration scalar
    hm.<policy>.stage.<stage>.seconds           simulated stage time
    hm.<policy>.stage.<stage>.penalty_seconds   memory-stall share
    hm.<policy>.device_seconds.<device>         per-device attribution
    hm.<policy>.device_bytes.<device>           amplified bytes moved
    cache.<which>.{hits,misses,evictions}       process-wide cache totals
    cache.<which>.hit_rate                      hits / (hits + misses)
    planner.{engine,workers,accumulator}        chosen schedule knobs
    planner.{est_seconds,candidates,cached}     decision metadata
    planner.{model_version,est_products}        calibration + workload
    planner.candidate.<label>.est_seconds       per-candidate cost table
    planner.candidate.<label>.eligible          1 unless ruled out
    memory.peak_rss                             sampled peak RSS (bytes)
    memory.rss_samples                          sample count behind it
    memory.migration.policy                     dynamic policy name (str)
    memory.migration.inclusive                  1 if fast tier is inclusive
    memory.migration.{runs,epochs}              schedules built, stages seen
    memory.migration.observed_profiles          cross-request feed absorbed
    memory.migration.{promotions,demotions}     paid tier moves
    memory.migration.{promoted,demoted}_bytes   bytes behind those moves
    memory.migration.free_demotions             clean inclusive drop-backs
    memory.migration.freed                      dead-object deallocations
    serve.<tenant>.{requests,completed,failed}  per-tenant request counts
    serve.<tenant>.{rejected,retries,degraded}  backpressure + recovery
    serve.<tenant>.latency.{p50,p99,mean,max}_ms  end-to-end latency
    serve.<tenant>.queue_wait.<quantile>_ms     scheduler wait share
    serve.<tenant>.queue_depth                  queued right now
    serve.queue_depth                           global queued right now
    serve.pool.{workers,respawns}               slot + fault-recovery state
    serve.pool.{batches,batched_requests}       dispatch grouping totals
    serve.pool.{serial_fallbacks,planned_batches}  degradations, planning
    serve.registry.{pinned,pinned_bytes,...}    operand-registry counters
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.profile import RunProfile

Value = Union[int, float, str]

__all__ = ["MetricsRegistry", "PeakRssSampler", "read_rss_bytes"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> int:
    """Current resident-set size of this process, in bytes.

    Reads ``/proc/self/statm`` (one short line, no parsing beyond a
    split — cheap enough to poll at millisecond cadence). Returns 0 on
    platforms without procfs rather than guessing.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0


class PeakRssSampler:
    """Background peak-RSS watermark over a timed region.

    The kernel's own high-water mark (``VmHWM``) is process-lifetime
    and unresettable without privileges, so a warm-up run would poison
    any later measurement. This sampler instead polls ``VmRSS`` from a
    daemon thread while the region runs and keeps the max, giving a
    *per-region* peak — exactly what the out-of-core RSS gate needs
    (``peak RSS <= factor * memory_budget`` must hold for the budgeted
    run alone, not the process lifetime).

    Use as a context manager or ``start()``/``stop()``; ``peak_bytes``
    is valid after exit. ``record()`` folds the result into a
    :class:`MetricsRegistry` as ``memory.peak_rss`` /
    ``memory.rss_samples``.
    """

    def __init__(self, interval: float = 0.005) -> None:
        self.interval = float(interval)
        self.peak_bytes = 0
        self.samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while True:
            rss = read_rss_bytes()
            self.samples += 1
            if rss > self.peak_bytes:
                self.peak_bytes = rss
            if self._stop.wait(self.interval):
                return

    def start(self) -> "PeakRssSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="peak-rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> int:
        """Stop sampling (taking one final sample) and return the peak."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        rss = read_rss_bytes()
        self.samples += 1
        if rss > self.peak_bytes:
            self.peak_bytes = rss
        return self.peak_bytes

    def __enter__(self) -> "PeakRssSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def record(
        self, registry: "MetricsRegistry", *, prefix: str = "memory"
    ) -> "MetricsRegistry":
        registry.set(f"{prefix}.peak_rss", int(self.peak_bytes))
        registry.set(f"{prefix}.rss_samples", int(self.samples))
        return registry


class MetricsRegistry:
    """Flat, namespaced metric store with JSON export."""

    def __init__(self) -> None:
        self._values: Dict[str, Value] = {}

    # ------------------------------------------------------------------
    def set(self, name: str, value: Value) -> None:
        """Set one metric (overwrites)."""
        self._values[str(name)] = value

    def inc(self, name: str, amount: Union[int, float] = 1) -> None:
        """Increment a numeric metric, creating it at zero."""
        current = self._values.get(name, 0)
        self._values[str(name)] = current + amount  # type: ignore[operator]

    def get(self, name: str, default: Value | None = None):
        return self._values.get(name, default)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    # ------------------------------------------------------------------
    def record_profile(
        self, profile: RunProfile, *, prefix: str = "run"
    ) -> "MetricsRegistry":
        """Fold one :class:`RunProfile` in under *prefix*."""
        self.set(f"{prefix}.engine", profile.engine)
        self.set(f"{prefix}.total_seconds", float(profile.total_seconds))
        for stage, seconds in profile.stage_seconds.items():
            self.set(
                f"{prefix}.stage_seconds.{stage.value}", float(seconds)
            )
        for name, value in profile.counters.items():
            self.set(f"{prefix}.counters.{name}", int(value))
        for name, value in profile.flags.items():
            self.set(f"{prefix}.flags.{name}", str(value))
        for obj, nbytes in profile.object_bytes.items():
            self.set(f"{prefix}.object_bytes.{obj.value}", int(nbytes))
        cells: Dict[str, int] = {}
        total = 0
        for rec in profile.traffic:
            key = (
                f"{prefix}.traffic.{rec.obj.value}."
                f"{rec.kind.value}.{rec.pattern.value}_bytes"
            )
            cells[key] = cells.get(key, 0) + rec.nbytes
            total += rec.nbytes
        for key, nbytes in cells.items():
            self.set(key, nbytes)
        self.set(f"{prefix}.traffic.total_bytes", total)
        return self

    def record_simulated(
        self, run, *, prefix: str = "hm"
    ) -> "MetricsRegistry":
        """Fold a simulator :class:`SimulatedRun` in (duck-typed).

        *run* needs ``policy``, ``amplification``, ``total_seconds``,
        ``stages`` (each with ``stage``, ``seconds``,
        ``penalty_seconds``, ``device_bytes``) and ``device_seconds()``
        — the shape :mod:`repro.memory.simulator` produces. Duck typing
        keeps :mod:`repro.obs` importable without the memory layer.
        """
        base = f"{prefix}.{run.policy}"
        self.set(f"{base}.total_seconds", float(run.total_seconds))
        self.set(f"{base}.amplification", float(run.amplification))
        device_bytes: Dict[str, float] = {}
        for st in run.stages:
            sbase = f"{base}.stage.{st.stage.value}"
            self.set(f"{sbase}.seconds", float(st.seconds))
            self.set(
                f"{sbase}.penalty_seconds", float(st.penalty_seconds)
            )
            for dev, nbytes in st.device_bytes.items():
                device_bytes[dev] = device_bytes.get(dev, 0.0) + nbytes
        for dev, nbytes in device_bytes.items():
            self.set(f"{base}.device_bytes.{dev}", float(nbytes))
        for dev, seconds in run.device_seconds().items():
            self.set(f"{base}.device_seconds.{dev}", float(seconds))
        return self

    def record_migration(
        self, engine, *, prefix: str = "memory.migration"
    ) -> "MetricsRegistry":
        """Fold a placement engine's counters in (duck-typed).

        *engine* needs ``fold_metrics(registry, prefix=...)`` — the
        shape :class:`repro.memory.migration.MigrationEngine` provides
        (``policy``, ``inclusive`` and the promotion/demotion counter
        dict land under ``memory.migration.*``). Duck typing keeps
        :mod:`repro.obs` importable without the memory layer.
        """
        engine.fold_metrics(self, prefix=prefix)
        return self

    def record_planner(
        self, decision, *, prefix: str = "planner"
    ) -> "MetricsRegistry":
        """Fold one planner :class:`PlanDecision` in (duck-typed).

        *decision* needs ``chosen`` (with ``engine``, ``workers``,
        ``accumulator``, ``label``), ``seconds``, ``table`` (scored
        candidates with ``candidate``, ``seconds``, ``eligible``),
        ``stats`` (with ``est_products``), ``model_version`` and
        ``cached`` — the shape :func:`repro.planner.choose_plan`
        produces. Duck typing keeps :mod:`repro.obs` importable without
        the planner layer.
        """
        self.set(f"{prefix}.engine", str(decision.chosen.engine))
        self.set(f"{prefix}.workers", int(decision.chosen.workers))
        self.set(
            f"{prefix}.accumulator", str(decision.chosen.accumulator)
        )
        self.set(f"{prefix}.est_seconds", float(decision.seconds))
        self.set(f"{prefix}.candidates", len(decision.table))
        self.set(f"{prefix}.cached", int(bool(decision.cached)))
        self.set(
            f"{prefix}.model_version", int(decision.model_version)
        )
        self.set(
            f"{prefix}.est_products",
            int(decision.stats.est_products),
        )
        for scored in decision.table:
            base = f"{prefix}.candidate.{scored.candidate.label}"
            self.set(f"{base}.est_seconds", float(scored.seconds))
            self.set(f"{base}.eligible", int(bool(scored.eligible)))
        return self

    def record_caches(
        self, *, prefix: str = "cache"
    ) -> "MetricsRegistry":
        """Fold the process-wide cache statistics in under *prefix*.

        Covers the four compile/build/decision caches — HtY (``hty``),
        contraction plans (``plan``), generated kernels (``kernel``)
        and planner decisions (``planner``) — with
        hits/misses/evictions and the derived hit rate for each. These
        are cumulative process-wide totals, not per-run deltas: a warm
        steady state shows up as a hit rate approaching 1.0. (Per-run
        kernel-cache activity additionally lands in the
        ``run.counters.kernel_cache_*`` metrics via the profile.)
        """
        from repro.core.codegen import kernel_cache_stats
        from repro.core.htycache import (
            default_hty_cache,
            plan_cache_stats,
        )
        from repro.planner import planner_cache_stats

        stats = {
            "hty": default_hty_cache().stats,
            "plan": plan_cache_stats(),
            "kernel": kernel_cache_stats(),
            "planner": planner_cache_stats(),
        }
        for which, st in stats.items():
            base = f"{prefix}.{which}"
            self.set(f"{base}.hits", int(st.hits))
            self.set(f"{base}.misses", int(st.misses))
            self.set(f"{base}.evictions", int(st.evictions))
            lookups = st.hits + st.misses
            self.set(
                f"{base}.hit_rate",
                (st.hits / lookups) if lookups else 0.0,
            )
        return self

    def record_server(self, server) -> "MetricsRegistry":
        """Fold a contraction server's metrics in (``serve.*``).

        *server* is duck-typed on ``fold_metrics(registry)`` — the
        shape :class:`repro.serve.SpTCServer` exposes — so this module
        never imports the serve layer.
        """
        server.fold_metrics(self)
        return self

    # ------------------------------------------------------------------
    @classmethod
    def from_profile(
        cls, profile: RunProfile, *, prefix: str = "run"
    ) -> "MetricsRegistry":
        """Registry holding just one profile's metrics."""
        return cls().record_profile(profile, prefix=prefix)

    def as_dict(self) -> Dict[str, Value]:
        """Key-sorted snapshot of every metric."""
        return dict(sorted(self._values.items()))

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent) + "\n"

    def write(self, path) -> None:
        """Write the JSON snapshot to *path*."""
        Path(path).write_text(self.to_json())
