"""Trace exports: Chrome trace-event JSON and a text span tree.

The JSON export follows the Trace Event Format's ``traceEvents`` array
(``ph: "X"`` complete events for spans, ``ph: "i"`` instants, ``ph:
"M"`` metadata naming the tracks), which both ``chrome://tracing`` and
Perfetto's UI (https://ui.perfetto.dev) open directly. Timestamps are
microseconds relative to the trace origin, per the format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.obs.tracer import TraceRecord, Tracer

__all__ = [
    "format_span_tree",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: single logical process for the whole run; tracks = pid/worker tids
TRACE_PID = 1


def _origin(tracer: Tracer) -> float:
    """Rebase point: the tracer's start, floored by any earlier record.

    Worker records normally start after the parent tracer, but a clock
    skew must never produce negative timestamps in the export.
    """
    t0 = tracer.t0
    for rec in tracer.records:
        t0 = min(t0, rec.ts)
    return t0


def _track_name(tid: int) -> str:
    return "parent" if tid == 0 else f"worker {tid - 1}"


def to_chrome_trace(tracer: Tracer) -> dict:
    """Convert a tracer's records to a Chrome trace-event JSON object."""
    t0 = _origin(tracer)
    events: List[dict] = []
    tids = sorted({r.tid for r in tracer.records})
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "sparta"},
        }
    )
    for tid in tids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": _track_name(tid)},
            }
        )
    for rec in sorted(tracer.records, key=lambda r: (r.ts, r.tid)):
        entry = {
            "name": rec.name,
            "cat": rec.cat,
            "pid": TRACE_PID,
            "tid": rec.tid,
            "ts": (rec.ts - t0) * 1e6,
            "args": dict(rec.args),
        }
        if rec.dur is None:
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        else:
            entry["ph"] = "X"
            entry["dur"] = rec.dur * 1e6
        events.append(entry)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path) -> None:
    """Serialize :func:`to_chrome_trace` to *path*."""
    Path(path).write_text(
        json.dumps(to_chrome_trace(tracer), indent=1) + "\n"
    )


# ----------------------------------------------------------------------
def _nest_depths(spans: List[TraceRecord]) -> Dict[int, int]:
    """Depth of each span (by list index) from timestamp containment.

    Spans on one tid nest when one's ``[ts, end)`` interval contains
    another's; the engines only ever produce proper nesting (a span
    closes after everything it opened), so a simple open-stack sweep
    per tid suffices.
    """
    depths: Dict[int, int] = {}
    stacks: Dict[int, List[TraceRecord]] = {}
    eps = 1e-12
    for i, rec in enumerate(spans):
        stack = stacks.setdefault(rec.tid, [])
        while stack and rec.ts >= stack[-1].end - eps:
            stack.pop()
        depths[i] = len(stack)
        stack.append(rec)
    return depths


def format_span_tree(tracer: Tracer) -> str:
    """One line per span — indented by nesting, grouped by track.

    The text form of the trace, printed by ``experiments.breakdown``
    and ``ttt --trace`` so a timeline is readable without opening
    Perfetto.
    """
    spans = tracer.spans()
    if not spans:
        return "(no spans recorded)"
    t0 = _origin(tracer)
    by_tid: Dict[int, List[TraceRecord]] = {}
    for rec in spans:
        by_tid.setdefault(rec.tid, []).append(rec)
    events_by_tid: Dict[int, int] = {}
    for rec in tracer.events():
        events_by_tid[rec.tid] = events_by_tid.get(rec.tid, 0) + 1
    lines: List[str] = []
    for tid in sorted(by_tid):
        extra = events_by_tid.get(tid, 0)
        suffix = f"  ({extra} event(s))" if extra else ""
        lines.append(f"[{_track_name(tid)}]{suffix}")
        track = by_tid[tid]
        depths = _nest_depths(track)
        for i, rec in enumerate(track):
            start_ms = (rec.ts - t0) * 1e3
            dur_ms = (rec.dur or 0.0) * 1e3
            lines.append(
                f"  {'  ' * depths[i]}{rec.name:<24s} "
                f"+{start_ms:9.3f} ms  {dur_ms:9.3f} ms"
            )
    return "\n".join(lines)
