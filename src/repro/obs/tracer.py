"""Span tracing for SpTC runs — the timeline half of :mod:`repro.obs`.

A :class:`Tracer` records what one run *did* as a set of timed spans
(contraction → stage → worker chunk) and instant events (claims,
faults, respawns), on a shared monotonic clock. Every engine accepts
``tracer=``; the parallel backends additionally ship worker-side span
records back to the parent over the existing result pipes, so parent
and worker activity land on one timeline.

Clock model: records store raw :func:`time.perf_counter` values. On
Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is system-wide,
so spans recorded in worker *processes* are directly comparable with
the parent's; export normalizes everything against the tracer's origin
timestamp. Track ids (``tid``) separate the actors: the parent is tid
0, worker *w* is tid ``w + 1``.

Tracing must never perturb a run it is not watching: the module-level
:data:`NULL_TRACER` (an instance of :class:`NullTracer`) implements
the whole API as no-ops, engines treat ``tracer=None`` as "use the
null tracer", and ``benchmarks/bench_obs.py`` gates the disabled-path
overhead at <2% and the profile at byte-identical.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

__all__ = ["NULL_TRACER", "NullTracer", "Span", "TraceRecord", "Tracer"]

#: category names used by the engines (free-form; these are conventions)
CAT_CONTRACTION = "contraction"
CAT_STAGE = "stage"
CAT_WORKER = "worker"
CAT_MERGE = "merge"
CAT_FAULT = "fault"
CAT_RECOVERY = "recovery"
CAT_SPILL = "spill"


@dataclass
class TraceRecord:
    """One timeline entry: a span (``dur is not None``) or an instant.

    ``ts``/``dur`` are seconds on the tracer's clock (raw
    ``perf_counter`` values; the exporter rebases them). Picklable, so
    worker processes ship lists of these over their result pipes.
    """

    name: str
    cat: str
    tid: int
    ts: float
    dur: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """End timestamp (== ``ts`` for instant events)."""
        return self.ts + (self.dur or 0.0)


class Span:
    """Mutable handle yielded by :meth:`Tracer.span` — add args mid-span."""

    __slots__ = ("record",)

    def __init__(self, record: TraceRecord) -> None:
        self.record = record

    def set(self, **args: object) -> None:
        """Attach key/value annotations to the span."""
        self.record.args.update(args)


class Tracer:
    """Collects :class:`TraceRecord` entries for one run.

    ``default_tid`` labels records that do not name a track explicitly
    (worker-side tracers are constructed with their worker's tid so
    every record they emit lands on that worker's row).
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        default_tid: int = 0,
    ) -> None:
        self.clock = clock
        self.default_tid = int(default_tid)
        self.records: List[TraceRecord] = []
        #: origin timestamp spans are rebased against at export time
        self.t0 = clock()

    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = CAT_STAGE,
        tid: Optional[int] = None,
        **args: object,
    ):
        """Record a timed span around the enclosed block.

        The span is appended on exit (even if the block raises, so a
        failed chunk still shows its duration); nesting is implied by
        timestamp containment within one tid, not by explicit ids.
        """
        record = TraceRecord(
            name=name,
            cat=cat,
            tid=self.default_tid if tid is None else int(tid),
            ts=self.clock(),
            args=dict(args),
        )
        try:
            yield Span(record)
        finally:
            record.dur = self.clock() - record.ts
            self.records.append(record)

    def add_span(
        self,
        name: str,
        *,
        start: float,
        end: float,
        cat: str = CAT_STAGE,
        tid: Optional[int] = None,
        **args: object,
    ) -> None:
        """Record a span from already-measured timestamps.

        Used where a stage's time is known but its execution was
        interleaved (the fused kernel alternates search and
        accumulation chunk-by-chunk) — the engines lay such spans out
        back-to-back over the measured window.
        """
        self.records.append(
            TraceRecord(
                name=name,
                cat=cat,
                tid=self.default_tid if tid is None else int(tid),
                ts=float(start),
                dur=max(float(end) - float(start), 0.0),
                args=dict(args),
            )
        )

    def instant(
        self,
        name: str,
        *,
        cat: str = CAT_RECOVERY,
        tid: Optional[int] = None,
        **args: object,
    ) -> None:
        """Record a zero-duration event (claim, fault, respawn, ...)."""
        self.records.append(
            TraceRecord(
                name=name,
                cat=cat,
                tid=self.default_tid if tid is None else int(tid),
                ts=self.clock(),
                args=dict(args),
            )
        )

    # ------------------------------------------------------------------
    def drain(self) -> List[TraceRecord]:
        """Detach and return everything recorded so far.

        Worker loops call this after each unit so every result message
        carries only the records produced since the previous one.
        """
        out, self.records = self.records, []
        return out

    def ingest(self, records: Iterable[TraceRecord]) -> None:
        """Fold records shipped from another tracer (worker) in."""
        self.records.extend(records)

    # ------------------------------------------------------------------
    def spans(self) -> List[TraceRecord]:
        """Span records only, ordered by start time."""
        return sorted(
            (r for r in self.records if r.dur is not None),
            key=lambda r: (r.ts, -(r.dur or 0.0)),
        )

    def events(self) -> List[TraceRecord]:
        """Instant records only, ordered by timestamp."""
        return sorted(
            (r for r in self.records if r.dur is None),
            key=lambda r: r.ts,
        )

    def find(self, name: str) -> List[TraceRecord]:
        """All records with the given name (spans and instants)."""
        return [r for r in self.records if r.name == name]

    # ------------------------------------------------------------------
    # exports live in repro.obs.export; thin forwarding keeps call
    # sites short (tracer.write(path), tracer.summary()).
    def to_chrome(self) -> dict:
        """Chrome trace-event JSON object (Perfetto-loadable)."""
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self)

    def write(self, path) -> None:
        """Write the Chrome trace-event JSON to *path*."""
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self, path)

    def summary(self) -> str:
        """Human-readable span tree (one line per span, indented)."""
        from repro.obs.export import format_span_tree

        return format_span_tree(self)


class _NullSpan:
    """Reusable no-op context manager; also a no-op :class:`Span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: every method is a constant-time no-op.

    Engines substitute this for ``tracer=None`` so tracing calls need
    no conditionals; the run's :class:`~repro.core.profile.RunProfile`
    is untouched either way.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)

    def span(self, name, **kwargs):  # type: ignore[override]
        return _NULL_SPAN

    def add_span(self, name, **kwargs) -> None:  # type: ignore[override]
        pass

    def instant(self, name, **kwargs) -> None:  # type: ignore[override]
        pass

    def ingest(self, records) -> None:  # type: ignore[override]
        pass


#: process-wide disabled tracer; safe to share (it never mutates)
NULL_TRACER = NullTracer()
