"""Lightweight wall-clock timing helpers.

The five-stage pipeline reports per-stage seconds (Figure 2 and the §5.2
stage-share text); these helpers keep that instrumentation one line per
stage.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator


class Stopwatch:
    """Accumulating named timers.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.measure("sort"):
    ...     sorted([3, 1, 2])
    [1, 2, 3]
    >>> "sort" in sw.totals
    True
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.totals: Dict[str, float] = {}

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Time the enclosed block, accumulating into ``totals[name]``."""
        start = self._clock()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + (
                self._clock() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Add *seconds* to the named timer directly."""
        self.totals[name] = self.totals.get(name, 0.0) + float(seconds)

    def total(self) -> float:
        """Sum of all named timers."""
        return float(sum(self.totals.values()))

    def fractions(self) -> Dict[str, float]:
        """Per-timer share of the total (empty if nothing recorded)."""
        total = self.total()
        if total <= 0.0:
            return {name: 0.0 for name in self.totals}
        return {name: t / total for name, t in self.totals.items()}
