"""Small shared utilities (validation, timing)."""

from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_modes,
    check_nonneg_int,
    check_positive_int,
    check_shape,
)

__all__ = [
    "Stopwatch",
    "check_modes",
    "check_nonneg_int",
    "check_positive_int",
    "check_shape",
]
