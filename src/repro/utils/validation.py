"""Argument validation helpers used across the library.

These are deliberately strict: the contraction planner and memory simulator
build on invariants (modes are unique and in range, shapes are positive)
that are cheapest to enforce at construction time.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import ShapeError


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ShapeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ShapeError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonneg_int(value: int, name: str) -> int:
    """Validate that *value* is a non-negative integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ShapeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ShapeError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    """Validate a tensor shape (non-empty, all extents positive)."""
    if len(shape) == 0:
        raise ShapeError("tensor shape must have at least one mode")
    out = []
    for i, extent in enumerate(shape):
        out.append(check_positive_int(int(extent), f"shape[{i}]"))
    return tuple(out)


def check_modes(modes: Sequence[int], order: int, name: str) -> Tuple[int, ...]:
    """Validate a list of mode positions against a tensor *order*.

    Modes must be unique, 0-based, and within ``[0, order)``.
    """
    seen = set()
    out = []
    for m in modes:
        m = int(m)
        if m < 0 or m >= order:
            raise ShapeError(
                f"{name}: mode {m} out of range for order-{order} tensor"
            )
        if m in seen:
            raise ShapeError(f"{name}: duplicate mode {m}")
        seen.add(m)
        out.append(m)
    return tuple(out)
