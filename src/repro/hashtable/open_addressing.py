"""Open-addressing (linear probing) hash table — the ablation alternative.

The paper uses separate chaining and notes its "hash table
implementations can be improved by using more advanced algorithms"
(Nagasaka et al.'s SpGEMM tables are linear-probing). This table offers
the same int64-key/insertion-order-slot contract as
:class:`~repro.hashtable.chaining.ChainingHashTable`, so HtY/HtA can be
benchmarked over either (``benchmarks/bench_ablation_probing.py``).

Slots here are *payload* slots (insertion order); the probe table itself
stores positions into that payload array and is rebuilt on growth.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.types import INDEX_DTYPE

_EMPTY = np.int64(-1)
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash(keys: np.ndarray, table_size: int) -> np.ndarray:
    h = keys.astype(np.uint64) * _HASH_MULT
    h ^= h >> np.uint64(32)
    return (h % np.uint64(table_size)).astype(np.int64)


class LinearProbingHashTable:
    """Int64-key open-addressing table with insertion-order payload slots."""

    #: grow when load factor would exceed this
    MAX_LOAD = 0.7

    def __init__(self, table_size: int = 16, *, capacity_hint: int = 16) -> None:
        if table_size <= 0:
            raise ShapeError(f"table_size must be positive, got {table_size}")
        size = 16
        while size < table_size:
            size <<= 1
        self._slots = np.full(size, _EMPTY, dtype=INDEX_DTYPE)
        self.keys = np.empty(max(capacity_hint, 4), dtype=INDEX_DTYPE)
        self.size = 0
        #: key comparisons + empty-slot inspections
        self.probes = 0

    def __len__(self) -> int:
        return self.size

    @property
    def table_size(self) -> int:
        """Probe-table length (power of two)."""
        return int(self._slots.shape[0])

    @property
    def load_factor(self) -> float:
        """Occupied probe slots / table length."""
        return self.size / self.table_size

    @property
    def nbytes(self) -> int:
        """Bytes held by the probe table and key array."""
        return int(self._slots.nbytes + self.keys.nbytes)

    # ------------------------------------------------------------------
    def _rehash(self) -> None:
        new = np.full(self.table_size * 2, _EMPTY, dtype=INDEX_DTYPE)
        mask = new.shape[0] - 1
        for slot in range(self.size):
            pos = int(_hash(self.keys[slot : slot + 1], new.shape[0])[0])
            while new[pos] != -1:
                pos = (pos + 1) & mask
            new[pos] = slot
        self._slots = new

    def _find(self, key: int) -> tuple[int, int]:
        """(probe position, payload slot or -1) for *key*."""
        mask = self.table_size - 1
        pos = int(_hash(np.asarray([key], dtype=INDEX_DTYPE),
                        self.table_size)[0])
        while True:
            self.probes += 1
            payload = int(self._slots[pos])
            if payload == -1:
                return pos, -1
            if self.keys[payload] == key:
                return pos, payload
            pos = (pos + 1) & mask

    # ------------------------------------------------------------------
    def lookup(self, key: int) -> int:
        """Payload slot holding *key*, or -1."""
        return self._find(int(key))[1]

    def insert(self, key: int) -> tuple[int, bool]:
        """Insert *key* if absent; returns (payload slot, created)."""
        key = int(key)
        pos, payload = self._find(key)
        if payload != -1:
            return payload, False
        if (self.size + 1) / self.table_size > self.MAX_LOAD:
            self._rehash()
            pos, _ = self._find(key)
        if self.size == self.keys.shape[0]:
            self.keys = np.resize(self.keys, self.keys.shape[0] * 2)
        slot = self.size
        self.keys[slot] = key
        self._slots[pos] = slot
        self.size += 1
        return slot, True

    def __contains__(self, key: int) -> bool:
        return self.lookup(int(key)) != -1

    # ------------------------------------------------------------------
    def insert_many(self, keys: np.ndarray) -> np.ndarray:
        """Insert a batch; returns the payload slot of each input key."""
        keys = np.asarray(keys, dtype=INDEX_DTYPE)
        if keys.ndim != 1:
            raise ShapeError(f"keys must be 1-D, got shape {keys.shape}")
        out = np.empty(keys.shape[0], dtype=INDEX_DTYPE)
        for i, key in enumerate(keys):
            out[i], _ = self.insert(int(key))
        return out

    def lookup_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized lookup; -1 where a key is absent.

        Probes advance in lock-step across the batch: each round inspects
        one probe position per still-active key.
        """
        keys = np.asarray(keys, dtype=INDEX_DTYPE)
        if keys.ndim != 1:
            raise ShapeError(f"keys must be 1-D, got shape {keys.shape}")
        n = keys.shape[0]
        out = np.full(n, _EMPTY, dtype=INDEX_DTYPE)
        if n == 0 or self.size == 0:
            return out
        mask = self.table_size - 1
        pos = _hash(keys, self.table_size)
        active = np.ones(n, dtype=bool)
        while active.any():
            idx = np.flatnonzero(active)
            self.probes += int(idx.shape[0])
            payload = self._slots[pos[idx]]
            empty = payload == -1
            active[idx[empty]] = False  # miss
            occupied = idx[~empty]
            payload_occ = payload[~empty]
            hit = self.keys[payload_occ] == keys[occupied]
            out[occupied[hit]] = payload_occ[hit]
            active[occupied[hit]] = False
            cont = occupied[~hit]
            pos[cont] = (pos[cont] + 1) & mask
        return out
