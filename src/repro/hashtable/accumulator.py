"""HtA — the hash-table-based sparse accumulator (paper §3.4).

One HtA exists per X sub-tensor (thread-private in the parallel version).
Keys are the LN-compressed free indices of Y — taken *directly* from HtY's
value tuples, so no index-to-key conversion happens inside the computation
loop. Values are the accumulated partial products.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.hashtable.chaining import ChainingHashTable, default_num_buckets
from repro.types import INDEX_DTYPE, VALUE_DTYPE


class HashAccumulator:
    """Accumulates (LN free-index key, value) contributions via hashing."""

    def __init__(
        self, num_buckets: Optional[int] = None, *, capacity_hint: int = 16
    ) -> None:
        self.table = ChainingHashTable(
            num_buckets or default_num_buckets(capacity_hint),
            capacity_hint=capacity_hint,
        )
        self.values = np.zeros(max(capacity_hint, 4), dtype=VALUE_DTYPE)

    def __len__(self) -> int:
        return len(self.table)

    @property
    def nbytes(self) -> int:
        """Bytes held by the table and value array."""
        return int(self.table.nbytes + self.values.nbytes)

    @property
    def probes(self) -> int:
        """Key comparisons performed so far (complexity instrumentation)."""
        return self.table.probes

    def _ensure_capacity(self) -> None:
        if self.table.size >= self.values.shape[0]:
            self.values = np.resize(self.values, self.values.shape[0] * 2)
            # np.resize repeats old content into the new tail; new slots
            # must start from zero because we accumulate with +=.
            self.values[self.table.size:] = 0.0

    # ------------------------------------------------------------------
    def add(self, key: int, value: float) -> None:
        """Accumulate one contribution (Algorithm 2 lines 12-15)."""
        slot, created = self.table.insert(int(key))
        if created:
            # Only an insert that created a slot can outgrow the value
            # array (an existing slot is always < table.size <= len).
            self._ensure_capacity()
            self.values[slot] = value
        else:
            self.values[slot] += value

    def add_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Accumulate a batch (one X non-zero times a whole Y sub-tensor).

        Semantically identical to looping :meth:`add`; the chain walk and
        the accumulation are vectorized per batch.
        """
        keys = np.asarray(keys, dtype=INDEX_DTYPE)
        values = np.asarray(values, dtype=VALUE_DTYPE)
        if keys.shape != values.shape:
            raise ValueError(
                f"keys shape {keys.shape} != values shape {values.shape}"
            )
        if keys.size == 0:
            return
        # Combine duplicate keys within the batch first so each distinct
        # key is inserted once.
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(uniq.shape[0], dtype=VALUE_DTYPE)
        np.add.at(sums, inverse, values)
        needed = self.table.size + uniq.shape[0]
        if needed > self.values.shape[0]:
            cap = self.values.shape[0]
            while cap < needed:
                cap *= 2
            self.values = np.resize(self.values, cap)
            self.values[self.table.size:] = 0.0
        slots = self.table.insert_many(uniq)
        np.add.at(self.values, slots, sums)

    def get(self, key: int) -> Optional[float]:
        """Current accumulated value for *key*, or None."""
        slot = self.table.lookup(int(key))
        if slot == -1:
            return None
        return float(self.values[slot])

    def export(self) -> Tuple[np.ndarray, np.ndarray]:
        """Final (keys, values) in insertion order — the writeback input."""
        n = self.table.size
        return (
            self.table.keys[:n].copy(),
            self.values[:n].copy(),
        )
