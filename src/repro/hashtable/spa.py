"""SPA — the linear-search sparse accumulator of SpTC-SPA (paper §3.2).

The baseline accumulator from SpGEMM, extended to tensors: a dynamic array
of (LN free-index key, value) pairs. Locating an existing key is a *linear
search* of complexity O(|SPA|) per probe — the cost Sparta's HtA removes.

The linear scans run as NumPy vector comparisons so the baseline has
C-speed constants: relative speedups between SPA and HtA then reflect the
algorithmic (asymptotic) difference, as in the paper's C implementation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.types import INDEX_DTYPE, VALUE_DTYPE


class SparseAccumulator:
    """Dynamic-array accumulator with linear-search key matching."""

    def __init__(self, *, capacity_hint: int = 16) -> None:
        cap = max(int(capacity_hint), 4)
        self.keys = np.empty(cap, dtype=INDEX_DTYPE)
        self.values = np.empty(cap, dtype=VALUE_DTYPE)
        self.size = 0
        #: key comparisons performed (O(|SPA|) per miss)
        self.probes = 0

    def __len__(self) -> int:
        return self.size

    @property
    def nbytes(self) -> int:
        """Bytes held by the key and value arrays."""
        return int(self.keys.nbytes + self.values.nbytes)

    def _grow(self, needed: int) -> None:
        cap = self.keys.shape[0]
        while cap < needed:
            cap *= 2
        if cap != self.keys.shape[0]:
            self.keys = np.resize(self.keys, cap)
            self.values = np.resize(self.values, cap)

    # ------------------------------------------------------------------
    def add(self, key: int, value: float) -> None:
        """Accumulate one contribution (Algorithm 1 lines 7-10)."""
        used = self.keys[: self.size]
        hits = np.flatnonzero(used == key)
        self.probes += self.size
        if hits.size:
            self.values[hits[0]] += value
            return
        self._grow(self.size + 1)
        self.keys[self.size] = key
        self.values[self.size] = value
        self.size += 1

    # Cap on the (batch x |SPA|) comparison matrix materialized at once.
    _SCAN_BLOCK = 2_000_000

    def add_many(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Accumulate a batch with genuine linear-search work.

        Each incoming key is compared against *every* current accumulator
        entry (a vectorized equality scan), so both the probe count *and*
        the wall-clock cost are O(batch x |SPA|) — the baseline behaviour
        whose removal is Sparta's contribution. The scan is blocked to
        bound temporary memory.
        """
        keys = np.asarray(keys, dtype=INDEX_DTYPE)
        values = np.asarray(values, dtype=VALUE_DTYPE)
        if keys.shape != values.shape:
            raise ValueError(
                f"keys shape {keys.shape} != values shape {values.shape}"
            )
        if keys.size == 0:
            return
        used = self.keys[: self.size]
        self.probes += int(keys.size) * self.size
        if self.size:
            block = max(1, self._SCAN_BLOCK // max(self.size, 1))
            hit_slot = np.full(keys.shape[0], -1, dtype=np.int64)
            for lo in range(0, keys.shape[0], block):
                hi = min(lo + block, keys.shape[0])
                eq = keys[lo:hi, None] == used[None, :]
                any_hit = eq.any(axis=1)
                hit_slot[lo:hi][any_hit] = eq.argmax(axis=1)[any_hit]
            exists = hit_slot >= 0
            if exists.any():
                np.add.at(self.values, hit_slot[exists], values[exists])
        else:
            exists = np.zeros(keys.shape, dtype=bool)
        # New keys: linear-scan semantics within the batch as well — each
        # appended key is searched against the set of appended entries
        # (O(new x unique) comparisons, performed for real so wall-clock
        # matches the probe count).
        new_keys = keys[~exists]
        new_vals = values[~exists]
        if new_keys.size:
            uniq = np.unique(new_keys)
            n_new = int(new_keys.shape[0])
            n_uniq = int(uniq.shape[0])
            self.probes += n_new * n_uniq
            inverse = np.empty(n_new, dtype=np.int64)
            block = max(1, self._SCAN_BLOCK // n_uniq)
            for lo in range(0, n_new, block):
                hi = min(lo + block, n_new)
                eq = new_keys[lo:hi, None] == uniq[None, :]
                inverse[lo:hi] = eq.argmax(axis=1)
            sums = np.bincount(
                inverse, weights=new_vals, minlength=n_uniq
            ).astype(VALUE_DTYPE)
            self._grow(self.size + n_uniq)
            self.keys[self.size : self.size + n_uniq] = uniq
            self.values[self.size : self.size + n_uniq] = sums
            self.size += n_uniq

    def get(self, key: int) -> Optional[float]:
        """Current accumulated value for *key*, or None."""
        used = self.keys[: self.size]
        hits = np.flatnonzero(used == key)
        self.probes += self.size
        if hits.size:
            return float(self.values[hits[0]])
        return None

    def export(self) -> Tuple[np.ndarray, np.ndarray]:
        """Final (keys, values) in insertion order — the writeback input."""
        return (
            self.keys[: self.size].copy(),
            self.values[: self.size].copy(),
        )
