"""Separate-chaining hash table with fixed-size bucket array (paper §3.3).

Sparta stores HtY and HtA as separate-chaining hash tables whose keys are
LN-compressed (single int64) indices, "with fix-sized buckets to distribute
the keys". This module provides that structure as flat NumPy arrays:

* ``heads[b]`` — slot index of the first entry in bucket *b* (-1 if empty);
* ``nxt[s]``  — slot index of the next entry in the same chain;
* ``keys[s]`` — the int64 LN key stored in slot *s*.

Slots are allocated in insertion order, so slot indices double as payload
indices for whatever value arrays the caller maintains alongside.

The table counts key comparisons (``probes``) so the complexity experiments
can verify the O(1) expected-probe behaviour the paper relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.types import INDEX_DTYPE

# Knuth multiplicative hashing constant for 64-bit keys (2^64 / phi).
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)
_EMPTY = np.int64(-1)


def _hash_keys(keys: np.ndarray, num_buckets: int) -> np.ndarray:
    """Map int64 keys to bucket indices via multiplicative hashing."""
    h = keys.astype(np.uint64) * _HASH_MULT
    # Fold the high bits down; avoids pathological behaviour for keys that
    # are small multiples of each other (LN keys often are).
    h ^= h >> np.uint64(32)
    return (h % np.uint64(num_buckets)).astype(np.int64)


def default_num_buckets(expected_keys: int) -> int:
    """Bucket count targeting load factor ~1 (power of two, >= 16)."""
    n = 16
    while n < expected_keys:
        n <<= 1
    return n


class ChainingHashTable:
    """Int64-key separate-chaining hash table with insertion-order slots."""

    def __init__(self, num_buckets: int, *, capacity_hint: int = 16) -> None:
        if num_buckets <= 0:
            raise ShapeError(f"num_buckets must be positive, got {num_buckets}")
        self.num_buckets = int(num_buckets)
        self.heads = np.full(self.num_buckets, _EMPTY, dtype=INDEX_DTYPE)
        cap = max(int(capacity_hint), 4)
        self.keys = np.empty(cap, dtype=INDEX_DTYPE)
        self.nxt = np.empty(cap, dtype=INDEX_DTYPE)
        self.size = 0
        #: number of key comparisons performed by lookups/inserts
        self.probes = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        heads: np.ndarray,
        keys: np.ndarray,
        nxt: np.ndarray,
        *,
        size: int | None = None,
    ) -> "ChainingHashTable":
        """Adopt existing backing arrays without copying.

        The process-parallel backend rebuilds HtY's table from views of
        :mod:`multiprocessing.shared_memory` blocks; the arrays are used
        read-only (lookups never mutate them). ``size`` defaults to the
        full length of *keys*, i.e. the arrays are assumed trimmed to
        the stored entries.
        """
        table = cls.__new__(cls)
        table.num_buckets = int(heads.shape[0])
        table.heads = heads
        table.keys = keys
        table.nxt = nxt
        table.size = int(keys.shape[0] if size is None else size)
        table.probes = 0
        return table

    # ------------------------------------------------------------------
    @classmethod
    def merge_partials(
        cls,
        key_arrays: "list[np.ndarray]",
        *,
        num_buckets: int | None = None,
    ) -> "tuple[ChainingHashTable, np.ndarray]":
        """Build one table over the union of per-partial key arrays.

        ``key_arrays`` are the sorted, locally-unique key sets produced by
        per-worker partial builds (stage 1 of the parallel pipeline). The
        union is computed with one vectorized merge (concatenate + stable
        argsort + boundary mask — no Python per-key loop) and the chains
        are spliced exactly as :meth:`insert_many` would splice them when
        inserting the merged keys into an empty table, so the resulting
        ``heads``/``keys``/``nxt`` arrays — and therefore every future
        probe count — are bit-identical to a serial single-pass build.

        Returns ``(table, merged_keys)`` where ``merged_keys[g]`` is the
        key stored in slot *g* (ascending).
        """
        arrays = [
            np.asarray(a, dtype=INDEX_DTYPE)
            for a in key_arrays
            if len(a)
        ]
        if not arrays:
            return cls(num_buckets or 16), np.empty(0, dtype=INDEX_DTYPE)
        if len(arrays) == 1:
            merged = arrays[0]
        else:
            allk = np.concatenate(arrays)
            allk = allk[np.argsort(allk, kind="stable")]
            merged = allk[
                np.concatenate(([True], allk[1:] != allk[:-1]))
            ]
        if num_buckets is None:
            num_buckets = default_num_buckets(merged.shape[0])
        table = cls(num_buckets, capacity_hint=merged.shape[0])
        table.insert_many(merged)
        return table, merged

    # ------------------------------------------------------------------
    @property
    def load_factor(self) -> float:
        """Stored keys per bucket."""
        return self.size / self.num_buckets

    @property
    def nbytes(self) -> int:
        """Bytes held by bucket heads, chain links and keys."""
        return int(self.heads.nbytes + self.keys.nbytes + self.nxt.nbytes)

    def _grow(self) -> None:
        cap = self.keys.shape[0] * 2
        self.keys = np.resize(self.keys, cap)
        self.nxt = np.resize(self.nxt, cap)

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> int:
        """Slot index holding *key*, or -1."""
        bucket = int(_hash_keys(np.asarray([key], dtype=INDEX_DTYPE),
                                self.num_buckets)[0])
        slot = int(self.heads[bucket])
        while slot != -1:
            self.probes += 1
            if self.keys[slot] == key:
                return slot
            slot = int(self.nxt[slot])
        return -1

    def insert(self, key: int) -> tuple[int, bool]:
        """Insert *key* if absent.

        Returns ``(slot, created)``: the slot for the key, and whether a
        new slot was allocated.
        """
        bucket = int(_hash_keys(np.asarray([key], dtype=INDEX_DTYPE),
                                self.num_buckets)[0])
        slot = int(self.heads[bucket])
        while slot != -1:
            self.probes += 1
            if self.keys[slot] == key:
                return slot, False
            slot = int(self.nxt[slot])
        if self.size == self.keys.shape[0]:
            self._grow()
        new = self.size
        self.keys[new] = key
        self.nxt[new] = self.heads[bucket]
        self.heads[bucket] = new
        self.size += 1
        return new, True

    def __contains__(self, key: int) -> bool:
        return self.lookup(int(key)) != -1

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # vectorized operations (C-speed chain walking)
    # ------------------------------------------------------------------
    def insert_many(self, keys: np.ndarray) -> np.ndarray:
        """Insert a batch of keys; returns the slot of each input key.

        Duplicate keys (within the batch or vs. existing content) map to
        the same slot. Semantically identical to calling :meth:`insert`
        per key; the chain walks and the link updates are vectorized.
        """
        keys = np.asarray(keys, dtype=INDEX_DTYPE)
        if keys.ndim != 1:
            raise ShapeError(f"keys must be 1-D, got shape {keys.shape}")
        if keys.size == 0:
            return np.empty(0, dtype=INDEX_DTYPE)
        uniq, inverse = np.unique(keys, return_inverse=True)
        slots = self.lookup_many(uniq)
        missing = slots == -1
        n_new = int(missing.sum())
        if n_new:
            needed = self.size + n_new
            if needed > self.keys.shape[0]:
                cap = self.keys.shape[0]
                while cap < needed:
                    cap *= 2
                self.keys = np.resize(self.keys, cap)
                self.nxt = np.resize(self.nxt, cap)
            mkeys = uniq[missing]
            new_slots = np.arange(
                self.size, self.size + n_new, dtype=INDEX_DTYPE
            )
            self.keys[new_slots] = mkeys
            buckets = _hash_keys(mkeys, self.num_buckets)
            # Keys landing in the same bucket must chain to each other:
            # sort by bucket, link each entry to its predecessor in the
            # group, splice group heads/tails into the existing chains.
            order = np.argsort(buckets, kind="stable")
            b_sorted = buckets[order]
            s_sorted = new_slots[order]
            starts = np.flatnonzero(
                np.concatenate(([True], b_sorted[1:] != b_sorted[:-1]))
            )
            is_start = np.zeros(n_new, dtype=bool)
            is_start[starts] = True
            self.nxt[s_sorted[starts]] = self.heads[b_sorted[starts]]
            rest = np.flatnonzero(~is_start)
            if rest.size:
                self.nxt[s_sorted[rest]] = s_sorted[rest - 1]
            ends = np.concatenate((starts[1:], [n_new])) - 1
            self.heads[b_sorted[starts]] = s_sorted[ends]
            self.size += n_new
            slots[missing] = new_slots
        return slots[inverse]

    def lookup_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized lookup; -1 where a key is absent.

        Walks all chains in lock-step with NumPy so each chain level costs
        one vector operation rather than one Python iteration per key.
        """
        keys = np.asarray(keys, dtype=INDEX_DTYPE)
        if keys.ndim != 1:
            raise ShapeError(f"keys must be 1-D, got shape {keys.shape}")
        n = keys.shape[0]
        out = np.full(n, _EMPTY, dtype=INDEX_DTYPE)
        if n == 0 or self.size == 0:
            return out
        buckets = _hash_keys(keys, self.num_buckets)
        cursor = self.heads[buckets]
        active = cursor != -1
        while active.any():
            act_idx = np.flatnonzero(active)
            slots = cursor[act_idx]
            self.probes += int(act_idx.shape[0])
            hit = self.keys[slots] == keys[act_idx]
            hit_rows = act_idx[hit]
            out[hit_rows] = slots[hit]
            active[hit_rows] = False
            miss_rows = act_idx[~hit]
            cursor[miss_rows] = self.nxt[slots[~hit]]
            active[miss_rows] &= cursor[miss_rows] != -1
        return out

    def chain_lengths(self) -> np.ndarray:
        """Length of every bucket's chain (for load-balance diagnostics)."""
        lengths = np.zeros(self.num_buckets, dtype=np.int64)
        if self.size:
            buckets = _hash_keys(self.keys[: self.size], self.num_buckets)
            np.add.at(lengths, buckets, 1)
        return lengths
