"""Hash-table substrate: separate chaining, HtY, HtA, SPA."""

from repro.hashtable.accumulator import HashAccumulator
from repro.hashtable.chaining import ChainingHashTable, default_num_buckets
from repro.hashtable.open_addressing import LinearProbingHashTable
from repro.hashtable.spa import SparseAccumulator
from repro.hashtable.tensor_table import HashTensor

__all__ = [
    "ChainingHashTable",
    "HashAccumulator",
    "HashTensor",
    "LinearProbingHashTable",
    "SparseAccumulator",
    "default_num_buckets",
]
