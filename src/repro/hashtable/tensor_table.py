"""HtY — the hash-table-represented second input tensor (paper §3.3).

Keys are ``LN(C_Y)`` (LN-compressed contract-mode indices); values are the
group of non-zeros sharing that key, stored as two *contiguous* dynamic
arrays: ``LN(F_Y)`` (LN-compressed free-mode indices, pre-converted so the
accumulator never re-linearizes — §3.4) and the non-zero values. Contiguous
group storage preserves the spatial locality Algorithm 1 gets from sorting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ContractionError
from repro.hashtable.chaining import ChainingHashTable, default_num_buckets
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import linearize
from repro.types import INDEX_DTYPE, VALUE_DTYPE


def split_contract_modes(
    order: int, shape: Sequence[int], contract_modes: Sequence[int]
) -> Tuple[List[int], List[int], Tuple[int, ...], Tuple[int, ...]]:
    """Validate *contract_modes* and split out the free modes.

    Returns ``(contract_modes, free_modes, contract_dims, free_dims)``.
    Shared by the serial COO→HtY conversion and the parallel partial
    builders so both reject exactly the same inputs.
    """
    contract_modes = [int(m) for m in contract_modes]
    free_modes = [m for m in range(order) if m not in contract_modes]
    if len(contract_modes) + len(free_modes) != order or not contract_modes:
        raise ContractionError(
            f"invalid contract modes {contract_modes} for order {order}"
        )
    if not free_modes:
        raise ContractionError(
            "Y must keep at least one free mode (full reduction of Y "
            "is a dot product; use the planner's scalar path)"
        )
    contract_dims = tuple(shape[m] for m in contract_modes)
    free_dims = tuple(shape[m] for m in free_modes)
    return contract_modes, free_modes, contract_dims, free_dims


@dataclass
class PartialGroups:
    """One worker's grouped span of Y non-zeros (stage-1 partial build).

    A partial is the ckeys-argsort + group-boundary step of the COO→HtY
    conversion restricted to a contiguous span ``[lo, hi)`` of Y's rows:
    ``group_keys`` holds the span's distinct LN contract keys (ascending)
    and group *g* occupies rows ``group_ptr[g]:group_ptr[g+1]`` of
    ``free_ln``/``values``, in original Y-row order within the group.
    Partials over consecutive spans merge into the exact serial build
    (:meth:`HashTensor.merge_partials`).
    """

    group_keys: np.ndarray
    group_ptr: np.ndarray
    free_ln: np.ndarray
    values: np.ndarray

    @property
    def num_groups(self) -> int:
        return int(self.group_keys.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])


def _expand_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + l)`` for each range without a Python loop.

    Local copy of :func:`repro.core.common.expand_ranges` — the core layer
    imports the hashtable layer, so the dependency cannot point back.
    """
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
    return (
        np.arange(total, dtype=np.int64)
        + np.repeat(starts.astype(np.int64) - offsets, lens)
    )


def build_partial_groups(
    indices: np.ndarray,
    values: np.ndarray,
    contract_modes: Sequence[int],
    free_modes: Sequence[int],
    contract_dims: Sequence[int],
    free_dims: Sequence[int],
    lo: int = 0,
    hi: Optional[int] = None,
) -> PartialGroups:
    """Group rows ``[lo, hi)`` of a COO index/value pair by contract key.

    The parallel stage-1 work unit: LN-linearize the span's contract and
    free indices, stable-argsort by contract key, and record the group
    boundaries. O(span log span); runs against raw (possibly
    shared-memory) arrays so process workers never materialize a
    :class:`~repro.tensor.coo.SparseTensor`.
    """
    if hi is None:
        hi = int(indices.shape[0])
    lo, hi = int(lo), int(hi)
    span = indices[lo:hi]
    n = int(span.shape[0])
    if n == 0:
        return PartialGroups(
            np.empty(0, dtype=INDEX_DTYPE),
            np.zeros(1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
        )
    ckeys = linearize(span[:, list(contract_modes)], contract_dims)
    fkeys = linearize(span[:, list(free_modes)], free_dims)
    perm = np.argsort(ckeys, kind="stable")
    ckeys_sorted = ckeys[perm]
    boundaries = np.flatnonzero(
        np.concatenate(([True], ckeys_sorted[1:] != ckeys_sorted[:-1]))
    )
    return PartialGroups(
        ckeys_sorted[boundaries],
        np.concatenate((boundaries, [n])).astype(INDEX_DTYPE),
        fkeys[perm].astype(INDEX_DTYPE, copy=False),
        values[lo:hi][perm].astype(VALUE_DTYPE, copy=False),
    )


class HashTensor:
    """Hash-table representation of Y for contraction (HtY)."""

    #: True when the backing arrays are views of shared-memory blocks
    #: whose lifetime is owned elsewhere (see :meth:`from_shared_buffers`)
    shared: bool = False

    def __init__(
        self,
        table: ChainingHashTable,
        group_ptr: np.ndarray,
        free_ln: np.ndarray,
        values: np.ndarray,
        free_dims: Tuple[int, ...],
        contract_dims: Tuple[int, ...],
        source_fingerprint: Optional[str] = None,
    ) -> None:
        self.table = table
        #: group g occupies rows group_ptr[g]:group_ptr[g+1] of free_ln/values
        self.group_ptr = group_ptr
        self.free_ln = free_ln
        self.values = values
        self.free_dims = free_dims
        self.contract_dims = contract_dims
        #: content digest of the source tensor this HtY was built from
        #: (see :meth:`repro.tensor.coo.SparseTensor.fingerprint`); None
        #: when the builder did not supply one
        self.source_fingerprint = source_fingerprint

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """Number of distinct contract-index keys (mode-C sub-tensors)."""
        return len(self.table)

    @property
    def nnz(self) -> int:
        """Stored non-zeros."""
        return int(self.values.shape[0])

    @property
    def max_group_size(self) -> int:
        """Largest sub-tensor size — nnz^Y_Fmax in Eq. 6."""
        if self.num_groups == 0:
            return 0
        return int(np.diff(self.group_ptr).max())

    @property
    def avg_group_size(self) -> float:
        """Average sub-tensor size — nnz_Favg in Eq. 4."""
        if self.num_groups == 0:
            return 0.0
        return self.nnz / self.num_groups

    @property
    def nbytes(self) -> int:
        """Bytes held by the table plus group arrays (cf. Eq. 5)."""
        return int(
            self.table.nbytes
            + self.group_ptr.nbytes
            + self.free_ln.nbytes
            + self.values.nbytes
        )

    @property
    def identity(self) -> Tuple:
        """Stable identity of this build: what went in and how.

        Equal identities mean structurally interchangeable HtYs — the
        cache key the operand cache uses, exposed here so a cached HtY
        can be audited against the operands it claims to represent.
        """
        return (
            self.source_fingerprint,
            self.contract_dims,
            self.free_dims,
            self.table.num_buckets,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        tensor: SparseTensor,
        contract_modes: Sequence[int],
        *,
        num_buckets: Optional[int] = None,
        source_fingerprint: Optional[str] = None,
    ) -> "HashTensor":
        """Build HtY from a COO tensor in O(nnz_Y) (no sort of Y needed).

        The COO-to-hashtable conversion replaces the permutation+sort of Y
        in Algorithm 1 ("O(nnz_Y) versus O(nnz_Y log nnz_Y)").

        ``source_fingerprint`` stamps the build with the content digest of
        *tensor* (pass the already-computed digest to avoid rehashing);
        the operand cache uses it as part of the HtY's stable identity.
        """
        contract_modes, free_modes, contract_dims, free_dims = (
            split_contract_modes(tensor.order, tensor.shape, contract_modes)
        )
        if tensor.nnz == 0:
            return cls.merge_partials(
                [],
                free_dims,
                contract_dims,
                num_buckets=num_buckets,
                source_fingerprint=source_fingerprint,
            )
        partial = build_partial_groups(
            tensor.indices,
            tensor.values,
            contract_modes,
            free_modes,
            contract_dims,
            free_dims,
        )
        return cls.merge_partials(
            [partial],
            free_dims,
            contract_dims,
            num_buckets=num_buckets,
            source_fingerprint=source_fingerprint,
        )

    # ------------------------------------------------------------------
    @classmethod
    def merge_partials(
        cls,
        partials: Sequence[PartialGroups],
        free_dims: Sequence[int],
        contract_dims: Sequence[int],
        *,
        num_buckets: Optional[int] = None,
        source_fingerprint: Optional[str] = None,
    ) -> "HashTensor":
        """Merge per-worker partial groupings into one HtY (stage-1 merge).

        *partials* must cover consecutive, disjoint spans of the source
        tensor's rows in order (the natural output of partitioning Y's
        non-zeros). The merge is fully vectorized: one stable argsort over
        the concatenated per-partial group keys orders groups by
        ``(key, partial)``, which — because each partial preserves original
        row order within its groups — reproduces the exact row order a
        serial :meth:`from_coo` build produces. The hash chains are built
        by inserting the merged key set into an empty table, the same
        splice a serial build performs, so ``heads``/``keys``/``nxt`` and
        all downstream probe counts are bit-identical to the serial path.
        """
        free_dims = tuple(int(d) for d in free_dims)
        contract_dims = tuple(int(d) for d in contract_dims)
        parts = [p for p in partials if p.nnz]
        if not parts:
            return cls(
                ChainingHashTable(num_buckets or 16),
                np.zeros(1, dtype=INDEX_DTYPE),
                np.empty(0, dtype=INDEX_DTYPE),
                np.empty(0, dtype=VALUE_DTYPE),
                free_dims,
                contract_dims,
                source_fingerprint,
            )
        if len(parts) == 1:
            pg = parts[0]
            table, _ = ChainingHashTable.merge_partials(
                [pg.group_keys], num_buckets=num_buckets
            )
            return cls(
                table,
                pg.group_ptr.astype(INDEX_DTYPE, copy=False),
                pg.free_ln,
                pg.values,
                free_dims,
                contract_dims,
                source_fingerprint,
            )
        all_keys = np.concatenate([p.group_keys for p in parts])
        sizes = np.concatenate([np.diff(p.group_ptr) for p in parts])
        data_lens = np.array([p.nnz for p in parts], dtype=np.int64)
        data_off = np.concatenate(([0], np.cumsum(data_lens)[:-1]))
        # absolute start of each group's rows in the concatenated data
        starts = np.concatenate(
            [p.group_ptr[:-1] + off for p, off in zip(parts, data_off)]
        )
        order = np.argsort(all_keys, kind="stable")
        keys_sorted = all_keys[order]
        uniq_starts = np.flatnonzero(
            np.concatenate(([True], keys_sorted[1:] != keys_sorted[:-1]))
        )
        merged_keys = keys_sorted[uniq_starts]
        sizes_ordered = sizes[order]
        group_sizes = np.add.reduceat(sizes_ordered, uniq_starts)
        group_ptr = np.concatenate(
            ([0], np.cumsum(group_sizes))
        ).astype(INDEX_DTYPE)
        gather = _expand_ranges(starts[order], sizes_ordered)
        free_ln = np.concatenate([p.free_ln for p in parts])[gather]
        values = np.concatenate([p.values for p in parts])[gather]
        table, _ = ChainingHashTable.merge_partials(
            [merged_keys], num_buckets=num_buckets
        )
        return cls(
            table,
            group_ptr,
            free_ln.astype(INDEX_DTYPE, copy=False),
            values.astype(VALUE_DTYPE, copy=False),
            free_dims,
            contract_dims,
            source_fingerprint,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_shared_buffers(
        cls,
        *,
        heads: np.ndarray,
        keys: np.ndarray,
        nxt: np.ndarray,
        group_ptr: np.ndarray,
        free_ln: np.ndarray,
        values: np.ndarray,
        free_dims: Sequence[int],
        contract_dims: Sequence[int],
        source_fingerprint: Optional[str] = None,
    ) -> "HashTensor":
        """Reassemble an HtY from externally owned backing arrays.

        Zero-copy: the arrays (typically views of
        :mod:`multiprocessing.shared_memory` blocks exported by
        :mod:`repro.parallel.procpool`) are adopted as-is, so a worker
        process probes the exact bytes the parent built. The caller owns
        the buffers' lifetime — the result is marked ``shared=True`` and
        must never outlive them (in particular it must not be stored in
        an :class:`~repro.core.htycache.HtYCache`, which refuses such
        entries).
        """
        table = ChainingHashTable.from_arrays(heads, keys, nxt)
        hty = cls(
            table,
            group_ptr,
            free_ln,
            values,
            tuple(int(d) for d in free_dims),
            tuple(int(d) for d in contract_dims),
            source_fingerprint,
        )
        hty.shared = True
        return hty

    # ------------------------------------------------------------------
    def lookup(self, contract_key: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The stage-2 index search: O(1) expected.

        Returns ``(free_ln, values)`` views for the sub-tensor with the
        given LN contract key, or ``None`` when X's contract indices have
        no partner in Y (Algorithm 2 line 8-9).
        """
        slot = self.table.lookup(int(contract_key))
        if slot == -1:
            return None
        s, e = int(self.group_ptr[slot]), int(self.group_ptr[slot + 1])
        return self.free_ln[s:e], self.values[s:e]

    def lookup_many(self, contract_keys: np.ndarray) -> np.ndarray:
        """Vectorized stage-2 search; -1 group ids where absent."""
        return self.table.lookup_many(contract_keys)

    def group(self, slot: int) -> Tuple[np.ndarray, np.ndarray]:
        """Group arrays for a known slot (from :meth:`lookup_many`)."""
        s, e = int(self.group_ptr[slot]), int(self.group_ptr[slot + 1])
        return self.free_ln[s:e], self.values[s:e]
