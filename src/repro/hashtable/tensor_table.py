"""HtY — the hash-table-represented second input tensor (paper §3.3).

Keys are ``LN(C_Y)`` (LN-compressed contract-mode indices); values are the
group of non-zeros sharing that key, stored as two *contiguous* dynamic
arrays: ``LN(F_Y)`` (LN-compressed free-mode indices, pre-converted so the
accumulator never re-linearizes — §3.4) and the non-zero values. Contiguous
group storage preserves the spatial locality Algorithm 1 gets from sorting.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ContractionError
from repro.hashtable.chaining import ChainingHashTable, default_num_buckets
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import linearize
from repro.types import INDEX_DTYPE, VALUE_DTYPE


class HashTensor:
    """Hash-table representation of Y for contraction (HtY)."""

    #: True when the backing arrays are views of shared-memory blocks
    #: whose lifetime is owned elsewhere (see :meth:`from_shared_buffers`)
    shared: bool = False

    def __init__(
        self,
        table: ChainingHashTable,
        group_ptr: np.ndarray,
        free_ln: np.ndarray,
        values: np.ndarray,
        free_dims: Tuple[int, ...],
        contract_dims: Tuple[int, ...],
        source_fingerprint: Optional[str] = None,
    ) -> None:
        self.table = table
        #: group g occupies rows group_ptr[g]:group_ptr[g+1] of free_ln/values
        self.group_ptr = group_ptr
        self.free_ln = free_ln
        self.values = values
        self.free_dims = free_dims
        self.contract_dims = contract_dims
        #: content digest of the source tensor this HtY was built from
        #: (see :meth:`repro.tensor.coo.SparseTensor.fingerprint`); None
        #: when the builder did not supply one
        self.source_fingerprint = source_fingerprint

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """Number of distinct contract-index keys (mode-C sub-tensors)."""
        return len(self.table)

    @property
    def nnz(self) -> int:
        """Stored non-zeros."""
        return int(self.values.shape[0])

    @property
    def max_group_size(self) -> int:
        """Largest sub-tensor size — nnz^Y_Fmax in Eq. 6."""
        if self.num_groups == 0:
            return 0
        return int(np.diff(self.group_ptr).max())

    @property
    def avg_group_size(self) -> float:
        """Average sub-tensor size — nnz_Favg in Eq. 4."""
        if self.num_groups == 0:
            return 0.0
        return self.nnz / self.num_groups

    @property
    def nbytes(self) -> int:
        """Bytes held by the table plus group arrays (cf. Eq. 5)."""
        return int(
            self.table.nbytes
            + self.group_ptr.nbytes
            + self.free_ln.nbytes
            + self.values.nbytes
        )

    @property
    def identity(self) -> Tuple:
        """Stable identity of this build: what went in and how.

        Equal identities mean structurally interchangeable HtYs — the
        cache key the operand cache uses, exposed here so a cached HtY
        can be audited against the operands it claims to represent.
        """
        return (
            self.source_fingerprint,
            self.contract_dims,
            self.free_dims,
            self.table.num_buckets,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        tensor: SparseTensor,
        contract_modes: Sequence[int],
        *,
        num_buckets: Optional[int] = None,
        source_fingerprint: Optional[str] = None,
    ) -> "HashTensor":
        """Build HtY from a COO tensor in O(nnz_Y) (no sort of Y needed).

        The COO-to-hashtable conversion replaces the permutation+sort of Y
        in Algorithm 1 ("O(nnz_Y) versus O(nnz_Y log nnz_Y)").

        ``source_fingerprint`` stamps the build with the content digest of
        *tensor* (pass the already-computed digest to avoid rehashing);
        the operand cache uses it as part of the HtY's stable identity.
        """
        contract_modes = [int(m) for m in contract_modes]
        order = tensor.order
        free_modes = [m for m in range(order) if m not in contract_modes]
        if len(contract_modes) + len(free_modes) != order or not contract_modes:
            raise ContractionError(
                f"invalid contract modes {contract_modes} for order {order}"
            )
        if not free_modes:
            raise ContractionError(
                "Y must keep at least one free mode (full reduction of Y "
                "is a dot product; use the planner's scalar path)"
            )
        contract_dims = tuple(tensor.shape[m] for m in contract_modes)
        free_dims = tuple(tensor.shape[m] for m in free_modes)

        nnz = tensor.nnz
        if nnz == 0:
            table = ChainingHashTable(num_buckets or 16)
            return cls(
                table,
                np.zeros(1, dtype=INDEX_DTYPE),
                np.empty(0, dtype=INDEX_DTYPE),
                np.empty(0, dtype=VALUE_DTYPE),
                free_dims,
                contract_dims,
                source_fingerprint,
            )

        ckeys = linearize(tensor.indices[:, contract_modes], contract_dims)
        fkeys = linearize(tensor.indices[:, free_modes], free_dims)

        # Group non-zeros by contract key (counting sort via argsort keeps
        # each group contiguous = spatial locality).
        perm = np.argsort(ckeys, kind="stable")
        ckeys_sorted = ckeys[perm]
        boundaries = np.flatnonzero(
            np.concatenate(([True], ckeys_sorted[1:] != ckeys_sorted[:-1]))
        )
        group_ptr = np.concatenate((boundaries, [nnz])).astype(INDEX_DTYPE)
        group_keys = ckeys_sorted[boundaries]

        if num_buckets is None:
            num_buckets = default_num_buckets(group_keys.shape[0])
        table = ChainingHashTable(
            num_buckets, capacity_hint=group_keys.shape[0]
        )
        slots = table.insert_many(group_keys)
        # insert_many returns slots in input order; slots are allocated in
        # first-appearance order of the sorted unique keys, so slot g must
        # index group g. Remap group arrays into slot order to guarantee it.
        order_by_slot = np.argsort(slots, kind="stable")
        group_keys = group_keys[order_by_slot]
        starts = boundaries[order_by_slot]
        ends = np.concatenate((boundaries[1:], [nnz]))[order_by_slot]
        sizes = ends - starts
        new_ptr = np.concatenate(([0], np.cumsum(sizes))).astype(INDEX_DTYPE)
        gather = np.concatenate(
            [perm[s:e] for s, e in zip(starts, ends)]
        ) if starts.size else np.empty(0, dtype=np.int64)
        return cls(
            table,
            new_ptr,
            fkeys[gather].astype(INDEX_DTYPE, copy=False),
            tensor.values[gather].astype(VALUE_DTYPE, copy=False),
            free_dims,
            contract_dims,
            source_fingerprint,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_shared_buffers(
        cls,
        *,
        heads: np.ndarray,
        keys: np.ndarray,
        nxt: np.ndarray,
        group_ptr: np.ndarray,
        free_ln: np.ndarray,
        values: np.ndarray,
        free_dims: Sequence[int],
        contract_dims: Sequence[int],
        source_fingerprint: Optional[str] = None,
    ) -> "HashTensor":
        """Reassemble an HtY from externally owned backing arrays.

        Zero-copy: the arrays (typically views of
        :mod:`multiprocessing.shared_memory` blocks exported by
        :mod:`repro.parallel.procpool`) are adopted as-is, so a worker
        process probes the exact bytes the parent built. The caller owns
        the buffers' lifetime — the result is marked ``shared=True`` and
        must never outlive them (in particular it must not be stored in
        an :class:`~repro.core.htycache.HtYCache`, which refuses such
        entries).
        """
        table = ChainingHashTable.from_arrays(heads, keys, nxt)
        hty = cls(
            table,
            group_ptr,
            free_ln,
            values,
            tuple(int(d) for d in free_dims),
            tuple(int(d) for d in contract_dims),
            source_fingerprint,
        )
        hty.shared = True
        return hty

    # ------------------------------------------------------------------
    def lookup(self, contract_key: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The stage-2 index search: O(1) expected.

        Returns ``(free_ln, values)`` views for the sub-tensor with the
        given LN contract key, or ``None`` when X's contract indices have
        no partner in Y (Algorithm 2 line 8-9).
        """
        slot = self.table.lookup(int(contract_key))
        if slot == -1:
            return None
        s, e = int(self.group_ptr[slot]), int(self.group_ptr[slot + 1])
        return self.free_ln[s:e], self.values[s:e]

    def lookup_many(self, contract_keys: np.ndarray) -> np.ndarray:
        """Vectorized stage-2 search; -1 group ids where absent."""
        return self.table.lookup_many(contract_keys)

    def group(self, slot: int) -> Tuple[np.ndarray, np.ndarray]:
        """Group arrays for a known slot (from :meth:`lookup_many`)."""
        s, e = int(self.group_ptr[slot]), int(self.group_ptr[slot + 1])
        return self.free_ln[s:e], self.values[s:e]
