"""SpTC-SPA — Algorithm 1, the baseline extended from SpGEMM.

Y is kept in sorted COO form; locating the sub-tensor ``Y(i3, i4, :, :)``
matching an X non-zero is a *linear search*, and the accumulator is the
linear-search SPA. Total complexity (Eq. 3):

    O(nnz_X log nnz_X + nnz_Y log nnz_Y)          input processing
  + O(2 · nnz_X · nnz_Y + nnz_Z)                  computation
  + O(nnz_Z log nnz_Z)                            output sorting
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.looped import Granularity, looped_contract
from repro.core.result import ContractionResult
from repro.obs.tracer import Tracer
from repro.tensor.coo import SparseTensor

ENGINE_NAME = "sptc_spa"


def sptc_spa(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    sort_output: bool = True,
    granularity: Granularity = "subtensor",
    tracer: Optional[Tracer] = None,
) -> ContractionResult:
    """Contract ``x`` and ``y`` with the COOY+SPA baseline."""
    return looped_contract(
        x,
        y,
        cx,
        cy,
        engine_name=ENGINE_NAME,
        y_structure="coo",
        accumulator="spa",
        sort_output=sort_output,
        granularity=granularity,
        tracer=tracer,
    )
