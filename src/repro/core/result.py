"""Result container returned by every contraction engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import ContractionPlan
from repro.core.profile import RunProfile
from repro.tensor.coo import SparseTensor


@dataclass
class ContractionResult:
    """Output tensor plus the run's instrumentation."""

    tensor: SparseTensor
    profile: RunProfile
    plan: ContractionPlan

    @property
    def nnz(self) -> int:
        """Non-zeros in the output tensor."""
        return self.tensor.nnz
