"""Sparta — Algorithm 2: HtY + HtA with LN-compressed keys.

Y is converted to the hash table HtY (keys = LN(C_Y); values = contiguous
(LN(F_Y), val) group arrays), making stage-2 index search O(1) expected;
the accumulator is HtA, whose keys are taken directly from HtY's stored
LN(F_Y) so no index conversion happens inside the loop. Total complexity
(Eq. 4):

    O(nnz_X log nnz_X + nnz_Y)                    input processing
  + O(2 · nnz_X · nnz_Favg + nnz_Z)               computation
  + O(nnz_Z log nnz_Z)                            output sorting

where nnz_Favg is the average Y sub-tensor size.

By default the larger operand is treated as Y (§3.3, "we always treat the
larger input tensor as Y"), swapping operands and permuting the output
back when X is bigger.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.htycache import HtYCache, cached_plan
from repro.core.looped import Granularity, looped_contract
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.tensor.coo import SparseTensor

ENGINE_NAME = "sparta"


def sparta(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    sort_output: bool = True,
    num_buckets: Optional[int] = None,
    accumulator_buckets: Optional[int] = None,
    swap_larger_to_y: bool = False,
    granularity: Granularity = "subtensor",
    x_format: str = "coo",
    hty_cache: Optional[HtYCache] = None,
    codegen: Optional[bool] = None,
    dense_threshold: Optional[float] = None,
    workspace_cap: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> ContractionResult:
    """Contract ``x`` and ``y`` with the full Sparta engine.

    Parameters
    ----------
    swap_larger_to_y:
        Apply the §3.3 rule: if ``x.nnz > y.nnz``, contract with the
        operands exchanged (fewer, cheaper index searches) and permute the
        output back to (Fx, Fy) mode order. Off by default so experiments
        measure exactly the expression they state; the dispatcher enables
        it for the public API.
    hty_cache:
        Optional :class:`~repro.core.htycache.HtYCache`; when the (post-
        swap) Y operand's content fingerprint matches a cached build, the
        O(nnz_Y) COO→HtY conversion is skipped.
    codegen / dense_threshold / workspace_cap:
        Per-signature generated-kernel knobs of the fused path (see
        :func:`repro.core.kernels.fused_compute`); bit-identical either
        way, only wall time changes. ``REPRO_NO_CODEGEN=1`` force-
        disables the generated kernels process-wide.
    """
    if swap_larger_to_y and x.nnz > y.nnz:
        plan = cached_plan(x, y, cx, cy)
        res = looped_contract(
            y,
            x,
            cy,
            cx,
            engine_name=ENGINE_NAME,
            y_structure="hash",
            accumulator="hash",
            sort_output=False,
            num_buckets=num_buckets,
            accumulator_buckets=accumulator_buckets,
            granularity=granularity,
            x_format=x_format,
            hty_cache=hty_cache,
            codegen=codegen,
            dense_threshold=dense_threshold,
            workspace_cap=workspace_cap,
            tracer=tracer,
        )
        tr = NULL_TRACER if tracer is None else tracer
        with tr.span(Stage.OUTPUT_SORTING.value, swapped=True):
            z = res.tensor.permute(plan.swap_output_permutation())
            if sort_output:
                z = z.sort()
        res.tensor = z
        res.plan = plan
        res.profile.counters["swapped_operands"] = 1
        return res
    return looped_contract(
        x,
        y,
        cx,
        cy,
        engine_name=ENGINE_NAME,
        y_structure="hash",
        accumulator="hash",
        sort_output=sort_output,
        num_buckets=num_buckets,
        accumulator_buckets=accumulator_buckets,
        granularity=granularity,
        x_format=x_format,
        hty_cache=hty_cache,
        codegen=codegen,
        dense_threshold=dense_threshold,
        workspace_cap=workspace_cap,
        tracer=tracer,
    )
