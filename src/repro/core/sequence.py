"""Contraction sequences — the paper's motivating usage pattern.

"An SpTC with the exact same input is usually computed only once in a
long sequence of tensor contractions" (§1) — which is why Sparta avoids a
symbolic phase and why stage 5 sorts the output ("this could avoid
potential sorting when using Z as an input for any subsequent SpTC").

:class:`ContractionSequence` executes such a chain: each step contracts
the running tensor with a new operand. Because every engine returns a
sorted output, the input-processing sort of the next step's X operand is
skipped (the chain cost the paper's design targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.dispatch import contract
from repro.core.htycache import CacheStats, HtYCache
from repro.core.profile import RunProfile
from repro.core.result import ContractionResult
from repro.errors import ContractionError
from repro.tensor.coo import SparseTensor


@dataclass(frozen=True)
class SequenceStep:
    """One step: contract the running tensor with *operand*."""

    operand: SparseTensor
    #: contract modes of the running tensor (cx) and of the operand (cy)
    cx: Tuple[int, ...]
    cy: Tuple[int, ...]


@dataclass
class SequenceResult:
    """Final tensor plus per-step results."""

    tensor: SparseTensor
    steps: List[ContractionResult] = field(default_factory=list)
    #: the HtY cache the run used (None for non-hash engines / reuse off)
    hty_cache: Optional[HtYCache] = None
    #: execution order of the steps (indices into the written chain)
    step_order: Tuple[int, ...] = ()
    #: whether the greedy path search actually re-ordered candidates
    #: (False when ``optimize_path`` was off or the steps don't commute)
    path_searched: bool = False

    @property
    def total_seconds(self) -> float:
        """Sum of all steps' stage times."""
        return sum(s.profile.total_seconds for s in self.steps)

    @property
    def cache_stats(self) -> Optional[CacheStats]:
        """HtY cache hit/miss/eviction counts, if a cache was in play."""
        return self.hty_cache.stats if self.hty_cache is not None else None

    def combined_profile(self) -> RunProfile:
        """All steps' stage times and counters merged into one profile."""
        merged = RunProfile("sequence")
        for step in self.steps:
            for stage, seconds in step.profile.stage_seconds.items():
                merged.add_time(stage, seconds)
            for counter, value in step.profile.counters.items():
                merged.bump(counter, value)
            merged.traffic.extend(step.profile.traffic)
            for obj, nbytes in step.profile.object_bytes.items():
                merged.note_object_bytes(obj, nbytes)
        return merged


class ContractionSequence:
    """A chain of SpTCs applied to a running tensor."""

    def __init__(self, initial: SparseTensor) -> None:
        self.initial = initial
        self._steps: List[SequenceStep] = []

    def then(
        self,
        operand: SparseTensor,
        cx: Sequence[int],
        cy: Sequence[int],
    ) -> "ContractionSequence":
        """Append a step; returns self for chaining."""
        self._steps.append(
            SequenceStep(operand, tuple(int(m) for m in cx),
                         tuple(int(m) for m in cy))
        )
        return self

    def __len__(self) -> int:
        return len(self._steps)

    def run(
        self,
        *,
        method: str = "sparta",
        reuse_hty: bool = True,
        plan: Optional[str] = None,
        optimize_path: bool = False,
        **kwargs,
    ) -> SequenceResult:
        """Execute all steps with the chosen engine.

        With ``reuse_hty`` (default, hash engines only) the whole run
        shares one :class:`~repro.core.htycache.HtYCache`, so steps that
        contract against an operand already seen — the common "apply the
        same Y down a chain" pattern the paper motivates — skip the
        O(nnz_Y) HtY rebuild. Pass ``hty_cache=`` explicitly to share a
        cache across several sequences; ``reuse_hty=False`` restores
        fully independent steps.

        ``plan`` forwards to :func:`~repro.core.dispatch.contract` —
        ``"auto"`` lets the cost-model planner pick each step's engine.

        ``optimize_path`` enables the greedy pairwise contraction-path
        search (:mod:`repro.planner.path`): when every step contracts
        modes of the *initial* tensor (the steps commute), the planner
        costs each remaining step against the running tensor and
        executes the cheapest next, then permutes the final tensor back
        to the written-order mode layout. Indices are identical to the
        written order; values can differ by floating-point
        re-association (which is why the search is opt-in). Chains
        whose steps don't commute fall back to the written order
        (``path_searched`` stays False).
        """
        if not self._steps:
            raise ContractionError("sequence has no steps")
        cache: Optional[HtYCache] = kwargs.pop("hty_cache", None)
        if method == "sparta" and reuse_hty and cache is None:
            cache = HtYCache()
        if cache is not None and method == "sparta":
            kwargs["hty_cache"] = cache
        if plan is not None:
            kwargs["plan"] = plan
        order: List[int] = list(range(len(self._steps)))
        searched = False
        consumed_per_step = None
        if optimize_path and len(self._steps) > 1:
            from repro.planner.path import commuting_steps

            consumed_per_step = commuting_steps(
                self.initial.order, self._steps
            )
            searched = consumed_per_step is not None
        if not searched:
            current = self.initial
            results: List[ContractionResult] = []
            for i, step in enumerate(self._steps):
                try:
                    res = contract(
                        current, step.operand, step.cx, step.cy,
                        method=method, **kwargs,
                    )
                except ContractionError as exc:
                    raise ContractionError(
                        f"sequence step {i}: {exc}"
                    ) from exc
                results.append(res)
                current = res.tensor
            return SequenceResult(
                tensor=current, steps=results, hty_cache=cache,
                step_order=tuple(order), path_searched=False,
            )
        return self._run_searched(
            consumed_per_step, method=method, cache=cache, **kwargs
        )

    def _run_searched(
        self,
        consumed_per_step,
        *,
        method: str,
        cache: Optional[HtYCache],
        **kwargs,
    ) -> SequenceResult:
        """Greedy cheapest-next execution of a commuting chain."""
        from repro.planner import plan_contraction
        from repro.planner.path import (
            ModeTracker,
            reference_labels,
            restore_permutation,
        )

        sort_output = kwargs.get("sort_output", True)
        tracker = ModeTracker.for_initial(self.initial.order)
        remaining = list(range(len(self._steps)))
        current = self.initial
        results: List[ContractionResult] = []
        order: List[int] = []
        while remaining:
            best_i, best_cx, best_cost = None, None, None
            for i in remaining:
                step = self._steps[i]
                cx_now = tracker.locate(consumed_per_step[i])
                cost = plan_contraction(
                    current, step.operand, cx_now, step.cy,
                    sort_output=sort_output,
                ).seconds
                if best_cost is None or cost < best_cost:
                    best_i, best_cx, best_cost = i, cx_now, cost
            step = self._steps[best_i]
            try:
                res = contract(
                    current, step.operand, best_cx, step.cy,
                    method=method, **kwargs,
                )
            except ContractionError as exc:
                raise ContractionError(
                    f"sequence step {best_i}: {exc}"
                ) from exc
            results.append(res)
            current = res.tensor
            tracker.consume(
                best_cx, best_i,
                step.operand.order - len(step.cy),
            )
            order.append(best_i)
            remaining.remove(best_i)
        perm = restore_permutation(
            tracker.labels,
            reference_labels(self.initial.order, self._steps),
        )
        if perm != tuple(range(len(perm))):
            current = current.permute(perm)
            if sort_output:
                current = current.sort()
        return SequenceResult(
            tensor=current, steps=results, hty_cache=cache,
            step_order=tuple(order), path_searched=True,
        )
