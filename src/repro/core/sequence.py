"""Contraction sequences — the paper's motivating usage pattern.

"An SpTC with the exact same input is usually computed only once in a
long sequence of tensor contractions" (§1) — which is why Sparta avoids a
symbolic phase and why stage 5 sorts the output ("this could avoid
potential sorting when using Z as an input for any subsequent SpTC").

:class:`ContractionSequence` executes such a chain: each step contracts
the running tensor with a new operand. Because every engine returns a
sorted output, the input-processing sort of the next step's X operand is
skipped (the chain cost the paper's design targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.dispatch import contract
from repro.core.htycache import CacheStats, HtYCache
from repro.core.profile import RunProfile
from repro.core.result import ContractionResult
from repro.errors import ContractionError
from repro.tensor.coo import SparseTensor


@dataclass(frozen=True)
class SequenceStep:
    """One step: contract the running tensor with *operand*."""

    operand: SparseTensor
    #: contract modes of the running tensor (cx) and of the operand (cy)
    cx: Tuple[int, ...]
    cy: Tuple[int, ...]


@dataclass
class SequenceResult:
    """Final tensor plus per-step results."""

    tensor: SparseTensor
    steps: List[ContractionResult] = field(default_factory=list)
    #: the HtY cache the run used (None for non-hash engines / reuse off)
    hty_cache: Optional[HtYCache] = None

    @property
    def total_seconds(self) -> float:
        """Sum of all steps' stage times."""
        return sum(s.profile.total_seconds for s in self.steps)

    @property
    def cache_stats(self) -> Optional[CacheStats]:
        """HtY cache hit/miss/eviction counts, if a cache was in play."""
        return self.hty_cache.stats if self.hty_cache is not None else None

    def combined_profile(self) -> RunProfile:
        """All steps' stage times and counters merged into one profile."""
        merged = RunProfile("sequence")
        for step in self.steps:
            for stage, seconds in step.profile.stage_seconds.items():
                merged.add_time(stage, seconds)
            for counter, value in step.profile.counters.items():
                merged.bump(counter, value)
            merged.traffic.extend(step.profile.traffic)
            for obj, nbytes in step.profile.object_bytes.items():
                merged.note_object_bytes(obj, nbytes)
        return merged


class ContractionSequence:
    """A chain of SpTCs applied to a running tensor."""

    def __init__(self, initial: SparseTensor) -> None:
        self.initial = initial
        self._steps: List[SequenceStep] = []

    def then(
        self,
        operand: SparseTensor,
        cx: Sequence[int],
        cy: Sequence[int],
    ) -> "ContractionSequence":
        """Append a step; returns self for chaining."""
        self._steps.append(
            SequenceStep(operand, tuple(int(m) for m in cx),
                         tuple(int(m) for m in cy))
        )
        return self

    def __len__(self) -> int:
        return len(self._steps)

    def run(
        self,
        *,
        method: str = "sparta",
        reuse_hty: bool = True,
        **kwargs,
    ) -> SequenceResult:
        """Execute all steps in order with the chosen engine.

        With ``reuse_hty`` (default, hash engines only) the whole run
        shares one :class:`~repro.core.htycache.HtYCache`, so steps that
        contract against an operand already seen — the common "apply the
        same Y down a chain" pattern the paper motivates — skip the
        O(nnz_Y) HtY rebuild. Pass ``hty_cache=`` explicitly to share a
        cache across several sequences; ``reuse_hty=False`` restores
        fully independent steps.
        """
        if not self._steps:
            raise ContractionError("sequence has no steps")
        cache: Optional[HtYCache] = kwargs.pop("hty_cache", None)
        if method == "sparta" and reuse_hty and cache is None:
            cache = HtYCache()
        if cache is not None and method == "sparta":
            kwargs["hty_cache"] = cache
        current = self.initial
        results: List[ContractionResult] = []
        for i, step in enumerate(self._steps):
            try:
                res = contract(
                    current, step.operand, step.cx, step.cy,
                    method=method, **kwargs,
                )
            except ContractionError as exc:
                raise ContractionError(
                    f"sequence step {i}: {exc}"
                ) from exc
            results.append(res)
            current = res.tensor
        return SequenceResult(
            tensor=current, steps=results, hty_cache=cache
        )
