"""Contraction core: the Sparta pipeline and its baselines."""

from repro.core.dense_ref import dense_contract
from repro.core.dispatch import contract, engines
from repro.core.einsum import einsum
from repro.core.htycache import HtYCache, default_hty_cache
from repro.core.plan import ContractionPlan
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
    TrafficRecord,
)
from repro.core.result import ContractionResult
from repro.core.semiring import (
    ARITHMETIC,
    BOOLEAN,
    MAX_PLUS,
    MIN_PLUS,
    SEMIRINGS,
    Semiring,
)
from repro.core.sequence import ContractionSequence, SequenceResult
from repro.core.sparta import sparta
from repro.core.symbolic import (
    symbolic_count,
    two_phase_contract,
    upper_bound_count,
)
from repro.core.sptc_hta import sptc_coo_hta
from repro.core.sptc_spa import sptc_spa
from repro.core.streaming import contract_streaming, merge_outputs, split_tensor
from repro.core.stages import (
    COMPUTATION_STAGES,
    IO_PROCESSING_STAGES,
    STAGE_ORDER,
    Stage,
)
from repro.core.vectorized import vectorized_contract

__all__ = [
    "ARITHMETIC",
    "AccessKind",
    "BOOLEAN",
    "MAX_PLUS",
    "MIN_PLUS",
    "SEMIRINGS",
    "Semiring",
    "AccessPattern",
    "COMPUTATION_STAGES",
    "ContractionPlan",
    "ContractionResult",
    "DataObject",
    "IO_PROCESSING_STAGES",
    "RunProfile",
    "STAGE_ORDER",
    "Stage",
    "TrafficRecord",
    "ContractionSequence",
    "HtYCache",
    "SequenceResult",
    "contract",
    "default_hty_cache",
    "contract_streaming",
    "einsum",
    "dense_contract",
    "engines",
    "sparta",
    "sptc_coo_hta",
    "split_tensor",
    "merge_outputs",
    "sptc_spa",
    "symbolic_count",
    "two_phase_contract",
    "upper_bound_count",
    "vectorized_contract",
]
