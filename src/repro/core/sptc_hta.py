"""COOY+HtA — the intermediate engine of Figure 4.

Y stays in sorted COO form (linear index search, as SpTC-SPA), but the
accumulator is the hash-table HtA. Isolates the accumulator's contribution
to Sparta's speedup: Figure 4 shows COOY+HtA beating COOY+SPA by 1%-42x
while HtY+HtA beats COOY+HtA by 1.4-565x.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.looped import Granularity, looped_contract
from repro.core.result import ContractionResult
from repro.obs.tracer import Tracer
from repro.tensor.coo import SparseTensor

ENGINE_NAME = "sptc_coo_hta"


def sptc_coo_hta(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    sort_output: bool = True,
    accumulator_buckets: Optional[int] = None,
    granularity: Granularity = "subtensor",
    codegen: Optional[bool] = None,
    dense_threshold: Optional[float] = None,
    workspace_cap: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> ContractionResult:
    """Contract ``x`` and ``y`` with linear Y search + hash accumulation."""
    return looped_contract(
        x,
        y,
        cx,
        cy,
        engine_name=ENGINE_NAME,
        y_structure="coo",
        accumulator="hash",
        sort_output=sort_output,
        accumulator_buckets=accumulator_buckets,
        granularity=granularity,
        codegen=codegen,
        dense_threshold=dense_threshold,
        workspace_cap=workspace_cap,
        tracer=tracer,
    )
