"""Run instrumentation shared by every engine.

A :class:`RunProfile` captures, for one SpTC execution:

* wall-clock seconds per pipeline stage (Figure 2);
* operation counters — search probes, accumulator probes, multiplications —
  checked against the paper's complexity formulas Eq. (3)/(4);
* per-object, per-stage *traffic records* (bytes moved, read/write,
  sequential/random — Table 2's taxonomy), consumed by the heterogeneous
  memory simulator (Figures 3, 7, 8);
* peak byte sizes of the six data objects X, Y, HtY, HtA, Z_local, Z
  (Figure 9 and the placement estimators of §4.2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List

from repro.core.stages import Stage


class DataObject(str, Enum):
    """The six major data objects of §4.1."""

    X = "X"
    Y = "Y"
    HTY = "HtY"
    HTA = "HtA"
    Z_LOCAL = "Z_local"
    Z = "Z"


class AccessKind(str, Enum):
    """Read/write direction of a traffic record."""

    READ = "read"
    WRITE = "write"


class AccessPattern(str, Enum):
    """Sequential vs. random access (Table 2)."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True)
class TrafficRecord:
    """Bytes moved for one object in one stage with one access signature."""

    obj: DataObject
    stage: Stage
    kind: AccessKind
    pattern: AccessPattern
    nbytes: int


@dataclass
class RunProfile:
    """Everything measured about one SpTC execution."""

    engine: str
    stage_seconds: Dict[Stage, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    traffic: List[TrafficRecord] = field(default_factory=list)
    object_bytes: Dict[DataObject, int] = field(default_factory=dict)
    #: qualitative run annotations — e.g. ``flags["degraded"] == "serial"``
    #: when worker-failure recovery fell back to the serial fused engine
    flags: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_time(self, stage: Stage, seconds: float) -> None:
        """Accumulate wall time into a stage."""
        self.stage_seconds[stage] = (
            self.stage_seconds.get(stage, 0.0) + float(seconds)
        )

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named operation counter."""
        self.counters[counter] = self.counters.get(counter, 0) + int(amount)

    def bump_many(self, counters: Dict[str, int]) -> None:
        """Fold a whole counter dict in — e.g. one worker's counters."""
        for counter, amount in counters.items():
            self.bump(counter, amount)

    def record_traffic(
        self,
        obj: DataObject,
        stage: Stage,
        kind: AccessKind,
        pattern: AccessPattern,
        nbytes: int,
    ) -> None:
        """Append one traffic record (skips zero-byte records)."""
        nbytes = int(nbytes)
        if nbytes > 0:
            self.traffic.append(
                TrafficRecord(obj, stage, kind, pattern, nbytes)
            )

    def note_object_bytes(self, obj: DataObject, nbytes: int) -> None:
        """Track the peak byte size of a data object."""
        self.object_bytes[obj] = max(
            self.object_bytes.get(obj, 0), int(nbytes)
        )

    def set_flag(self, name: str, value: str = "1") -> None:
        """Annotate the run (e.g. a recovery downgrade) for reporting."""
        self.flags[str(name)] = str(value)

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Sum of all stage times."""
        return float(sum(self.stage_seconds.values()))

    def stage_fractions(self) -> Dict[Stage, float]:
        """Per-stage share of total time (Figure 2's y-axis)."""
        total = self.total_seconds
        if total <= 0.0:
            return {s: 0.0 for s in self.stage_seconds}
        return {s: t / total for s, t in self.stage_seconds.items()}

    def traffic_bytes(
        self,
        obj: DataObject | None = None,
        stage: Stage | None = None,
        kind: AccessKind | None = None,
        pattern: AccessPattern | None = None,
    ) -> int:
        """Total traffic bytes matching the given filters."""
        total = 0
        for rec in self.traffic:
            if obj is not None and rec.obj != obj:
                continue
            if stage is not None and rec.stage != stage:
                continue
            if kind is not None and rec.kind != kind:
                continue
            if pattern is not None and rec.pattern != pattern:
                continue
            total += rec.nbytes
        return total

    def peak_bytes(self) -> int:
        """Peak memory consumption estimate (sum of object peaks)."""
        return int(sum(self.object_bytes.values()))

    # ------------------------------------------------------------------
    # serialization (harness outputs, cross-run comparison)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the whole profile.

        Numeric values are coerced to plain ``int``/``float`` so numpy
        scalars that leaked into counters (worker result dicts) never
        poison ``json.dumps``.
        """
        return {
            "engine": self.engine,
            "stage_seconds": {
                s.value: float(t) for s, t in self.stage_seconds.items()
            },
            "counters": {
                str(k): int(v) for k, v in self.counters.items()
            },
            "flags": {str(k): str(v) for k, v in self.flags.items()},
            "object_bytes": {
                o.value: int(b) for o, b in self.object_bytes.items()
            },
            "traffic": [
                {
                    "obj": r.obj.value,
                    "stage": r.stage.value,
                    "kind": r.kind.value,
                    "pattern": r.pattern.value,
                    "nbytes": int(r.nbytes),
                }
                for r in self.traffic
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunProfile":
        """Inverse of :meth:`to_dict`.

        Values are coerced through ``int``/``float``/``str`` so a
        profile that picked up numpy scalars (worker counter dicts) or
        survived a JSON round trip reconstructs with plain Python
        types — ``from_dict(to_dict(p)) == to_dict`` parity including
        ``flags`` and the ``ft_*`` recovery counters.
        """
        profile = cls(str(data["engine"]))
        for stage, seconds in data.get("stage_seconds", {}).items():
            profile.add_time(Stage(stage), float(seconds))
        for name, value in data.get("counters", {}).items():
            profile.counters[str(name)] = int(value)
        for name, value in data.get("flags", {}).items():
            profile.flags[str(name)] = str(value)
        for obj, nbytes in data.get("object_bytes", {}).items():
            profile.note_object_bytes(DataObject(obj), int(nbytes))
        for rec in data.get("traffic", []):
            profile.record_traffic(
                DataObject(rec["obj"]),
                Stage(rec["stage"]),
                AccessKind(rec["kind"]),
                AccessPattern(rec["pattern"]),
                int(rec["nbytes"]),
            )
        return profile

    def to_json(self, *, indent: int | None = None) -> str:
        """:meth:`to_dict` as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunProfile":
        """Inverse of :meth:`to_json` — lossless, ``flags`` and ``ft_*``
        counters included."""
        return cls.from_dict(json.loads(text))
