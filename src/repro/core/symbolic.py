"""The two rejected output-allocation strategies (paper §1, §3.2).

Sparta sizes its output dynamically (SPA/HtA + Z_local). The paper argues
against the two traditional SpGEMM answers to the unknown-output problem:

1. **Symbolic + numeric two-phase** (Nagasaka et al.): a symbolic pass
   computes the exact output pattern, memory is allocated precisely, a
   numeric pass fills values. "Every SpTC is attached to both a symbolic
   phase and SpTC computation, which is very expensive" — because an
   SpTC with the same inputs is usually computed once.
2. **Loose upper-bound prediction** (Cohen; Amossen et al.): allocate
   ``sum over matched X non-zeros of its Y sub-tensor size`` (every
   product lands on a distinct output slot). Cheap to compute but can
   overshoot the true output by large factors on accumulation-heavy
   contractions.

Both are implemented here so the trade-off is measurable
(``benchmarks/bench_ablation_allocation.py``,
``repro.experiments.allocation``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.common import expand_ranges
from repro.core.plan import ContractionPlan
from repro.core.profile import RunProfile
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import delinearize, linearize, ln_capacity
from repro.types import INDEX_DTYPE, VALUE_DTYPE


def _prepare(x, y, plan):
    """LN keys and Y grouping shared by the phases."""
    fx_ln = linearize(x.indices[:, plan.fx], plan.fx_dims)
    cx_ln = linearize(x.indices[:, plan.cx], plan.contract_dims)
    cy_ln = linearize(y.indices[:, plan.cy], plan.contract_dims)
    fy_ln = linearize(y.indices[:, plan.fy], plan.fy_dims)
    order = np.argsort(cy_ln, kind="stable")
    cy_sorted = cy_ln[order]
    if y.nnz:
        boundaries = np.flatnonzero(
            np.concatenate(([True], cy_sorted[1:] != cy_sorted[:-1]))
        )
    else:
        boundaries = np.empty(0, dtype=np.int64)
    group_keys = cy_sorted[boundaries]
    group_ptr = np.concatenate((boundaries, [y.nnz])).astype(np.int64)
    return fx_ln, cx_ln, fy_ln[order], y.values[order], group_keys, group_ptr


def _match(cx_ln, group_keys, group_ptr):
    pos = np.searchsorted(group_keys, cx_ln)
    pos_c = np.minimum(pos, max(group_keys.shape[0] - 1, 0))
    matched = (
        (group_keys[pos_c] == cx_ln)
        if group_keys.size
        else np.zeros(cx_ln.shape, dtype=bool)
    )
    rows = np.flatnonzero(matched)
    grp = pos_c[rows]
    starts = group_ptr[grp]
    lens = (group_ptr[grp + 1] - starts).astype(np.int64)
    return rows, starts, lens


def symbolic_count(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
) -> int:
    """The symbolic phase: exact nnz of Z, without computing values.

    Performs the full index-matching and key-deduplication work of the
    contraction — everything except the multiplications — which is why
    the paper calls the approach expensive.
    """
    plan = ContractionPlan.create(x, y, cx, cy)
    fx_ln, cx_ln, fy_sorted, _, gkeys, gptr = _prepare(x, y, plan)
    rows, starts, lens = _match(cx_ln, gkeys, gptr)
    gather = expand_ranges(starts, lens)
    if gather.size == 0:
        return 0
    fy_capacity = ln_capacity(plan.fy_dims)
    zkeys = np.repeat(fx_ln[rows], lens) * fy_capacity + fy_sorted[gather]
    return int(np.unique(zkeys).shape[0])


def upper_bound_count(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
) -> int:
    """The loose prediction: total products (no dedup), cheap to compute."""
    plan = ContractionPlan.create(x, y, cx, cy)
    _, cx_ln, _, _, gkeys, gptr = _prepare(x, y, plan)
    _, _, lens = _match(cx_ln, gkeys, gptr)
    return int(lens.sum())


@dataclass
class TwoPhaseResult:
    """Output of the symbolic+numeric engine with phase accounting."""

    result: ContractionResult
    symbolic_seconds: float
    numeric_seconds: float
    allocated_nnz: int


def two_phase_contract(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    allocation: str = "symbolic",
    sort_output: bool = True,
) -> TwoPhaseResult:
    """The rejected two-phase engine.

    ``allocation="symbolic"`` runs the exact symbolic pass first;
    ``allocation="upper_bound"`` allocates the loose product-count bound
    (trading the symbolic time for wasted memory). The numeric phase then
    fills the pre-allocated output.
    """
    plan = ContractionPlan.create(x, y, cx, cy)
    profile = RunProfile(f"two_phase_{allocation}")
    clock = time.perf_counter

    t0 = clock()
    if allocation == "symbolic":
        allocated = symbolic_count(x, y, cx, cy)
    elif allocation == "upper_bound":
        allocated = upper_bound_count(x, y, cx, cy)
    else:
        raise ValueError(f"unknown allocation strategy {allocation!r}")
    symbolic_seconds = clock() - t0
    profile.add_time(Stage.INPUT_PROCESSING, symbolic_seconds)
    profile.counters["allocated_nnz"] = allocated

    # Numeric phase: compute into the pre-allocated arrays.
    t0 = clock()
    fx_ln, cx_ln, fy_sorted, yv_sorted, gkeys, gptr = _prepare(x, y, plan)
    rows, starts, lens = _match(cx_ln, gkeys, gptr)
    gather = expand_ranges(starts, lens)
    out_keys = np.empty(allocated, dtype=INDEX_DTYPE)
    out_vals = np.zeros(allocated, dtype=VALUE_DTYPE)
    nnz_z = 0
    if gather.size:
        fy_capacity = ln_capacity(plan.fy_dims)
        zkeys = (
            np.repeat(fx_ln[rows], lens) * fy_capacity + fy_sorted[gather]
        )
        vals = np.repeat(x.values[rows], lens) * yv_sorted[gather]
        uniq, inverse = np.unique(zkeys, return_inverse=True)
        nnz_z = int(uniq.shape[0])
        if nnz_z > allocated:
            raise MemoryError(
                f"pre-allocated {allocated} output slots but the "
                f"contraction produced {nnz_z}"
            )
        out_keys[:nnz_z] = uniq
        np.add.at(out_vals[:nnz_z], inverse, vals)
    numeric_seconds = clock() - t0
    profile.add_time(Stage.ACCUMULATION, numeric_seconds)
    profile.counters["nnz_z"] = nnz_z
    profile.counters["products"] = int(gather.shape[0])

    nfx = len(plan.fx)
    fy_capacity = ln_capacity(plan.fy_dims)
    indices = np.empty((nnz_z, plan.out_order), dtype=INDEX_DTYPE)
    if nnz_z:
        indices[:, :nfx] = delinearize(
            out_keys[:nnz_z] // fy_capacity, plan.fx_dims
        )
        indices[:, nfx:] = delinearize(
            out_keys[:nnz_z] % fy_capacity, plan.fy_dims
        )
    z = SparseTensor(
        indices, out_vals[:nnz_z], plan.out_shape,
        copy=False, validate=False,
    )
    if sort_output:
        z = z.sort()
    return TwoPhaseResult(
        result=ContractionResult(z, profile, plan),
        symbolic_seconds=symbolic_seconds,
        numeric_seconds=numeric_seconds,
        allocated_nnz=allocated,
    )
