"""KernelCache — compiled-kernel LRU beside the HtY/plan caches.

Rendering plus ``compile()``/``exec`` costs tens of microseconds —
cheap, but paid per *chunk* without a cache (a parallel run issues
hundreds). The cache is keyed by the full
:class:`~repro.core.codegen.signature.KernelSignature` (fused kernels)
or the free-mode extents (delinearizers), so ``contract``,
``ContractionSequence``, ``cp_als`` and both parallel backends hit warm
kernels after the first call with a given signature.

Only the *source* is ever serialized (it is a plain string attached to
each function as ``__source__``); function/code objects stay inside
the process that compiled them. Process-pool workers therefore keep a
private module-level cache each and compile from the signature they
derive off the shared operands — nothing code-like crosses a pipe,
and a worker's hit/miss counters ship back inside its ordinary profile
counter dict.

Hit/miss/eviction statistics ride on the shared
:class:`~repro.core.htycache.LRUCache` machinery and surface through
``MetricsRegistry.record_caches`` and the per-run
``kernel_cache_hits``/``kernel_cache_misses``/``kernel_compiles``
profile counters.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.core.codegen.signature import KernelSignature
from repro.core.codegen.templates import (
    render_delinearizer,
    render_fused_kernel,
)
from repro.core.htycache import CacheStats, LRUCache

__all__ = [
    "KernelCache",
    "compile_kernel",
    "default_kernel_cache",
    "kernel_cache_stats",
]

#: sentinel distinguishing "missing" from a cached falsy value
_MISSING = object()


def compile_kernel(source: str, entry: str, *, label: str = "kernel"):
    """Compile generated *source* and return its *entry* function.

    The source is kept on the returned function as ``__source__`` so
    tests and debuggers can audit exactly what runs; the pseudo-file
    name makes generated frames identifiable in tracebacks.
    """
    code = compile(source, f"<repro-codegen:{label}>", "exec")
    namespace: dict = {}
    exec(code, namespace)
    fn = namespace[entry]
    fn.__source__ = source
    return fn


class KernelCache:
    """Bounded LRU of compiled specialized kernels.

    Thread-safe (the thread backend's workers share the process-wide
    instance). Entries are function objects; eviction just drops the
    reference — a re-render of the same signature produces byte-equal
    source, so eviction can never change results.
    """

    def __init__(self, maxsize: int = 64) -> None:
        self._lru = LRUCache(maxsize)

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()

    # ------------------------------------------------------------------
    def _get(
        self,
        key: Tuple,
        render: Callable[[], str],
        entry: str,
        label: str,
        profile,
    ):
        fn = self._lru.get(key, _MISSING)
        if fn is not _MISSING:
            if profile is not None:
                profile.bump("kernel_cache_hits")
            return fn
        if profile is not None:
            profile.bump("kernel_cache_misses")
            profile.bump("kernel_compiles")
        fn = compile_kernel(render(), entry, label=label)
        self._lru.put(key, fn)
        return fn

    def get_fused_kernel(self, sig: KernelSignature, profile=None):
        """Compiled ``fused_chunk`` for *sig* (rendering on miss)."""
        return self._get(
            ("fused", sig),
            lambda: render_fused_kernel(sig),
            "fused_chunk",
            f"fused:{sig.free_dims}",
            profile,
        )

    def get_delinearizer(self, fy_dims: Sequence[int], profile=None):
        """Compiled ``delinearize_fy`` for *fy_dims* (rendering on miss)."""
        dims = tuple(int(d) for d in fy_dims)
        return self._get(
            ("delin", dims),
            lambda: render_delinearizer(dims),
            "delinearize_fy",
            f"delin:{dims}",
            profile,
        )


#: process-wide cache every call site defaults to (one per process —
#: pool workers each build their own on first use)
_DEFAULT_KERNEL_CACHE: Optional[KernelCache] = None


def default_kernel_cache() -> KernelCache:
    """The shared process-wide :class:`KernelCache`."""
    global _DEFAULT_KERNEL_CACHE
    if _DEFAULT_KERNEL_CACHE is None:
        _DEFAULT_KERNEL_CACHE = KernelCache()
    return _DEFAULT_KERNEL_CACHE


def kernel_cache_stats() -> CacheStats:
    """Statistics of the shared process-wide kernel cache."""
    return default_kernel_cache().stats
