"""Source renderers for the specialized kernels.

Everything emitted here is plain Python/numpy source with the
signature's constants folded in as literals:

* the LN free-space extent ``FY_SPACE`` (and, when it is a power of
  two, the equivalent shift/mask) used to pack ``(sub-tensor, LN(Fy))``
  into one int64 key and to unpack the reduced keys;
* the per-mode delinearization strides (shift/mask literals for
  power-of-two strides, ``//``/multiply-subtract otherwise), unrolled
  to one statement pair per output mode.

Bit-identity contract (pinned by ``tests/property/test_differential.py``):
every strategy sums each output key's contributions in X-row order —
the order the per-element ``np.add.at`` reference uses — and emits
output keys in ``(sub-tensor, LN(Fy))`` lexicographic order, so the
generated kernels are byte-interchangeable with the generic fused path:

* ``dense`` scatter-adds through ``np.bincount`` over a flat workspace;
  bincount's C loop adds strictly left-to-right, and the products
  stream is already in X-row order within each key;
* ``packed`` appends the source position to the packed key
  (``comb = (pk << shift) | arange(n)``), making every combined key
  unique, so an *unstable* ``np.sort`` reproduces exactly the stable
  order; the sparse-duplicate epilogue seeds each key with its first
  contribution (``+ 0.0``, matching bincount's ``0.0 + v`` for the
  ``-0.0`` edge case) and ``np.add.at``s the rare duplicates in
  ascending position order;
* ``lexsort`` is the generic stable two-key sort + weighted bincount,
  kept for chunks whose packed key would overflow int64.

``np.add.reduceat`` stays banned here for the same reason as in the
generic kernel: it pairwise-sums segments of eight or more elements,
which changes the floating-point result.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = ["render_delinearizer", "render_fused_kernel"]


def _pow2_log(value: int) -> Optional[int]:
    """log2 of *value* when it is a positive power of two, else None."""
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def _prod(dims: Sequence[int]) -> int:
    out = 1
    for d in dims:
        out *= int(d)
    return out


def render_fused_kernel(sig) -> str:
    """Source of the specialized stages-3/4 chunk body for *sig*.

    The generated ``fused_chunk(vals, fy, seg, dense_threshold,
    workspace_cap)`` consumes one chunk's partial-product stream
    (values, LN(Fy) keys, sub-tensor ids — ``seg`` ascending) and
    returns ``(out_seg, out_fy, out_vals, strategy)`` with the reduced
    outputs in ``(seg, fy)`` lexicographic order.
    """
    fy_space = _prod(sig.free_dims)
    log2fy = _pow2_log(fy_space)
    if log2fy is not None:
        pack = f"(rel << {log2fy}) + fy"
        unpack_grp = f"pk_u >> {log2fy}"
        unpack_fy = f"pk_u & {fy_space - 1}"
    else:
        pack = f"rel * {fy_space} + fy"
        unpack_grp = f"pk_u // {fy_space}"
        unpack_fy = f"pk_u - grp * {fy_space}"
    return f'''\
"""Generated fused-chunk kernel — do not edit; re-render instead.

signature: x_order={sig.x_order} y_order={sig.y_order}
           contract_dims={sig.contract_dims} free_dims={sig.free_dims}
           accumulator={sig.accumulator!r} dtype={sig.dtype!r}
"""
import numpy as np

#: LN free-space extent, folded from the signature
FY_SPACE = {fy_space}


def fused_chunk(vals, fy, seg, dense_threshold, workspace_cap):
    n = vals.shape[0]
    seg0 = int(seg[0])
    span = int(seg[n - 1]) - seg0 + 1
    wspace = span * FY_SPACE  # Python int: exact, no overflow
    if wspace <= workspace_cap and n >= dense_threshold * wspace:
        # Dense workspace (Kjolstad-style): scatter-add every product
        # into a flat array over the chunk's output fiber space, then
        # compact. bincount adds left-to-right = X-row order per key.
        rel = seg - seg0
        pk = {pack}
        sums = np.bincount(pk, weights=vals, minlength=wspace)
        hit = np.bincount(pk, minlength=wspace)
        pk_u = np.flatnonzero(hit)
        grp = {unpack_grp}
        return grp + seg0, {unpack_fy}, sums[pk_u], "dense"
    shift = max(n - 1, 1).bit_length()
    if wspace <= (1 << (63 - shift)):
        # Index-embedded quicksort: the source position in the low
        # bits makes every combined key unique, so the unstable sort
        # lands in exactly the stable (pk, position) order.
        rel = seg - seg0
        comb = (({pack}) << shift) | np.arange(n, dtype=np.int64)
        comb.sort(kind="quicksort")
        pk_s = comb >> shift
        perm = comb & ((1 << shift) - 1)
        mask = np.empty(n, dtype=bool)
        mask[0] = True
        np.not_equal(pk_s[1:], pk_s[:-1], out=mask[1:])
        boundary = np.flatnonzero(mask)
        vals_s = vals[perm]
        dups = n - boundary.shape[0]
        if dups * 8 < n:
            # Sparse-duplicate epilogue: seed each key with its first
            # contribution (+0.0 normalizes a lone -0.0 exactly like
            # bincount's 0.0+v), then fold the rare duplicates in
            # ascending position order — the same left-to-right order.
            o_vals = vals_s[boundary] + 0.0
            if dups:
                dup_idx = np.flatnonzero(~mask)
                np.add.at(
                    o_vals,
                    np.searchsorted(boundary, dup_idx, "right") - 1,
                    vals_s[dup_idx],
                )
        else:
            o_vals = np.bincount(
                np.cumsum(mask) - 1,
                weights=vals_s,
                minlength=boundary.shape[0],
            )
        pk_u = pk_s[boundary]
        grp = {unpack_grp}
        return grp + seg0, {unpack_fy}, o_vals, "packed"
    # Packed key would overflow int64: generic stable two-key sort.
    perm = np.lexsort((fy, seg))
    seg_s = seg[perm]
    fy_s = fy[perm]
    mask = np.empty(n, dtype=bool)
    mask[0] = True
    mask[1:] = (seg_s[1:] != seg_s[:-1]) | (fy_s[1:] != fy_s[:-1])
    boundary = np.flatnonzero(mask)
    o_vals = np.bincount(
        np.cumsum(mask) - 1,
        weights=vals[perm],
        minlength=boundary.shape[0],
    )
    return seg_s[boundary], fy_s[boundary], o_vals, "lexsort"
'''


def render_delinearizer(fy_dims: Tuple[int, ...]) -> str:
    """Source of an unrolled LN(Fy) → per-mode-index decoder.

    The generated ``delinearize_fy(keys, out)`` writes mode *j*'s
    indices into ``out[:, j]`` with the row-major strides of *fy_dims*
    folded in as literals — shift/mask pairs where the stride is a
    power of two, ``//`` plus multiply-subtract otherwise. Arithmetic
    is identical to :func:`repro.tensor.linearize.delinearize` for the
    non-negative keys LN produces.
    """
    k = len(fy_dims)
    if k == 0:
        raise ValueError("delinearizer needs at least one free mode")
    strides = [_prod(fy_dims[j + 1:]) for j in range(k)]
    lines = []
    src = "keys"
    for j, stride in enumerate(strides):
        if j == k - 1:
            lines.append(f"    out[:, {j}] = {src}")
            break
        log2 = _pow2_log(stride)
        if log2 is not None:
            lines.append(f"    q = {src} >> {log2}")
            lines.append(f"    out[:, {j}] = q")
            lines.append(f"    rem = {src} & {stride - 1}")
        else:
            lines.append(f"    q = {src} // {stride}")
            lines.append(f"    out[:, {j}] = q")
            lines.append(f"    rem = {src} - q * {stride}")
        src = "rem"
    body = "\n".join(lines)
    return f'''\
"""Generated LN delinearizer — do not edit; re-render instead.

free_dims: {tuple(int(d) for d in fy_dims)}
strides:   {tuple(strides)}
"""


def delinearize_fy(keys, out):
{body}
'''
