"""Contraction signatures — the kernel-cache key.

A :class:`KernelSignature` captures everything a specialized kernel's
source depends on: tensor orders, the contracted-mode extents, the free
(output-fiber) extents whose product is the LN free space, the
accumulator kind and the value dtype. Two contractions with equal
signatures are served by the same compiled kernel; everything that
varies per call (array lengths, density, thresholds) stays a runtime
argument of the generated function.

The signature is *derivable at every call site* from data the site
already holds — the prepared X (``px``) and the searched Y structure
(``HashTensor`` or ``SortedY``, both of which carry ``free_dims`` and
``contract_dims``). That property is what lets process-pool workers
compile from the shipped operands instead of receiving pickled code
objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class KernelSignature:
    """One contraction's shape class, post mode-permutation."""

    #: order of X (free modes + contracted modes)
    x_order: int
    #: order of Y (contracted modes + free modes)
    y_order: int
    #: extents of the contracted modes (shared by X and Y)
    contract_dims: Tuple[int, ...]
    #: extents of Y's free modes — ``prod`` is the LN free space
    free_dims: Tuple[int, ...]
    #: accumulator kind ("hash"; SPA keeps its measured per-group loop)
    accumulator: str
    #: value dtype name (e.g. "float64")
    dtype: str

    @property
    def fy_space(self) -> int:
        """Number of distinct LN(Fy) keys — ``prod(free_dims)``."""
        out = 1
        for d in self.free_dims:
            out *= int(d)
        return out

    @property
    def nfx(self) -> int:
        """Free-mode count of X."""
        return self.x_order - len(self.contract_dims)

    @classmethod
    def from_operands(
        cls, px, source, accumulator: str
    ) -> Optional["KernelSignature"]:
        """Derive the signature from a prepared X and a searched Y.

        Returns ``None`` when *source* does not carry its mode extents
        (e.g. a hand-built :class:`~repro.core.common.SortedY` with the
        default empty ``free_dims``) — callers then fall back to the
        generic kernel.
        """
        free_dims = tuple(
            int(d) for d in (getattr(source, "free_dims", ()) or ())
        )
        contract_dims = tuple(
            int(d) for d in (getattr(source, "contract_dims", ()) or ())
        )
        if not free_dims or not contract_dims:
            return None
        nfx = int(px.fx_rows.shape[1])
        return cls(
            x_order=nfx + len(contract_dims),
            y_order=len(contract_dims) + len(free_dims),
            contract_dims=contract_dims,
            free_dims=free_dims,
            accumulator=str(accumulator),
            dtype=str(np.dtype(px.values.dtype)),
        )
