"""Per-signature kernel specialization (ROADMAP: "Kernel codegen").

The generic fused kernel in :mod:`repro.core.kernels` is shape-agnostic:
every contraction pays the same branchy index packing, two-key
``np.lexsort`` segmentation and delinearization loop regardless of its
signature. This package emits Python/numpy *source* specialized to one
contraction signature — the LN free-space extent, its power-of-two
shifts/masks and the per-mode delinearization strides are folded in as
literals — compiles it with :func:`compile`/``exec`` and caches the
function objects in a bounded :class:`KernelCache` (built on the same
LRU machinery as the HtY/plan caches in :mod:`repro.core.htycache`).

Three specialized accumulation strategies live in the generated kernel
(see :mod:`repro.core.codegen.templates` for why each is bit-identical
to the generic path):

* ``dense`` — a flat dense workspace over the chunk's output fiber
  space (Kjolstad et al., "Sparse Tensor Algebra Optimizations with
  Workspaces"), selected when a cheap density estimate crosses a
  threshold;
* ``packed`` — index-embedded unstable quicksort over single packed
  ``(sub-tensor, LN(Fy))`` keys with the source position appended in
  the low bits, so the unstable sort reproduces the stable order;
* ``lexsort`` — the generic stable two-key fallback, kept for packed-
  key int64 overflow.

Only *source* is ever cached or shipped: process-pool workers derive
the signature from the shared operands and compile in their own
interpreter (code objects never cross a pipe), so every backend hits
warm kernels after its first chunk.

The environment kill-switch ``REPRO_NO_CODEGEN=1`` reverts every call
site to the generic fused kernel.
"""

from __future__ import annotations

import os

from repro.core.codegen.cache import (
    KernelCache,
    compile_kernel,
    default_kernel_cache,
    kernel_cache_stats,
)
from repro.core.codegen.signature import KernelSignature
from repro.core.codegen.templates import (
    render_delinearizer,
    render_fused_kernel,
)

__all__ = [
    "KernelCache",
    "KernelSignature",
    "codegen_enabled",
    "compile_kernel",
    "default_kernel_cache",
    "kernel_cache_stats",
    "render_delinearizer",
    "render_fused_kernel",
]

#: environment variable that disables all generated kernels
KILL_SWITCH_ENV = "REPRO_NO_CODEGEN"


def codegen_enabled() -> bool:
    """False when the ``REPRO_NO_CODEGEN`` kill-switch is set.

    The switch dominates every per-call ``codegen=`` argument so one
    environment variable reverts the whole process (including spawned
    pool workers, which inherit the environment) to the generic fused
    kernel.
    """
    return os.environ.get(KILL_SWITCH_ENV, "") not in ("1", "true", "yes")
