"""The five-stage looped SpTC driver behind the three paper engines.

Algorithm 1 (SpTC-SPA) and Algorithm 2 (Sparta) share their loop nest; the
engines differ only in

* how Y is searched — linear scan over sorted COO vs. HtY hash lookup;
* how partial products accumulate — SPA linear search vs. HtA hashing.

This module implements the common driver once, parameterised on those two
choices, and charges per-stage time, operation counts and Table-2 traffic.
"""

from __future__ import annotations

import math
import time
from typing import Literal, Optional, Sequence

import numpy as np

from repro.core.common import (
    HT_ENTRY_BYTES,
    LocalOutput,
    assemble_output,
    coo_row_bytes,
    expand_ranges,
    prepare_x,
    prepare_y_sorted,
)
from repro.core.plan import ContractionPlan
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.hashtable.accumulator import HashAccumulator
from repro.hashtable.spa import SparseAccumulator
from repro.hashtable.tensor_table import HashTensor
from repro.tensor.coo import SparseTensor

YStructure = Literal["coo", "coo_bsearch", "hash"]
AccumulatorKind = Literal["spa", "hash"]
Granularity = Literal["element", "subtensor"]

#: fraction of HtA probes served by CPU caches (thread-private, 10-50 MB
#: per thread on the paper's machine — partially LLC-resident)
HTA_CACHE_HIT = 0.5


def looped_contract(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    engine_name: str,
    y_structure: YStructure,
    accumulator: AccumulatorKind,
    sort_output: bool = True,
    num_buckets: Optional[int] = None,
    accumulator_buckets: Optional[int] = None,
    granularity: Granularity = "subtensor",
    x_format: str = "coo",
) -> ContractionResult:
    """Run one SpTC through the shared five-stage loop nest.

    ``granularity`` chooses how the inner loop is driven:

    * ``"element"`` — one Python iteration per X non-zero, exactly
      Algorithm 1/2's loop nest (used by semantics tests);
    * ``"subtensor"`` — one batched step per X sub-tensor: the same
      searches, products and accumulator probes, issued as array
      operations (the measurement path; the paper's C loops run at this
      cost level).
    """
    plan = ContractionPlan.create(x, y, cx, cy)
    profile = RunProfile(engine_name)
    clock = time.perf_counter

    # ---------------- stage 1: input processing ----------------------
    t0 = clock()
    px = prepare_x(x, plan, profile, x_format=x_format)
    if y_structure in ("coo", "coo_bsearch"):
        sy = prepare_y_sorted(y, plan, profile)
        hty = None
    else:
        hty = HashTensor.from_coo(y, plan.cy, num_buckets=num_buckets)
        sy = None
        _record_hty_build(y, hty, profile)
    profile.add_time(Stage.INPUT_PROCESSING, clock() - t0)

    def make_accumulator() -> SparseAccumulator | HashAccumulator:
        if accumulator == "spa":
            return SparseAccumulator()
        return HashAccumulator(accumulator_buckets)

    # ---------------- stages 2-4: computation ------------------------
    search_time = 0.0
    accum_time = 0.0
    write_time = 0.0
    products = 0
    accum_probe_base = 0
    hta_peak_bytes = 0
    local = LocalOutput()
    profile.bump("num_subtensors", px.num_subtensors)

    ptr = px.ptr
    cx_ln = px.cx_ln
    xvals = px.values
    if sy is not None:
        src_ptr = sy.group_ptr
        src_free = sy.free_ln
        src_vals = sy.values
    else:
        src_ptr = hty.group_ptr  # type: ignore[union-attr]
        src_free = hty.free_ln  # type: ignore[union-attr]
        src_vals = hty.values  # type: ignore[union-attr]

    for f in range(px.num_subtensors):
        acc = make_accumulator()
        s, e = int(ptr[f]), int(ptr[f + 1])
        if granularity == "subtensor":
            t = clock()
            keys = cx_ln[s:e]
            if sy is not None:
                if y_structure == "coo_bsearch":
                    gids = sy.binary_search_many(keys, profile)
                else:
                    gids = sy.linear_search_many(keys, profile)
            else:
                gids = hty.lookup_many(keys)  # type: ignore[union-attr]
                profile.bump("search_probes", int(keys.shape[0]))
            rows = np.flatnonzero(gids >= 0)
            grp = gids[rows]
            starts = src_ptr[grp]
            lens = (src_ptr[grp + 1] - starts).astype(np.int64)
            gather = expand_ranges(starts, lens)
            search_time += clock() - t
            if gather.size:
                t = clock()
                prod_vals = (
                    np.repeat(xvals[s + rows], lens) * src_vals[gather]
                )
                acc.add_many(src_free[gather], prod_vals)
                accum_time += clock() - t
                products += int(gather.shape[0])
        else:
            for i in range(s, e):
                key = int(cx_ln[i])
                t = clock()
                if sy is not None:
                    g = sy.linear_search(key, profile)
                    found = g is not None
                    if found:
                        fkeys, fvals = sy.group(g)  # type: ignore[arg-type]
                else:
                    hit = hty.lookup(key)  # type: ignore[union-attr]
                    found = hit is not None
                    if found:
                        fkeys, fvals = hit  # type: ignore[misc]
                    profile.bump("search_probes")
                search_time += clock() - t
                if not found:
                    continue
                t = clock()
                acc.add_many(fkeys, xvals[i] * fvals)
                accum_time += clock() - t
                products += int(fkeys.shape[0])
        t = clock()
        keys_out, vals_out = acc.export()
        local.append(px.fx_rows[f], keys_out, vals_out)
        write_time += clock() - t
        hta_peak_bytes = max(hta_peak_bytes, acc.nbytes)
        accum_probe_base += acc.probes if hasattr(acc, "probes") else 0

    profile.add_time(Stage.INDEX_SEARCH, search_time)
    profile.add_time(Stage.ACCUMULATION, accum_time)
    profile.bump("products", products)
    profile.bump("accum_probes", accum_probe_base)

    # ---------------- stages 4-5: writeback + output sorting ---------
    t0 = clock()
    z = assemble_output([local], plan, profile, sort_output=False)
    write_time += clock() - t0
    profile.add_time(Stage.WRITEBACK, write_time)
    if sort_output:
        t0 = clock()
        z = z.sort()
        profile.add_time(Stage.OUTPUT_SORTING, clock() - t0)
        rowb = coo_row_bytes(plan.out_order)
        passes = 1.0  # see common._sort_passes
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.READ,
            AccessPattern.RANDOM, int(z.nnz * rowb * passes),
        )
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.WRITE,
            AccessPattern.RANDOM, int(z.nnz * rowb * passes),
        )

    if hty is not None:
        profile.counters["hash_probes"] = hty.table.probes
    _record_computation_traffic(
        plan, profile, px, sy, hty, products, hta_peak_bytes, local, x, y
    )
    return ContractionResult(z, profile, plan)


# ----------------------------------------------------------------------
# traffic accounting (Table 2 access signatures)
# ----------------------------------------------------------------------
def _record_hty_build(
    y: SparseTensor, hty: HashTensor, profile: RunProfile
) -> None:
    """Input-processing traffic of the COO→HtY conversion (O(nnz_Y))."""
    rowb = coo_row_bytes(y.order)
    profile.counters["nnz_y"] = y.nnz
    profile.counters["hty_groups"] = hty.num_groups
    profile.counters["hty_max_group"] = hty.max_group_size
    profile.note_object_bytes(DataObject.Y, y.nnz * rowb)
    profile.note_object_bytes(DataObject.HTY, hty.nbytes)
    profile.record_traffic(
        DataObject.Y, Stage.INPUT_PROCESSING, AccessKind.READ,
        AccessPattern.SEQUENTIAL, y.nnz * rowb,
    )
    profile.record_traffic(
        DataObject.HTY, Stage.INPUT_PROCESSING, AccessKind.WRITE,
        AccessPattern.RANDOM, y.nnz * HT_ENTRY_BYTES,
    )
    profile.record_traffic(
        DataObject.HTY, Stage.INPUT_PROCESSING, AccessKind.READ,
        AccessPattern.RANDOM, hty.table.num_buckets * 8,
    )


def _record_computation_traffic(
    plan: ContractionPlan,
    profile: RunProfile,
    px,
    sy,
    hty,
    products: int,
    hta_peak_bytes: int,
    local: LocalOutput,
    x: SparseTensor,
    y: SparseTensor,
) -> None:
    """Stages 2-4 traffic per Table 2 from the run's measured counts."""
    # Index search: X streamed sequentially once (compressed size when
    # X is stored in HiCOO).
    x_bytes = profile.object_bytes.get(
        DataObject.X, x.nnz * coo_row_bytes(x.order)
    )
    profile.record_traffic(
        DataObject.X, Stage.INDEX_SEARCH, AccessKind.READ,
        AccessPattern.SEQUENTIAL, x_bytes,
    )
    if hty is not None:
        # Each lookup reads a bucket head (8 B) and walks chain entries
        # (HT_ENTRY_BYTES each); hits then stream the group's contiguous
        # (LN(Fy), val) arrays. Table 2 charges all of it to HtY in the
        # index-search stage as random reads.
        lookups = profile.counters.get("search_probes", 0)
        chain_reads = profile.counters.get("hash_probes", lookups)
        probe_bytes = lookups * 8 + chain_reads * HT_ENTRY_BYTES
        group_bytes = products * 16  # (LN(Fy), val) pairs
        profile.record_traffic(
            DataObject.HTY, Stage.INDEX_SEARCH, AccessKind.READ,
            AccessPattern.RANDOM, probe_bytes + group_bytes,
        )
    else:
        scan_bytes = profile.counters.get("search_probes", 0) * 8
        group_bytes = products * 16
        profile.record_traffic(
            DataObject.Y, Stage.INDEX_SEARCH, AccessKind.READ,
            AccessPattern.RANDOM, scan_bytes + group_bytes,
        )
    # Accumulation: each product probes the accumulator (random read of
    # the entry's key and value, 16 B); a hit updates the 8-byte value in
    # place, a miss creates a full entry. Created entries total the final
    # output count. HtA is thread-private and small (the paper: 10-50 MB
    # per thread) so a sizable share of its probes hit the CPU caches and
    # never reach memory — modeled by HTA_CACHE_HIT.
    profile.note_object_bytes(DataObject.HTA, hta_peak_bytes)
    created = local.nnz
    miss = 1.0 - HTA_CACHE_HIT
    profile.record_traffic(
        DataObject.HTA, Stage.ACCUMULATION, AccessKind.READ,
        AccessPattern.RANDOM, int(products * 16 * miss),
    )
    profile.record_traffic(
        DataObject.HTA, Stage.ACCUMULATION, AccessKind.WRITE,
        AccessPattern.RANDOM,
        int(
            (max(products - created, 0) * 8 + created * HT_ENTRY_BYTES)
            * miss
        ),
    )
    # Z_local appended sequentially during computation (Table 2 row 3).
    nfx = len(plan.fx)
    profile.record_traffic(
        DataObject.Z_LOCAL, Stage.ACCUMULATION, AccessKind.WRITE,
        AccessPattern.SEQUENTIAL, local.nbytes(nfx),
    )
