"""The five-stage looped SpTC driver behind the three paper engines.

Algorithm 1 (SpTC-SPA) and Algorithm 2 (Sparta) share their loop nest; the
engines differ only in

* how Y is searched — linear scan over sorted COO vs. HtY hash lookup;
* how partial products accumulate — SPA linear search vs. HtA hashing.

This module implements the common driver once, parameterised on those two
choices, and charges per-stage time, operation counts and Table-2 traffic.
The default ``"subtensor"`` granularity executes stages 2-4 through the
fused flat-batch kernel (:mod:`repro.core.kernels`); ``"subtensor_loop"``
keeps the historical one-Python-iteration-per-sub-tensor driver for
comparison, and ``"element"`` is the per-non-zero semantic reference.
"""

from __future__ import annotations

import time
from typing import Literal, Optional, Sequence

import numpy as np

from repro.core.common import (
    LocalOutput,
    _sort_passes,
    assemble_output,
    coo_row_bytes,
    expand_ranges,
    prepare_x,
    prepare_y_sorted,
)
from repro.core.htycache import HtYCache, cached_plan
from repro.core.kernels import (
    HTA_CACHE_HIT,
    assemble_fused,
    fused_compute,
    hta_model_nbytes,
    record_computation_traffic,
    record_hty_build,
)
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.errors import ContractionError
from repro.obs.tracer import CAT_CONTRACTION, NULL_TRACER, Tracer
from repro.hashtable.accumulator import HashAccumulator
from repro.hashtable.spa import SparseAccumulator
from repro.hashtable.tensor_table import HashTensor
from repro.tensor.coo import SparseTensor

YStructure = Literal["coo", "coo_bsearch", "hash"]
AccumulatorKind = Literal["spa", "hash"]
Granularity = Literal["element", "subtensor", "subtensor_loop"]

__all__ = ["looped_contract", "HTA_CACHE_HIT"]


def looped_contract(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    engine_name: str,
    y_structure: YStructure,
    accumulator: AccumulatorKind,
    sort_output: bool = True,
    num_buckets: Optional[int] = None,
    accumulator_buckets: Optional[int] = None,
    granularity: Granularity = "subtensor",
    x_format: str = "coo",
    hty_cache: Optional[HtYCache] = None,
    codegen: Optional[bool] = None,
    dense_threshold: Optional[float] = None,
    workspace_cap: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> ContractionResult:
    """Run one SpTC through the shared five-stage loop nest.

    ``granularity`` chooses how the inner stages are driven:

    * ``"element"`` — one Python iteration per X non-zero, exactly
      Algorithm 1/2's loop nest (used by semantics tests);
    * ``"subtensor"`` — the fused flat-batch kernel: one batched search
      over every contract key and one segmented accumulation over every
      partial product (the measurement path; the paper's C loops run at
      this cost level). Output is identical to ``"element"``;
    * ``"subtensor_loop"`` — the historical one-batched-step-per-sub-
      tensor Python loop, kept for fused-vs-loop benchmarking.

    ``hty_cache`` (hash engines only) reuses a previously built HtY when
    Y, the contract modes and ``num_buckets`` all match a cached entry —
    the hit skips the O(nnz_Y) build and its input-processing traffic,
    and is counted in the ``hty_cache_hits``/``hty_cache_misses``
    profile counters.

    ``codegen``/``dense_threshold``/``workspace_cap`` control the
    per-signature generated kernels of the fused path (see
    :func:`repro.core.kernels.fused_compute`); they never change
    results, only wall time.
    """
    if granularity not in ("element", "subtensor", "subtensor_loop"):
        raise ContractionError(
            f"unknown granularity {granularity!r}; choose 'element', "
            "'subtensor' or 'subtensor_loop'"
        )
    plan = cached_plan(x, y, cx, cy)
    profile = RunProfile(engine_name)
    clock = time.perf_counter
    tr = NULL_TRACER if tracer is None else tracer
    t_root = clock()

    # ---------------- stage 1: input processing ----------------------
    t0 = clock()
    px = prepare_x(x, plan, profile, x_format=x_format)
    hty_probes0 = 0
    if y_structure in ("coo", "coo_bsearch"):
        sy = prepare_y_sorted(y, plan, profile)
        hty = None
    else:
        if hty_cache is not None:
            hty, hit = hty_cache.get_or_build(
                y, plan.cy, num_buckets=num_buckets
            )
            if not hit:
                profile.bump("hty_cache_misses")
        else:
            hty, hit = (
                HashTensor.from_coo(y, plan.cy, num_buckets=num_buckets),
                False,
            )
        sy = None
        record_hty_build(y, hty, profile, cached=hit)
        # A cached HtY arrives with probe counts from earlier runs;
        # charge only this contraction's chain walks.
        hty_probes0 = hty.table.probes
    t1 = clock()
    profile.add_time(Stage.INPUT_PROCESSING, t1 - t0)
    tr.add_span(Stage.INPUT_PROCESSING.value, start=t0, end=t1)

    profile.bump("num_subtensors", px.num_subtensors)

    # ---------------- stages 2-4: computation ------------------------
    tc0 = clock()
    if granularity == "subtensor":
        z, products, hta_peak_bytes = _fused_stages(
            px,
            sy if sy is not None else hty,
            plan,
            profile,
            y_structure=y_structure,
            accumulator=accumulator,
            accumulator_buckets=accumulator_buckets,
            codegen=codegen,
            dense_threshold=dense_threshold,
            workspace_cap=workspace_cap,
            clock=clock,
        )
    else:
        z, products, hta_peak_bytes = _loop_stages(
            px,
            sy,
            hty,
            plan,
            profile,
            y_structure=y_structure,
            accumulator=accumulator,
            accumulator_buckets=accumulator_buckets,
            granularity=granularity,
            clock=clock,
        )
    created = z.nnz
    if tr.enabled:
        # Search/accumulation/writeback interleave inside the kernels;
        # the per-stage times are exact, so lay the three spans out
        # back-to-back over the measured compute window.
        t = tc0
        for st in (Stage.INDEX_SEARCH, Stage.ACCUMULATION,
                   Stage.WRITEBACK):
            d = float(profile.stage_seconds.get(st, 0.0))
            tr.add_span(st.value, start=t, end=t + d,
                        measured="aggregate")
            t += d

    # ---------------- stage 5: output sorting ------------------------
    if sort_output:
        t0 = clock()
        z = z.sort()
        t1 = clock()
        profile.add_time(Stage.OUTPUT_SORTING, t1 - t0)
        tr.add_span(Stage.OUTPUT_SORTING.value, start=t0, end=t1)
        rowb = coo_row_bytes(plan.out_order)
        passes = _sort_passes(z.nnz)
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.READ,
            AccessPattern.RANDOM, int(z.nnz * rowb * passes),
        )
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.WRITE,
            AccessPattern.RANDOM, int(z.nnz * rowb * passes),
        )

    if hty is not None:
        profile.counters["hash_probes"] = hty.table.probes - hty_probes0
    record_computation_traffic(
        plan,
        profile,
        x,
        uses_hty=hty is not None,
        products=products,
        hta_peak_bytes=hta_peak_bytes,
        created=created,
    )
    tr.add_span(
        engine_name,
        start=t_root,
        end=clock(),
        cat=CAT_CONTRACTION,
        engine=engine_name,
        nnz_out=int(z.nnz),
    )
    return ContractionResult(z, profile, plan)


def _fused_stages(px, source, plan, profile, *, y_structure, accumulator,
                  accumulator_buckets, codegen=None, dense_threshold=None,
                  workspace_cap=None, clock=time.perf_counter):
    """Stages 2-4 through the fused flat-batch kernel."""
    kernel_kwargs = {}
    if dense_threshold is not None:
        kernel_kwargs["dense_threshold"] = dense_threshold
    if workspace_cap is not None:
        kernel_kwargs["workspace_cap"] = workspace_cap
    fr = fused_compute(
        px,
        source,
        y_structure=y_structure,
        accumulator=accumulator,
        profile=profile,
        accumulator_buckets=accumulator_buckets,
        codegen=codegen,
        clock=clock,
        **kernel_kwargs,
    )
    profile.add_time(Stage.INDEX_SEARCH, fr.search_seconds)
    profile.add_time(Stage.ACCUMULATION, fr.accum_seconds)
    profile.bump("products", fr.products)
    profile.bump("accum_probes", fr.accum_probes)
    if accumulator == "hash":
        hta_peak_bytes = hta_model_nbytes(
            fr.max_group_output, accumulator_buckets
        )
    else:
        hta_peak_bytes = fr.spa_peak_bytes
    t0 = clock()
    z = assemble_fused(
        fr.out_fgrp, fr.out_fy, fr.out_vals, px.fx_rows, plan, profile,
        codegen=codegen,
    )
    profile.add_time(Stage.WRITEBACK, clock() - t0)
    return z, fr.products, hta_peak_bytes


def _loop_stages(px, sy, hty, plan, profile, *, y_structure, accumulator,
                 accumulator_buckets, granularity, clock):
    """Stages 2-4 through the per-sub-tensor / per-element Python loop."""

    def make_accumulator() -> SparseAccumulator | HashAccumulator:
        if accumulator == "spa":
            return SparseAccumulator()
        return HashAccumulator(accumulator_buckets)

    search_time = 0.0
    accum_time = 0.0
    write_time = 0.0
    products = 0
    accum_probe_base = 0
    hta_peak_bytes = 0
    local = LocalOutput()

    ptr = px.ptr
    cx_ln = px.cx_ln
    xvals = px.values
    if sy is not None:
        src_ptr = sy.group_ptr
        src_vals = sy.values
    else:
        src_ptr = hty.group_ptr  # type: ignore[union-attr]
        src_vals = hty.values  # type: ignore[union-attr]
    src_free = sy.free_ln if sy is not None else hty.free_ln  # type: ignore[union-attr]

    for f in range(px.num_subtensors):
        acc = make_accumulator()
        s, e = int(ptr[f]), int(ptr[f + 1])
        if granularity == "subtensor_loop":
            t = clock()
            keys = cx_ln[s:e]
            if sy is not None:
                if y_structure == "coo_bsearch":
                    gids = sy.binary_search_many(keys, profile)
                else:
                    gids = sy.linear_search_many(keys, profile)
            else:
                gids = hty.lookup_many(keys)  # type: ignore[union-attr]
                profile.bump("search_probes", int(keys.shape[0]))
            rows = np.flatnonzero(gids >= 0)
            grp = gids[rows]
            starts = src_ptr[grp]
            lens = (src_ptr[grp + 1] - starts).astype(np.int64)
            gather = expand_ranges(starts, lens)
            search_time += clock() - t
            if gather.size:
                t = clock()
                prod_vals = (
                    np.repeat(xvals[s + rows], lens) * src_vals[gather]
                )
                acc.add_many(src_free[gather], prod_vals)
                accum_time += clock() - t
                products += int(gather.shape[0])
        else:
            for i in range(s, e):
                key = int(cx_ln[i])
                t = clock()
                if sy is not None:
                    g = sy.linear_search(key, profile)
                    found = g is not None
                    if found:
                        fkeys, fvals = sy.group(g)  # type: ignore[arg-type]
                else:
                    hit = hty.lookup(key)  # type: ignore[union-attr]
                    found = hit is not None
                    if found:
                        fkeys, fvals = hit  # type: ignore[misc]
                    profile.bump("search_probes")
                search_time += clock() - t
                if not found:
                    continue
                t = clock()
                acc.add_many(fkeys, xvals[i] * fvals)
                accum_time += clock() - t
                products += int(fkeys.shape[0])
        t = clock()
        keys_out, vals_out = acc.export()
        local.append(px.fx_rows[f], keys_out, vals_out)
        write_time += clock() - t
        hta_peak_bytes = max(hta_peak_bytes, acc.nbytes)
        accum_probe_base += acc.probes if hasattr(acc, "probes") else 0

    profile.add_time(Stage.INDEX_SEARCH, search_time)
    profile.add_time(Stage.ACCUMULATION, accum_time)
    profile.bump("products", products)
    profile.bump("accum_probes", accum_probe_base)

    t0 = clock()
    z = assemble_output([local], plan, profile, sort_output=False)
    write_time += clock() - t0
    profile.add_time(Stage.WRITEBACK, write_time)
    return z, products, hta_peak_bytes
