"""The five SpTC stages (paper §3.1, Figure 1).

Every engine reports its time against these names so the breakdown
experiments (Figure 2, §5.2 stage shares) compare like with like.
"""

from __future__ import annotations

from enum import Enum


class Stage(str, Enum):
    """Pipeline stages of SpTC-SPA and Sparta."""

    #: stage 1 — permutation/sorting of X (and Y for SpTC-SPA), or
    #: COO-to-hashtable conversion of Y (Sparta)
    INPUT_PROCESSING = "input_processing"
    #: stage 2 — locate the Y sub-tensor matching X's contract indices
    INDEX_SEARCH = "index_search"
    #: stage 3 — multiply and accumulate into SPA / HtA
    ACCUMULATION = "accumulation"
    #: stage 4 — copy accumulator contents to Z_local / Z
    WRITEBACK = "writeback"
    #: stage 5 — final lexicographic sort of Z
    OUTPUT_SORTING = "output_sorting"


#: Stages in execution order.
STAGE_ORDER = (
    Stage.INPUT_PROCESSING,
    Stage.INDEX_SEARCH,
    Stage.ACCUMULATION,
    Stage.WRITEBACK,
    Stage.OUTPUT_SORTING,
)

#: The paper groups stages 2-4 as "computation" and 1+5 as
#: "input/output processing".
COMPUTATION_STAGES = (
    Stage.INDEX_SEARCH,
    Stage.ACCUMULATION,
    Stage.WRITEBACK,
)
IO_PROCESSING_STAGES = (Stage.INPUT_PROCESSING, Stage.OUTPUT_SORTING)
