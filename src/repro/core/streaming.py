"""Out-of-core contraction: stream Y in partitions.

The paper's third challenge is memory capacity — Y and the intermediates
can exceed DRAM. Contraction is *linear in Y's non-zeros*:

    Z = X x (Y1 + Y2 + ...) = X x Y1 + X x Y2 + ...

so any partition of Y's non-zeros can be contracted part-by-part and the
partial outputs merged by coordinate-wise addition. Peak memory then
holds one Y partition (plus its HtY) instead of all of Y — the software
analogue of pushing Y to a slower tier.

Note the linearity argument requires the arithmetic semiring (the
default); merging with a different semiring would need the same add
operator and is intentionally not offered here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.core.dispatch import contract
from repro.core.plan import ContractionPlan
from repro.core.profile import RunProfile
from repro.core.result import ContractionResult
from repro.errors import ContractionError, ShapeError
from repro.tensor.coo import SparseTensor


def split_tensor(
    tensor: SparseTensor, parts: int
) -> Iterator[SparseTensor]:
    """Partition a tensor's non-zeros into ~equal contiguous chunks.

    Any partition is valid for :func:`contract_streaming`; contiguous
    row ranges keep each chunk's memory layout simple.
    """
    if parts <= 0:
        raise ShapeError(f"parts must be positive, got {parts}")
    nnz = tensor.nnz
    bounds = [nnz * i // parts for i in range(parts + 1)]
    for lo, hi in zip(bounds, bounds[1:]):
        yield SparseTensor(
            tensor.indices[lo:hi],
            tensor.values[lo:hi],
            tensor.shape,
            copy=False,
            validate=False,
        )


def merge_outputs(
    partials: Sequence[SparseTensor],
) -> SparseTensor:
    """Coordinate-wise sum of partial outputs (all same shape)."""
    if not partials:
        raise ContractionError("no partial outputs to merge")
    shape = partials[0].shape
    for p in partials[1:]:
        if p.shape != shape:
            raise ShapeError(
                f"partial shapes differ: {p.shape} vs {shape}"
            )
    return SparseTensor(
        np.concatenate([p.indices for p in partials]),
        np.concatenate([p.values for p in partials]),
        shape,
        copy=False,
        validate=False,
    ).coalesce()


def contract_streaming(
    x: SparseTensor,
    y_parts: Iterable[SparseTensor],
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    method: str = "vectorized",
    **kwargs,
) -> ContractionResult:
    """Contract X against Y delivered as a stream of partitions.

    Each partition is contracted independently (peak memory holds one
    partition's structures); partial outputs are merged by addition.
    The combined profile sums the per-part stage times and counters.
    """
    if "semiring" in kwargs:
        raise ContractionError(
            "contract_streaming requires the arithmetic semiring; "
            "partition merging relies on additivity"
        )
    partials: List[SparseTensor] = []
    merged = RunProfile(f"streaming_{method}")
    plan = None
    for part in y_parts:
        res = contract(x, part, cx, cy, method=method,
                       sort_output=False, **kwargs)
        plan = res.plan
        partials.append(res.tensor)
        for stage, seconds in res.profile.stage_seconds.items():
            merged.add_time(stage, seconds)
        for counter, value in res.profile.counters.items():
            merged.bump(counter, value)
        merged.bump("streaming_parts")
    if plan is None:
        raise ContractionError("y_parts yielded no partitions")
    z = merge_outputs(partials).sort()
    merged.counters["nnz_z"] = z.nnz
    return ContractionResult(z, merged, plan)
