"""Semiring contraction — generalized accumulate/multiply operators.

SpGEMM and SpTC generalize beyond (+, x): min-plus composes shortest
paths, max-plus composes capacities, boolean composes reachability. The
element-wise formulation adapts naturally — products combine with the
semiring's multiply, collisions on an output coordinate combine with its
add — so the vectorized engine supports any NumPy-ufunc semiring.

One semantic caveat, inherent to sparse data: absent coordinates are the
semiring's *zero*. For min-plus the zero is +inf, which sparse storage
cannot hold implicitly for "missing" operands — so, exactly as in sparse
min-plus matrix literature, a product exists only where *both* operands
have stored entries, and outputs keep only coordinates reached by at
least one product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """An accumulation structure for contraction.

    Attributes
    ----------
    add:
        Binary NumPy ufunc combining products that land on the same
        output coordinate (must support ``reduceat``).
    multiply:
        Binary NumPy ufunc combining an X value with a Y value.
    name:
        Label used in profiles.
    """

    add: np.ufunc
    multiply: np.ufunc
    name: str = "custom"

    def __post_init__(self) -> None:
        for attr in ("add", "multiply"):
            op = getattr(self, attr)
            if not isinstance(op, np.ufunc) or op.nin != 2:
                raise TypeError(
                    f"{attr} must be a binary numpy ufunc, got {op!r}"
                )


#: ordinary arithmetic (the default contraction)
ARITHMETIC = Semiring(np.add, np.multiply, "arithmetic")
#: shortest-path composition: lengths add, alternatives take the min
MIN_PLUS = Semiring(np.minimum, np.add, "min_plus")
#: longest-path / bottleneck composition
MAX_PLUS = Semiring(np.maximum, np.add, "max_plus")
#: reachability over {0, 1} values: and-multiply, or-accumulate
BOOLEAN = Semiring(np.maximum, np.multiply, "boolean")

SEMIRINGS = {
    s.name: s for s in (ARITHMETIC, MIN_PLUS, MAX_PLUS, BOOLEAN)
}
