"""Operand-keyed build caches for contraction sequences (paper §1).

Sparta is motivated by "a long sequence of tensor contractions", yet each
`contract` call historically rebuilt HtY from scratch even when Y was
unchanged between steps — exactly the redundant symbolic/build work the
workspace-reuse literature (Kjolstad et al.) says should be hoisted.

This module provides

* :class:`LRUCache` — a small thread-safe bounded LRU with hit/miss/
  eviction statistics;
* :class:`HtYCache` — an LRU of built
  :class:`~repro.hashtable.tensor_table.HashTensor` structures keyed by
  ``(tensor fingerprint, contract modes, num_buckets)``;
* :func:`cached_plan` — memoized :class:`ContractionPlan` creation (the
  plan depends only on operand shapes and modes);
* :func:`default_plan_cache` — a shared store for derived execution plans
  (e.g. CP-ALS MTTKRP scatter plans keyed by tensor fingerprint).

Cache keys are content digests, so a hit is only possible for an operand
whose non-zeros are byte-identical to the one the entry was built from —
reuse can never change results, only skip the O(nnz_Y) build.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Any, Hashable, Optional, Sequence, Tuple

from repro.core.plan import ContractionPlan
from repro.hashtable.tensor_table import HashTensor
from repro.tensor.coo import SparseTensor

#: sentinel distinguishing "missing" from a cached falsy value
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class LRUCache:
    """A bounded least-recently-used mapping with statistics.

    Thread-safe: the parallel executor's workers may share one instance.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most-recent) or *default*."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.stats.hits += 1
                return self._data[key]
            self.stats.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh *key*, evicting the least-recent entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats = CacheStats()


class HtYCache:
    """Bounded LRU of built HtY structures keyed by operand content.

    The key is ``(y.fingerprint(), contract modes, num_buckets)`` — a hit
    requires byte-identical non-zeros, the same contraction modes and the
    same bucket configuration, so a cached HtY is interchangeable with a
    fresh build. Bounded (default 8 entries) because each entry pins the
    full HtY (O(nnz_Y) bytes) in memory.
    """

    def __init__(self, maxsize: int = 8) -> None:
        self._lru = LRUCache(maxsize)

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    @staticmethod
    def key_for(
        y: SparseTensor,
        contract_modes: Sequence[int],
        num_buckets: Optional[int],
    ) -> Tuple:
        return (
            y.fingerprint(),
            tuple(int(m) for m in contract_modes),
            None if num_buckets is None else int(num_buckets),
        )

    def get_or_build(
        self,
        y: SparseTensor,
        contract_modes: Sequence[int],
        *,
        num_buckets: Optional[int] = None,
    ) -> Tuple[HashTensor, bool]:
        """Return ``(hty, hit)`` — a cached HtY or a fresh build."""
        key = self.key_for(y, contract_modes, num_buckets)
        hty = self._lru.get(key, _MISSING)
        if hty is not _MISSING:
            # A shared-memory-backed HtY (HashTensor.shared) is a view
            # of blocks whose lifetime belongs to a process pool; once
            # the pool unlinks them the view dangles. Such entries must
            # never be served from the cache — rebuild and replace.
            if getattr(hty, "shared", False):
                hty = _MISSING
            else:
                return hty, True
        hty = HashTensor.from_coo(
            y,
            contract_modes,
            num_buckets=num_buckets,
            source_fingerprint=key[0],
        )
        self._lru.put(key, hty)
        return hty, False

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()


#: process-wide cache used by ``contract(..., use_hty_cache=True)``
_DEFAULT_HTY_CACHE = HtYCache()


def default_hty_cache() -> HtYCache:
    """The shared process-wide :class:`HtYCache`."""
    return _DEFAULT_HTY_CACHE


# ----------------------------------------------------------------------
# ContractionPlan cache — the plan depends only on shapes and modes
# ----------------------------------------------------------------------
_PLAN_CACHE = LRUCache(maxsize=256)


def cached_plan(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
) -> ContractionPlan:
    """Memoized :meth:`ContractionPlan.create`.

    The plan is a pure function of ``(x.shape, y.shape, cx, cy)``, so
    repeated contractions with the same signature (every step of CP-ALS,
    every iteration of a contraction sequence) reuse the frozen plan.
    Invalid mode combinations raise as usual and are never cached.
    """
    key = (
        tuple(x.shape),
        tuple(y.shape),
        tuple(int(m) for m in cx),
        tuple(int(m) for m in cy),
    )
    plan = _PLAN_CACHE.get(key, _MISSING)
    if plan is _MISSING:
        plan = ContractionPlan.create(x, y, cx, cy)
        _PLAN_CACHE.put(key, plan)
    return plan


def plan_cache_stats() -> CacheStats:
    """Statistics of the shared :func:`cached_plan` memo."""
    return _PLAN_CACHE.stats


# ----------------------------------------------------------------------
# derived execution plans (e.g. CP-ALS MTTKRP scatter plans)
# ----------------------------------------------------------------------
_AUX_PLAN_CACHE = LRUCache(maxsize=64)


def default_plan_cache() -> LRUCache:
    """Shared store for derived per-operand execution plans.

    Keys are caller-chosen tuples that must include a content
    fingerprint (e.g. ``("mttkrp", tensor.fingerprint(), mode)``) so a
    stale plan can never be applied to different data.
    """
    return _AUX_PLAN_CACHE
