"""Contraction planning: mode validation and output-shape computation.

A contraction ``Z = X ×_{Cx}^{Cy} Y`` (paper §2.2) pairs contract mode
``Cx[i]`` of X with ``Cy[i]`` of Y; paired modes must have equal extents.
The output's modes are X's free modes (in X's order) followed by Y's free
modes (in Y's order):  ``N_Z = (N_X - |C_X|) + (N_Y - |C_Y|)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ContractionError
from repro.tensor.coo import SparseTensor
from repro.utils.validation import check_modes


@dataclass(frozen=True)
class ContractionPlan:
    """Validated description of one contraction."""

    x_shape: Tuple[int, ...]
    y_shape: Tuple[int, ...]
    cx: Tuple[int, ...]  #: contract modes of X, paired with cy by position
    cy: Tuple[int, ...]
    fx: Tuple[int, ...]  #: free modes of X, ascending
    fy: Tuple[int, ...]  #: free modes of Y, ascending

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        x: SparseTensor,
        y: SparseTensor,
        cx: Sequence[int],
        cy: Sequence[int],
    ) -> "ContractionPlan":
        """Validate modes/extents and derive free modes.

        Raises :class:`ContractionError` for mismatched mode counts,
        mismatched extents, or degenerate contractions (no contract modes,
        or no free modes on either side — the output would be a scalar or
        a tensor-times-all-of-itself case the engines don't model).
        """
        cx = check_modes(cx, x.order, "cx")
        cy = check_modes(cy, y.order, "cy")
        if len(cx) != len(cy):
            raise ContractionError(
                f"|Cx| = {len(cx)} but |Cy| = {len(cy)}; contract modes "
                "must pair one-to-one"
            )
        if len(cx) == 0:
            raise ContractionError(
                "no contract modes: use an outer product routine instead"
            )
        for mx, my in zip(cx, cy):
            if x.shape[mx] != y.shape[my]:
                raise ContractionError(
                    f"contract pair (X mode {mx}, Y mode {my}) has "
                    f"extents {x.shape[mx]} != {y.shape[my]}"
                )
        fx = tuple(m for m in range(x.order) if m not in cx)
        fy = tuple(m for m in range(y.order) if m not in cy)
        if not fx:
            raise ContractionError(
                "X has no free modes; transpose the expression so the "
                "fully-contracted operand is Y, or use a dense dot"
            )
        if not fy:
            raise ContractionError("Y has no free modes")
        return cls(x.shape, y.shape, tuple(cx), tuple(cy), fx, fy)

    # ------------------------------------------------------------------
    @property
    def num_contract(self) -> int:
        """|Cx| = |Cy|, the paper's "n-mode" count."""
        return len(self.cx)

    @property
    def out_shape(self) -> Tuple[int, ...]:
        """Output shape: X free extents then Y free extents."""
        return tuple(self.x_shape[m] for m in self.fx) + tuple(
            self.y_shape[m] for m in self.fy
        )

    @property
    def out_order(self) -> int:
        """N_Z = |Fx| + |Fy|."""
        return len(self.fx) + len(self.fy)

    @property
    def contract_dims(self) -> Tuple[int, ...]:
        """Extents of the contracted modes (shared by X and Y)."""
        return tuple(self.x_shape[m] for m in self.cx)

    @property
    def fx_dims(self) -> Tuple[int, ...]:
        """Extents of X's free modes."""
        return tuple(self.x_shape[m] for m in self.fx)

    @property
    def fy_dims(self) -> Tuple[int, ...]:
        """Extents of Y's free modes."""
        return tuple(self.y_shape[m] for m in self.fy)

    # ------------------------------------------------------------------
    def x_mode_order(self) -> Tuple[int, ...]:
        """"Correct mode order" for X (§3.1): free modes then contract."""
        return self.fx + self.cx

    def y_mode_order(self) -> Tuple[int, ...]:
        """"Correct mode order" for Y (§3.1): contract modes then free."""
        return self.cy + self.fy

    def swapped(self) -> "ContractionPlan":
        """The plan with X and Y exchanged (for the larger-as-Y rule §3.3).

        The swapped contraction computes Z' with mode order (Fy, Fx); the
        caller must permute the output back with
        :meth:`swap_output_permutation`.
        """
        return ContractionPlan(
            self.y_shape, self.x_shape, self.cy, self.cx, self.fy, self.fx
        )

    def swap_output_permutation(self) -> Tuple[int, ...]:
        """Mode order that maps the swapped output (Fy, Fx) back to (Fx, Fy)."""
        nfy = len(self.fy)
        nfx = len(self.fx)
        return tuple(range(nfy, nfy + nfx)) + tuple(range(nfy))
