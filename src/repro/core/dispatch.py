"""Public contraction API.

``contract(x, y, cx, cy)`` runs the requested engine and returns a
:class:`~repro.core.result.ContractionResult`. Engine names:

========== =============================================================
``sparta``      HtY + HtA, the paper's contribution (default)
``coo_hta``     sorted-COO Y + HtA (Figure 4's middle bar)
``spa``         sorted-COO Y + SPA, Algorithm 1 baseline
``vectorized``  NumPy group-merge engine (fast path for large inputs)
``dense``       ``tensordot`` reference (small inputs only)
``parallel``    multi-worker Sparta (§3.5): ``threads=N`` workers on
                ``backend="thread"`` or ``"process"`` (shared-memory
                worker processes; measures real multi-core scaling)
========== =============================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.core.dense_ref import dense_contract
from repro.core.htycache import default_hty_cache
from repro.core.result import ContractionResult
from repro.core.sparta import sparta
from repro.core.sptc_hta import sptc_coo_hta
from repro.core.sptc_spa import sptc_spa
from repro.core.vectorized import vectorized_contract
from repro.errors import ContractionError
from repro.obs.tracer import CAT_CONTRACTION, Tracer
from repro.tensor.coo import SparseTensor

def _parallel_engine(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    sort_output: bool = True,
    **kwargs,
) -> ContractionResult:
    """Engine adapter for :func:`repro.parallel.parallel_sparta`.

    Imported lazily to keep the parallel layer optional at import time;
    per-worker statistics remain available through the profile counters
    (use :func:`repro.parallel.parallel_sparta` directly for the full
    :class:`~repro.parallel.ParallelResult`).
    """
    from repro.parallel.executor import parallel_sparta

    return parallel_sparta(
        x, y, cx, cy, sort_output=sort_output, **kwargs
    ).result


_ENGINES: Dict[str, Callable[..., ContractionResult]] = {
    "sparta": sparta,
    "coo_hta": sptc_coo_hta,
    "spa": sptc_spa,
    "vectorized": vectorized_contract,
    "dense": dense_contract,
    "parallel": _parallel_engine,
}

#: engines whose implementations accept ``tracer=`` and emit stage spans;
#: the rest get a single root span from the dispatcher instead.
_TRACED_ENGINES = frozenset({"sparta", "coo_hta", "spa", "parallel"})


def engines() -> tuple[str, ...]:
    """Names accepted by :func:`contract`'s ``method`` argument."""
    return tuple(_ENGINES)


def _contract_auto(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    method: str,
    sort_output: bool,
    use_hty_cache: bool,
    tracer: Optional[Tracer],
    memory_budget=None,
    spill_root: Optional[str] = None,
    **kwargs,
) -> ContractionResult:
    """``plan="auto"``: cost-model schedule choice, then dispatch.

    The planner (:mod:`repro.planner`) picks the engine (fused serial /
    thread / process), worker count and stage strategies from O(1)
    operand statistics. It may only change *which* engine runs — output
    and Table-2 traffic stay byte-identical to the explicit-knob
    configurations (the swap mode permutation is scored but never
    chosen; see :func:`repro.planner.enumerate_plans`). The decision is
    recorded as a ``plan`` span on the tracer,
    ``flags["planner"] = "auto:<engine>"`` and the
    ``planner_est_products``/``planner_candidates`` counters.
    """
    import time

    from repro.planner import plan_contraction

    if method not in ("sparta", "parallel"):
        raise ContractionError(
            f'plan="auto" plans the sparta-family schedule space; '
            f"method {method!r} is an explicit engine choice — drop "
            "plan= or use method='sparta'"
        )
    max_workers = kwargs.pop("max_workers", None)
    threads = kwargs.pop("threads", None)
    if threads is not None:
        max_workers = (
            int(threads) if max_workers is None
            else min(int(threads), int(max_workers))
        )
    t0 = time.perf_counter()
    decision = plan_contraction(
        x, y, cx, cy, max_workers=max_workers, sort_output=sort_output
    )
    t1 = time.perf_counter()
    if tracer is not None:
        tracer.add_span(
            "plan", start=t0, end=t1, cat=CAT_CONTRACTION,
            **decision.span_args(),
        )
    if use_hty_cache:
        kwargs.setdefault("hty_cache", default_hty_cache())
    chosen = decision.chosen
    if chosen.engine == "serial":
        if memory_budget is not None:
            from repro.ooc.engine import ooc_contract

            if kwargs.pop("hty_cache", None) is not None:
                raise ContractionError(
                    "memory_budget is incompatible with the HtY cache "
                    "on the serial engine; drop use_hty_cache or the "
                    "budget"
                )
            res = ooc_contract(
                x, y, cx, cy,
                memory_budget=memory_budget,
                spill_root=spill_root,
                sort_output=sort_output,
                swap_larger_to_y=False,
                tracer=tracer,
                **kwargs,
            )
        else:
            res = sparta(
                x, y, cx, cy,
                sort_output=sort_output,
                swap_larger_to_y=False,
                tracer=tracer,
                **kwargs,
            )
    else:
        from repro.parallel.executor import parallel_sparta

        res = parallel_sparta(
            x, y, cx, cy,
            threads=chosen.workers,
            backend=chosen.engine,
            parallel_stage1=chosen.parallel_stage1,
            merge_output=chosen.merge_output,
            sort_output=sort_output,
            planner="off",
            tracer=tracer,
            memory_budget=memory_budget,
            spill_root=spill_root,
            **kwargs,
        ).result
    res.profile.set_flag("planner", f"auto:{chosen.engine}")
    res.profile.counters["planner_est_products"] = (
        decision.stats.est_products
    )
    res.profile.counters["planner_candidates"] = len(decision.table)
    res.profile.counters["planner_workers"] = chosen.workers
    return res


def contract(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    method: str = "sparta",
    plan: Optional[str] = None,
    sort_output: bool = True,
    use_hty_cache: bool = False,
    tracer: Optional[Tracer] = None,
    memory_budget=None,
    spill_root: Optional[str] = None,
    **kwargs,
) -> ContractionResult:
    """Compute ``Z = X ×_{cx}^{cy} Y`` (paper Eq. 1).

    Parameters
    ----------
    x, y:
        Input sparse tensors.
    cx, cy:
        Contract modes, paired by position; ``x.shape[cx[i]]`` must equal
        ``y.shape[cy[i]]``.
    method:
        Engine name (see module docstring).
    plan:
        ``"auto"`` lets the cost-model planner (:mod:`repro.planner`)
        pick the schedule — engine (fused serial / thread / process),
        worker count (bounded by a ``max_workers=`` or ``threads=``
        keyword, default CPU count), stage-1/5 strategies — from O(1)
        operand statistics. Sparta-family methods only; output and
        Table-2 traffic are byte-identical to the explicit
        configurations. ``None``/``"off"`` (default) runs *method*
        exactly as given.
    sort_output:
        Run stage 5 (lexicographic sort of Z). The paper sorts by default
        "to get a thorough understanding of all stages".
    use_hty_cache:
        Reuse HtY builds across calls through the process-wide
        :func:`~repro.core.htycache.default_hty_cache` (sparta-family
        engines only). A
        hit requires a byte-identical Y, the same contract modes and the
        same bucket count, so results never change. Pass an explicit
        ``hty_cache=`` keyword instead for a private cache.
    tracer:
        Optional :class:`~repro.obs.Tracer`. The sparta-family and
        parallel engines emit their five stage spans (plus per-worker
        timelines for ``parallel``); the ``vectorized``/``dense``
        references get one root span, and ``plan="auto"`` prepends a
        ``plan`` span carrying the decision. ``None`` (the default)
        records nothing and adds no overhead.
    memory_budget:
        Hard cap on live contraction allocations — an int (bytes), a
        string like ``"512M"`` (see :func:`repro.ooc.parse_budget`) or a
        shared :class:`~repro.ooc.MemoryBudget`. When the planner's peak
        estimate exceeds the cap, execution goes out-of-core: fused
        chunks spill to mmap-readable run files and stage 5 becomes a
        streaming merge over them (:mod:`repro.ooc`). Results and
        Table-2 traffic stay byte-identical either way. Sparta-family
        methods only. ``None`` (default) never spills.
    spill_root:
        Directory for the run files of a spilling contraction (default
        the system temp dir). Created per run, removed on completion.
    kwargs:
        Engine-specific options (e.g. ``num_buckets`` for sparta,
        ``chunk_pairs`` for vectorized).
    """
    if plan not in (None, "off", "auto"):
        raise ContractionError(
            f"unknown plan {plan!r}; choose 'auto', 'off' or None"
        )
    if plan == "auto":
        return _contract_auto(
            x, y, cx, cy,
            method=method,
            sort_output=sort_output,
            use_hty_cache=use_hty_cache,
            tracer=tracer,
            memory_budget=memory_budget,
            spill_root=spill_root,
            **kwargs,
        )
    try:
        engine = _ENGINES[method]
    except KeyError:
        raise ContractionError(
            f"unknown method {method!r}; choose from {sorted(_ENGINES)}"
        ) from None
    if memory_budget is not None:
        if method == "sparta":
            if use_hty_cache or kwargs.get("hty_cache") is not None:
                raise ContractionError(
                    "memory_budget is incompatible with the HtY cache on "
                    "the serial engine (cached builds bypass budget "
                    "accounting); drop use_hty_cache or the budget"
                )
            from repro.ooc.engine import ooc_contract

            kwargs.setdefault("swap_larger_to_y", True)
            return ooc_contract(
                x, y, cx, cy,
                memory_budget=memory_budget,
                spill_root=spill_root,
                sort_output=sort_output,
                tracer=tracer,
                **kwargs,
            )
        if method != "parallel":
            raise ContractionError(
                f"memory_budget is only supported by the sparta-family "
                f"engines ('sparta', 'parallel'), not {method!r}"
            )
        kwargs["memory_budget"] = memory_budget
        kwargs["spill_root"] = spill_root
    if method == "sparta":
        kwargs.setdefault("swap_larger_to_y", True)
    if method in ("sparta", "parallel"):
        if use_hty_cache:
            kwargs.setdefault("hty_cache", default_hty_cache())
    elif use_hty_cache:
        raise ContractionError(
            f"use_hty_cache is only supported by the sparta-family "
            f"engines ('sparta', 'parallel'), not {method!r}"
        )
    if tracer is not None:
        if method in _TRACED_ENGINES:
            kwargs["tracer"] = tracer
        else:
            with tracer.span(method, cat=CAT_CONTRACTION, engine=method):
                return engine(
                    x, y, cx, cy, sort_output=sort_output, **kwargs
                )
    return engine(x, y, cx, cy, sort_output=sort_output, **kwargs)
