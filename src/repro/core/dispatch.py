"""Public contraction API.

``contract(x, y, cx, cy)`` runs the requested engine and returns a
:class:`~repro.core.result.ContractionResult`. Engine names:

========== =============================================================
``sparta``      HtY + HtA, the paper's contribution (default)
``coo_hta``     sorted-COO Y + HtA (Figure 4's middle bar)
``spa``         sorted-COO Y + SPA, Algorithm 1 baseline
``vectorized``  NumPy group-merge engine (fast path for large inputs)
``dense``       ``tensordot`` reference (small inputs only)
``parallel``    multi-worker Sparta (§3.5): ``threads=N`` workers on
                ``backend="thread"`` or ``"process"`` (shared-memory
                worker processes; measures real multi-core scaling)
========== =============================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.core.dense_ref import dense_contract
from repro.core.htycache import default_hty_cache
from repro.core.result import ContractionResult
from repro.core.sparta import sparta
from repro.core.sptc_hta import sptc_coo_hta
from repro.core.sptc_spa import sptc_spa
from repro.core.vectorized import vectorized_contract
from repro.errors import ContractionError
from repro.obs.tracer import CAT_CONTRACTION, Tracer
from repro.tensor.coo import SparseTensor

def _parallel_engine(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    sort_output: bool = True,
    **kwargs,
) -> ContractionResult:
    """Engine adapter for :func:`repro.parallel.parallel_sparta`.

    Imported lazily to keep the parallel layer optional at import time;
    per-worker statistics remain available through the profile counters
    (use :func:`repro.parallel.parallel_sparta` directly for the full
    :class:`~repro.parallel.ParallelResult`).
    """
    from repro.parallel.executor import parallel_sparta

    return parallel_sparta(
        x, y, cx, cy, sort_output=sort_output, **kwargs
    ).result


_ENGINES: Dict[str, Callable[..., ContractionResult]] = {
    "sparta": sparta,
    "coo_hta": sptc_coo_hta,
    "spa": sptc_spa,
    "vectorized": vectorized_contract,
    "dense": dense_contract,
    "parallel": _parallel_engine,
}

#: engines whose implementations accept ``tracer=`` and emit stage spans;
#: the rest get a single root span from the dispatcher instead.
_TRACED_ENGINES = frozenset({"sparta", "coo_hta", "spa", "parallel"})


def engines() -> tuple[str, ...]:
    """Names accepted by :func:`contract`'s ``method`` argument."""
    return tuple(_ENGINES)


def contract(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    method: str = "sparta",
    sort_output: bool = True,
    use_hty_cache: bool = False,
    tracer: Optional[Tracer] = None,
    **kwargs,
) -> ContractionResult:
    """Compute ``Z = X ×_{cx}^{cy} Y`` (paper Eq. 1).

    Parameters
    ----------
    x, y:
        Input sparse tensors.
    cx, cy:
        Contract modes, paired by position; ``x.shape[cx[i]]`` must equal
        ``y.shape[cy[i]]``.
    method:
        Engine name (see module docstring).
    sort_output:
        Run stage 5 (lexicographic sort of Z). The paper sorts by default
        "to get a thorough understanding of all stages".
    use_hty_cache:
        Reuse HtY builds across calls through the process-wide
        :func:`~repro.core.htycache.default_hty_cache` (sparta-family
        engines only). A
        hit requires a byte-identical Y, the same contract modes and the
        same bucket count, so results never change. Pass an explicit
        ``hty_cache=`` keyword instead for a private cache.
    tracer:
        Optional :class:`~repro.obs.Tracer`. The sparta-family and
        parallel engines emit their five stage spans (plus per-worker
        timelines for ``parallel``); the ``vectorized``/``dense``
        references get one root span. ``None`` (the default) records
        nothing and adds no overhead.
    kwargs:
        Engine-specific options (e.g. ``num_buckets`` for sparta,
        ``chunk_pairs`` for vectorized).
    """
    try:
        engine = _ENGINES[method]
    except KeyError:
        raise ContractionError(
            f"unknown method {method!r}; choose from {sorted(_ENGINES)}"
        ) from None
    if method == "sparta":
        kwargs.setdefault("swap_larger_to_y", True)
    if method in ("sparta", "parallel"):
        if use_hty_cache:
            kwargs.setdefault("hty_cache", default_hty_cache())
    elif use_hty_cache:
        raise ContractionError(
            f"use_hty_cache is only supported by the sparta-family "
            f"engines ('sparta', 'parallel'), not {method!r}"
        )
    if tracer is not None:
        if method in _TRACED_ENGINES:
            kwargs["tracer"] = tracer
        else:
            with tracer.span(method, cat=CAT_CONTRACTION, engine=method):
                return engine(
                    x, y, cx, cy, sort_output=sort_output, **kwargs
                )
    return engine(x, y, cx, cy, sort_output=sort_output, **kwargs)
