"""Fully vectorized SpTC engine (sorted group-merge + reduceat).

This engine plays the role the C implementation plays in the original
Sparta repository: a fast path for large tensors. It is *algorithmically*
Sparta — group Y by contract key, O(log) key lookup instead of hashing,
accumulate partial products by key — but every step is a NumPy array
operation, so Python-level loops disappear:

1. LN-compress X and Y indices (contract and free parts separately);
2. group Y by contract key (argsort + boundaries);
3. match every X non-zero to its Y group (``searchsorted``);
4. expand all (x nz, y nz) product pairs with ``repeat``-arithmetic;
5. accumulate by combined output key (``np.unique`` + ``bincount``).

The expansion is chunked so peak memory stays bounded for adversarial
inputs where ``nnz_X x avg_group`` is huge.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.common import coo_row_bytes, expand_ranges as _expand_ranges
from repro.core.semiring import ARITHMETIC, Semiring
from repro.core.plan import ContractionPlan
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import delinearize, linearize, ln_capacity
from repro.types import INDEX_DTYPE, VALUE_DTYPE

ENGINE_NAME = "vectorized"

_INT64_MAX = np.iinfo(np.int64).max


def _accumulate(
    keys: np.ndarray, vals: np.ndarray, semiring: Semiring
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine values sharing a key with the semiring's add."""
    if keys.size == 0:
        return keys, vals
    if semiring.add is np.add:
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.bincount(
            inverse, weights=vals, minlength=uniq.shape[0]
        ).astype(VALUE_DTYPE)
        return uniq, sums
    order = np.argsort(keys, kind="stable")
    k_sorted = keys[order]
    v_sorted = vals[order]
    starts = np.flatnonzero(
        np.concatenate(([True], k_sorted[1:] != k_sorted[:-1]))
    )
    return k_sorted[starts], semiring.add.reduceat(v_sorted, starts)


def vectorized_contract(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    sort_output: bool = True,
    chunk_pairs: int = 4_000_000,
    semiring: Semiring = ARITHMETIC,
    output_cutoff: float = 0.0,
) -> ContractionResult:
    """Contract ``x`` and ``y`` with the vectorized engine.

    ``chunk_pairs`` caps how many (x, y) product pairs are materialized at
    once; larger values trade memory for fewer accumulation rounds.
    ``semiring`` swaps the accumulate/multiply operators (min-plus,
    boolean, ...; see :mod:`repro.core.semiring`). ``output_cutoff``
    drops output magnitudes at or below the threshold before writeback —
    the quantum-chemistry truncation applied where it is cheapest.
    """
    plan = ContractionPlan.create(x, y, cx, cy)
    profile = RunProfile(ENGINE_NAME)
    clock = time.perf_counter

    # ---------------- stage 1: input processing ----------------------
    t0 = clock()
    fx_ln = linearize(x.indices[:, plan.fx], plan.fx_dims)
    cx_ln = linearize(x.indices[:, plan.cx], plan.contract_dims)
    cy_ln = linearize(y.indices[:, plan.cy], plan.contract_dims)
    fy_ln = linearize(y.indices[:, plan.fy], plan.fy_dims)
    order = np.argsort(cy_ln, kind="stable")
    cy_sorted = cy_ln[order]
    fy_sorted = fy_ln[order]
    yv_sorted = y.values[order]
    if y.nnz:
        boundaries = np.flatnonzero(
            np.concatenate(([True], cy_sorted[1:] != cy_sorted[:-1]))
        )
    else:
        boundaries = np.empty(0, dtype=np.int64)
    group_keys = cy_sorted[boundaries]
    group_ptr = np.concatenate((boundaries, [y.nnz])).astype(np.int64)
    profile.add_time(Stage.INPUT_PROCESSING, clock() - t0)
    profile.counters["nnz_x"] = x.nnz
    profile.counters["nnz_y"] = y.nnz
    profile.counters["hty_groups"] = int(group_keys.shape[0])
    profile.note_object_bytes(DataObject.X, x.nnz * coo_row_bytes(x.order))
    profile.note_object_bytes(DataObject.Y, y.nnz * coo_row_bytes(y.order))

    # ---------------- stage 2: index search --------------------------
    t0 = clock()
    pos = np.searchsorted(group_keys, cx_ln)
    pos_clipped = np.minimum(pos, max(group_keys.shape[0] - 1, 0))
    matched = (
        (group_keys[pos_clipped] == cx_ln)
        if group_keys.size
        else np.zeros(x.nnz, dtype=bool)
    )
    mrows = np.flatnonzero(matched)
    groups = pos_clipped[mrows]
    lens = (group_ptr[groups + 1] - group_ptr[groups]).astype(np.int64)
    profile.add_time(Stage.INDEX_SEARCH, clock() - t0)
    profile.bump("search_probes", x.nnz)

    # ---------------- stage 3: accumulation (chunked) ----------------
    fx_capacity = ln_capacity(plan.fx_dims)
    fy_capacity = ln_capacity(plan.fy_dims)
    combined_ok = fx_capacity <= _INT64_MAX // max(fy_capacity, 1)

    t0 = clock()
    part_keys: list[np.ndarray] = []
    part_fx: list[np.ndarray] = []
    part_fy: list[np.ndarray] = []
    part_vals: list[np.ndarray] = []
    products = 0

    cuts = _chunk_cuts(lens, chunk_pairs)
    for lo, hi in cuts:
        rows = mrows[lo:hi]
        grp = groups[lo:hi]
        ln = lens[lo:hi]
        starts = group_ptr[grp]
        gather = _expand_ranges(starts, ln)
        products += int(gather.shape[0])
        vals = semiring.multiply(
            np.repeat(x.values[rows], ln), yv_sorted[gather]
        )
        fy_keys = fy_sorted[gather]
        fx_keys = np.repeat(fx_ln[rows], ln)
        if combined_ok:
            zkeys = fx_keys * fy_capacity + fy_keys
            uniq, sums = _accumulate(zkeys, vals, semiring)
            part_keys.append(uniq)
            part_vals.append(sums.astype(VALUE_DTYPE))
        else:
            perm = np.lexsort((fy_keys, fx_keys))
            fx_s, fy_s, v_s = fx_keys[perm], fy_keys[perm], vals[perm]
            new = np.concatenate(
                ([True], (fx_s[1:] != fx_s[:-1]) | (fy_s[1:] != fy_s[:-1]))
            )
            starts2 = np.flatnonzero(new)
            part_fx.append(fx_s[starts2])
            part_fy.append(fy_s[starts2])
            part_vals.append(semiring.add.reduceat(v_s, starts2))
    profile.bump("products", products)
    profile.bump("accum_probes", products)

    # merge partial accumulations across chunks
    if combined_ok:
        if part_keys:
            all_keys = np.concatenate(part_keys)
            all_vals = np.concatenate(part_vals)
            uniq, sums = _accumulate(all_keys, all_vals, semiring)
            z_fx = (uniq // fy_capacity).astype(INDEX_DTYPE)
            z_fy = (uniq % fy_capacity).astype(INDEX_DTYPE)
            z_vals = sums.astype(VALUE_DTYPE)
        else:
            z_fx = np.empty(0, dtype=INDEX_DTYPE)
            z_fy = np.empty(0, dtype=INDEX_DTYPE)
            z_vals = np.empty(0, dtype=VALUE_DTYPE)
    else:
        if part_fx:
            fx_all = np.concatenate(part_fx)
            fy_all = np.concatenate(part_fy)
            v_all = np.concatenate(part_vals)
            perm = np.lexsort((fy_all, fx_all))
            fx_s, fy_s, v_s = fx_all[perm], fy_all[perm], v_all[perm]
            new = np.concatenate(
                ([True], (fx_s[1:] != fx_s[:-1]) | (fy_s[1:] != fy_s[:-1]))
            )
            starts2 = np.flatnonzero(new)
            z_fx = fx_s[starts2].astype(INDEX_DTYPE)
            z_fy = fy_s[starts2].astype(INDEX_DTYPE)
            z_vals = semiring.add.reduceat(v_s, starts2).astype(
                VALUE_DTYPE
            )
        else:
            z_fx = np.empty(0, dtype=INDEX_DTYPE)
            z_fy = np.empty(0, dtype=INDEX_DTYPE)
            z_vals = np.empty(0, dtype=VALUE_DTYPE)
    if output_cutoff > 0.0 and z_vals.size:
        keep = np.abs(z_vals) > output_cutoff
        z_fx, z_fy, z_vals = z_fx[keep], z_fy[keep], z_vals[keep]
    profile.add_time(Stage.ACCUMULATION, clock() - t0)
    if semiring.name != "arithmetic":
        profile.counters["semiring"] = 1

    # ---------------- stage 4: writeback -----------------------------
    t0 = clock()
    nfx = len(plan.fx)
    indices = np.empty((z_fx.shape[0], plan.out_order), dtype=INDEX_DTYPE)
    if z_fx.shape[0]:
        indices[:, :nfx] = delinearize(z_fx, plan.fx_dims)
        indices[:, nfx:] = delinearize(z_fy, plan.fy_dims)
    z = SparseTensor(
        indices, z_vals, plan.out_shape, copy=False, validate=False
    )
    profile.add_time(Stage.WRITEBACK, clock() - t0)
    profile.counters["nnz_z"] = z.nnz
    rowb = coo_row_bytes(plan.out_order)
    profile.note_object_bytes(DataObject.Z, z.nnz * rowb)
    profile.note_object_bytes(DataObject.Z_LOCAL, z.nnz * rowb)
    profile.record_traffic(
        DataObject.Z, Stage.WRITEBACK, AccessKind.WRITE,
        AccessPattern.SEQUENTIAL, z.nnz * rowb,
    )

    # ---------------- stage 5: output sorting -------------------------
    # Accumulation keys were (fx, fy)-major, so the output is already in
    # lexicographic order; the sort is a verification no-op kept for stage
    # accounting parity with the looped engines.
    if sort_output:
        t0 = clock()
        z = z.sort()
        profile.add_time(Stage.OUTPUT_SORTING, clock() - t0)
    return ContractionResult(z, profile, plan)


def _chunk_cuts(
    lens: np.ndarray, chunk_pairs: int
) -> list[Tuple[int, int]]:
    """Split matched X rows into slices of at most ~chunk_pairs products.

    A single row whose group is larger than *chunk_pairs* still gets its
    own slice (it cannot be split without splitting a Y group).
    """
    n = lens.shape[0]
    if n == 0:
        return []
    cum = np.cumsum(lens)
    cuts: list[Tuple[int, int]] = []
    lo = 0
    base = 0
    while lo < n:
        hi = int(np.searchsorted(cum, base + chunk_pairs, side="right"))
        if hi <= lo:
            hi = lo + 1  # oversized single group gets its own chunk
        cuts.append((lo, hi))
        base = int(cum[hi - 1])
        lo = hi
    return cuts
