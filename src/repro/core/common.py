"""Shared machinery of the three paper engines.

All of SpTC-SPA, COOY+HtA and Sparta share stage 1 (input processing of X),
the sub-tensor outer loop structure, stage 4's Z_local layout and stage 5
(output sorting). This module implements those pieces once, plus the
traffic accounting that feeds the heterogeneous-memory simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.plan import ContractionPlan
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import Stage
from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import delinearize, linearize
from repro.types import INDEX_DTYPE, VALUE_DTYPE

#: bytes per COO non-zero of an order-N tensor (N int64 indices + 1 float64)
def coo_row_bytes(order: int) -> int:
    """Storage bytes of one COO non-zero for an order-*order* tensor."""
    return 8 * order + 8


#: bytes per hash-table entry: key + chain pointer + payload pointer/value
HT_ENTRY_BYTES = 24


def expand_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s+l)`` for each (s, l) pair, vectorized."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.repeat(
        starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens
    )
    return out + np.arange(total, dtype=np.int64)


def _sort_passes(n: int) -> float:
    """Data-movement passes charged for a sort.

    Quicksort makes ~log2(n) comparison passes but they touch cached
    partitions; the memory-visible movement is ~one full pass (read the
    unsorted array, write the sorted permutation). The paper's
    input/output-processing stages are <1% of SpTC time, consistent with
    pass-level (not log-factor) traffic.
    """
    return 1.0


@dataclass
class PreparedX:
    """X after stage 1: permuted to (Fx, Cx) order and sorted.

    ``ptr`` delimits the mode-Fx sub-tensors (Algorithm 2's ``ptr_F``);
    ``fx_rows`` holds each sub-tensor's free indices (one row per
    sub-tensor); ``cx_ln`` holds the LN contract key of every non-zero.
    """

    ptr: np.ndarray
    fx_rows: np.ndarray
    cx_ln: np.ndarray
    values: np.ndarray

    @property
    def num_subtensors(self) -> int:
        """N_F, the outer-loop trip count."""
        return int(self.ptr.shape[0] - 1)


def prepare_x(
    x: SparseTensor,
    plan: ContractionPlan,
    profile: RunProfile,
    *,
    x_format: str = "coo",
) -> PreparedX:
    """Stage 1 for X: permute to "correct mode order", sort, group.

    Permutation is a pointer exchange (free); sorting is the
    O(nnz_X log nnz_X) term of Eqs. (3)/(4).

    ``x_format="hicoo"`` stores X in HiCOO blocks (the paper's stated
    follow-up: "will adopt a more compressed format for the sparse
    tensor X"). The computation is unchanged — HiCOO expands to the
    same sorted stream — but X's footprint and stage-1/2 traffic shrink
    by the measured compression ratio, which the memory experiments see.
    """
    nfx = len(plan.fx)
    xp = x.permute(plan.x_mode_order()).sort()
    ptr = xp.fiber_pointers(nfx)
    fx_rows = xp.indices[ptr[:-1], :nfx]
    cx_ln = linearize(xp.indices[:, nfx:], plan.contract_dims)
    rowb = coo_row_bytes(x.order)
    profile.counters["nnz_x"] = x.nnz
    x_bytes = x.nnz * rowb
    if x_format == "hicoo":
        from repro.tensor.hicoo import HiCOOTensor

        hic = HiCOOTensor.from_coo(xp)
        x_bytes = hic.nbytes
        profile.counters["x_compression_x1000"] = int(
            hic.compression_ratio() * 1000
        )
    elif x_format != "coo":
        raise ShapeError(f"unknown x_format {x_format!r}")
    profile.note_object_bytes(DataObject.X, x_bytes)
    sort_bytes = int(x_bytes * _sort_passes(x.nnz))
    profile.record_traffic(
        DataObject.X, Stage.INPUT_PROCESSING, AccessKind.READ,
        AccessPattern.RANDOM, sort_bytes,
    )
    profile.record_traffic(
        DataObject.X, Stage.INPUT_PROCESSING, AccessKind.WRITE,
        AccessPattern.RANDOM, sort_bytes,
    )
    return PreparedX(ptr, fx_rows, cx_ln, xp.values)


@dataclass
class SortedY:
    """Y after SpTC-SPA's stage 1: permuted to (Cy, Fy) order and sorted.

    ``group_keys[g]`` is the LN contract key of sub-tensor *g*, which
    occupies ``group_ptr[g]:group_ptr[g+1]`` of ``free_ln``/``values``.
    ``nz_keys`` holds the contract key of *every* non-zero: the baseline's
    index search "iterates non-zeros of Y until Y(i3, i4, :, :) is found",
    so each probe pays an O(nnz_Y) scan over this array.
    """

    group_keys: np.ndarray
    group_ptr: np.ndarray
    nz_keys: np.ndarray
    free_ln: np.ndarray
    values: np.ndarray
    #: extents of the free / contracted modes (in permuted order) — lets
    #: the codegen layer derive a kernel signature; empty tuples (the
    #: default, for hand-built instances) disable specialization
    free_dims: Tuple[int, ...] = ()
    contract_dims: Tuple[int, ...] = ()

    @property
    def num_groups(self) -> int:
        """Number of distinct contract-index sub-tensors."""
        return int(self.group_keys.shape[0])

    @property
    def nnz(self) -> int:
        """Stored non-zeros."""
        return int(self.nz_keys.shape[0])

    #: cap on the (batch x nnz) comparison matrix built at once
    _SCAN_BLOCK = 4_000_000

    def linear_search_many(
        self, keys: np.ndarray, profile: RunProfile
    ) -> np.ndarray:
        """Batched linear search: every key scans every Y non-zero.

        Genuine O(batch x nnz_Y) comparison work (blocked to bound
        temporaries) — Eq. 3's nnz_X x nnz_Y term, the cost HtY's O(1)
        lookup removes. Returns the group id per key, -1 where absent.
        """
        keys = np.asarray(keys, dtype=self.nz_keys.dtype)
        out = np.full(keys.shape[0], -1, dtype=np.int64)
        nnz = self.nnz
        profile.bump("search_probes", int(keys.shape[0]) * nnz)
        if nnz == 0 or keys.shape[0] == 0:
            return out
        block = max(1, self._SCAN_BLOCK // nnz)
        for lo in range(0, keys.shape[0], block):
            hi = min(lo + block, keys.shape[0])
            eq = keys[lo:hi, None] == self.nz_keys[None, :]
            any_hit = eq.any(axis=1)
            first_nz = eq.argmax(axis=1)[any_hit]
            # Map the first matching non-zero to its sub-tensor id.
            out[lo:hi][any_hit] = (
                np.searchsorted(self.group_ptr, first_nz, side="right") - 1
            )
        return out

    def binary_search_many(
        self, keys: np.ndarray, profile: RunProfile
    ) -> np.ndarray:
        """O(log num_groups)-per-probe search over the sorted group keys.

        This is what a CSF-style structure buys when the contract modes
        are the *leading* (root) modes: sorted order admits binary
        search. The ablation compares it against the linear scan and
        HtY's O(1) hash probe. Returns group ids, -1 where absent.
        """
        keys = np.asarray(keys, dtype=self.group_keys.dtype)
        out = np.full(keys.shape[0], -1, dtype=np.int64)
        n_groups = self.num_groups
        if n_groups == 0 or keys.shape[0] == 0:
            return out
        profile.bump(
            "search_probes",
            int(keys.shape[0])
            * max(int(np.ceil(np.log2(n_groups + 1))), 1),
        )
        pos = np.searchsorted(self.group_keys, keys)
        pos_c = np.minimum(pos, n_groups - 1)
        hit = self.group_keys[pos_c] == keys
        out[hit] = pos_c[hit]
        return out

    def linear_search(self, key: int, profile: RunProfile) -> Optional[int]:
        """Scan Y's non-zeros for *key*; O(nnz_Y) comparisons per probe."""
        hits = np.flatnonzero(self.nz_keys == key)
        profile.bump("search_probes", self.nnz)
        if hits.size:
            return int(
                np.searchsorted(self.group_ptr, hits[0], side="right") - 1
            )
        return None

    def group(self, g: int) -> Tuple[np.ndarray, np.ndarray]:
        """(free_ln, values) slice views of sub-tensor *g*."""
        s, e = int(self.group_ptr[g]), int(self.group_ptr[g + 1])
        return self.free_ln[s:e], self.values[s:e]


def prepare_y_sorted(
    y: SparseTensor, plan: ContractionPlan, profile: RunProfile
) -> SortedY:
    """Stage 1 for Y in the COO engines: permute+sort, then group.

    Costs the O(nnz_Y log nnz_Y) term of Eq. (3).
    """
    ncy = len(plan.cy)
    yp = y.permute(plan.y_mode_order()).sort()
    ptr = yp.fiber_pointers(ncy)
    nz_keys = linearize(yp.indices[:, :ncy], plan.contract_dims)
    ckeys = nz_keys[ptr[:-1]]
    fkeys = linearize(yp.indices[:, ncy:], plan.fy_dims)
    rowb = coo_row_bytes(y.order)
    profile.counters["nnz_y"] = y.nnz
    profile.note_object_bytes(DataObject.Y, y.nnz * rowb)
    sort_bytes = int(y.nnz * rowb * _sort_passes(y.nnz))
    profile.record_traffic(
        DataObject.Y, Stage.INPUT_PROCESSING, AccessKind.READ,
        AccessPattern.SEQUENTIAL, sort_bytes,
    )
    profile.record_traffic(
        DataObject.Y, Stage.INPUT_PROCESSING, AccessKind.WRITE,
        AccessPattern.RANDOM, sort_bytes,
    )
    return SortedY(
        ckeys,
        ptr,
        nz_keys,
        fkeys,
        yp.values,
        free_dims=tuple(plan.fy_dims),
        contract_dims=tuple(plan.contract_dims),
    )


class LocalOutput:
    """Z_local — a thread-local dynamic output buffer (paper §3.5).

    Collects per-sub-tensor writeback results as (free-X row, LN free-Y
    keys, values) triples; :func:`assemble_output` gathers all locals
    into Z.
    """

    def __init__(self) -> None:
        self.fx_rows: List[np.ndarray] = []
        self.fy_keys: List[np.ndarray] = []
        self.values: List[np.ndarray] = []
        self.nnz = 0

    def append(
        self, fx_row: np.ndarray, fy_keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Write back one sub-tensor's accumulator contents."""
        if fy_keys.shape[0] == 0:
            return
        self.fx_rows.append(fx_row)
        self.fy_keys.append(fy_keys)
        self.values.append(values)
        self.nnz += int(fy_keys.shape[0])

    def nbytes(self, nfx: int) -> int:
        """Approximate bytes held (per-entry fx row + fy key + value)."""
        return self.nnz * (8 * nfx + 8 + 8)


def assemble_output(
    locals_: List[LocalOutput],
    plan: ContractionPlan,
    profile: RunProfile,
    *,
    sort_output: bool,
) -> SparseTensor:
    """Stages 4-5 tail: gather Z_locals into Z, then sort (stage 5).

    Mirrors Algorithm 2 line 17: sizes are known only after the locals are
    complete, then all locals are copied out in one pass.
    """
    out_shape = plan.out_shape
    nfx = len(plan.fx)
    total = sum(loc.nnz for loc in locals_)
    indices = np.empty((total, plan.out_order), dtype=INDEX_DTYPE)
    values = np.empty(total, dtype=VALUE_DTYPE)
    pos = 0
    for loc in locals_:
        for fx_row, fy_keys, vals in zip(loc.fx_rows, loc.fy_keys, loc.values):
            n = fy_keys.shape[0]
            indices[pos : pos + n, :nfx] = fx_row
            indices[pos : pos + n, nfx:] = delinearize(fy_keys, plan.fy_dims)
            values[pos : pos + n] = vals
            pos += n
    z = SparseTensor(indices, values, out_shape, copy=False, validate=False)

    rowb = coo_row_bytes(plan.out_order)
    profile.bump("nnz_z", total)
    profile.note_object_bytes(DataObject.Z, total * rowb)
    zl_bytes = max((loc.nbytes(nfx) for loc in locals_), default=0)
    profile.note_object_bytes(DataObject.Z_LOCAL, zl_bytes)
    profile.record_traffic(
        DataObject.Z_LOCAL, Stage.WRITEBACK, AccessKind.READ,
        AccessPattern.SEQUENTIAL, total * rowb,
    )
    profile.record_traffic(
        DataObject.Z, Stage.WRITEBACK, AccessKind.WRITE,
        AccessPattern.SEQUENTIAL, total * rowb,
    )
    if sort_output:
        z = z.sort()
        sort_bytes = int(total * rowb * _sort_passes(total))
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.READ,
            AccessPattern.RANDOM, sort_bytes,
        )
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.WRITE,
            AccessPattern.RANDOM, sort_bytes,
        )
    return z
