"""Fused flat-batch SpTC kernels — stages 2-4 without the Python loop.

`looped_contract`'s ``granularity="subtensor"`` path historically drove one
Python iteration (and one fresh accumulator) per X sub-tensor, so runs with
many small fibers were dominated by interpreter overhead rather than the
paper's asymptotics. :func:`fused_compute` executes the same three stages
for *all* sub-tensors in one vectorized pass:

* one batched index search over all of X's contract keys (hash lookup,
  linear scan or binary search — unchanged probe accounting);
* one :func:`~repro.core.common.expand_ranges` gather of every partial
  product;
* segmented accumulation keyed by ``(fx_group, LN(Fy))`` via a stable
  ``np.lexsort`` + sequential segmented reduction (``np.bincount`` with
  weights; see the in-line note on why not ``np.add.reduceat``).

The hash-accumulator engines compute identical sums in identical order to
the per-element reference: ``np.add.at`` (element path), the per-sub-tensor
batched ``add_many`` and the fused weighted ``bincount`` all reduce
contributions in X-row-major order within each output key, so results are
bit-identical for coalesced inputs. The SPA engine is *not* fully vectorized on purpose: its
O(products x |SPA|) linear-search accumulation is the baseline quantity
Figure 4 measures, so only the search stage is fused and the genuine
:class:`~repro.hashtable.spa.SparseAccumulator` work is kept per sub-tensor.

Stage timers, operation counts and Table-2 traffic records are derived from
the measured counts, not from loop structure, so every experiment module
keeps working on fused profiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.codegen import (
    KernelCache,
    KernelSignature,
    codegen_enabled,
    default_kernel_cache,
)
from repro.core.common import HT_ENTRY_BYTES, coo_row_bytes, expand_ranges
from repro.core.plan import ContractionPlan
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import Stage
from repro.hashtable.chaining import default_num_buckets
from repro.hashtable.spa import SparseAccumulator
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import delinearize
from repro.types import INDEX_DTYPE, VALUE_DTYPE

#: cap on partial products materialized per fused chunk (same budget as the
#: vectorized engine); chunk cuts snap to sub-tensor boundaries so each
#: output key is reduced in a single ``reduceat`` segment
DEFAULT_CHUNK_PAIRS = 4_000_000

#: fraction of HtA probes served by CPU caches (thread-private, 10-50 MB
#: per thread on the paper's machine — partially LLC-resident)
HTA_CACHE_HIT = 0.5

#: minimum chunk density (products per output-fiber-space cell) at which
#: the generated kernel switches from sort-based reduction to the dense
#: workspace: below it the O(workspace) zero-fill/compaction dominates
DEFAULT_DENSE_THRESHOLD = 0.5

#: cap on dense-workspace cells per chunk (two int64/float64 arrays of
#: this length are allocated), keeping the workspace LLC-sized
DEFAULT_WORKSPACE_CAP = 1 << 22


def _codegen_resolved(codegen: Optional[bool]) -> bool:
    """Resolve a per-call ``codegen`` flag against the env kill-switch.

    ``None`` means "use generated kernels when available"; an explicit
    ``True``/``False`` is honored — except that ``REPRO_NO_CODEGEN``
    dominates everything, so one environment variable reverts the whole
    process to the generic fused kernel.
    """
    if codegen is None:
        return codegen_enabled()
    return bool(codegen) and codegen_enabled()


@dataclass
class FusedRange:
    """Stages 2-4 output for a contiguous range of X sub-tensors.

    ``out_fgrp`` holds the *absolute* sub-tensor id of every output
    non-zero (sorted ascending, ``(fgrp, fy)`` lexicographic); callers
    index ``px.fx_rows`` with it directly.
    """

    out_fgrp: np.ndarray
    out_fy: np.ndarray
    out_vals: np.ndarray
    products: int
    accum_probes: int
    #: largest per-sub-tensor distinct-output count (sizes the modeled HtA)
    max_group_output: int
    #: measured peak SparseAccumulator bytes (SPA engine only, else 0)
    spa_peak_bytes: int
    search_seconds: float
    accum_seconds: float

    @property
    def nnz(self) -> int:
        return int(self.out_fy.shape[0])


def hta_model_nbytes(
    max_distinct: int, accumulator_buckets: Optional[int] = None
) -> int:
    """Peak bytes of the per-sub-tensor :class:`HashAccumulator` the loop
    path would have allocated for its largest sub-tensor.

    Mirrors the accumulator's growth policy: bucket heads plus three
    entry arrays (key, next, value) at the next power-of-two capacity
    >= ``max_distinct`` (minimum 16).
    """
    num_buckets = accumulator_buckets or default_num_buckets(16)
    cap = 16
    while cap < max_distinct:
        cap *= 2
    return num_buckets * 8 + 3 * cap * 8


def _subtensor_chunks(
    fgrp: np.ndarray, lens: np.ndarray, chunk_pairs: int
) -> List[tuple]:
    """Cut the matched-row stream into chunks of ~*chunk_pairs* products,
    snapping each cut forward to the end of its sub-tensor so no output
    key spans two chunks (which would split its ``reduceat`` segment and
    change accumulation order)."""
    n = int(lens.shape[0])
    if n == 0:
        return []
    cum = np.cumsum(lens)
    cuts = []
    lo = 0
    base = 0
    while lo < n:
        hi = int(np.searchsorted(cum, base + chunk_pairs, side="right"))
        if hi <= lo:
            hi = lo + 1
        hi = int(np.searchsorted(fgrp, fgrp[hi - 1], side="right"))
        cuts.append((lo, hi))
        base = int(cum[hi - 1])
        lo = hi
    return cuts


def fused_compute(
    px,
    source,
    *,
    y_structure: str,
    accumulator: str,
    profile: RunProfile,
    accumulator_buckets: Optional[int] = None,
    lo: int = 0,
    hi: Optional[int] = None,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    codegen: Optional[bool] = None,
    dense_threshold: float = DEFAULT_DENSE_THRESHOLD,
    workspace_cap: int = DEFAULT_WORKSPACE_CAP,
    kernel_cache: Optional[KernelCache] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> FusedRange:
    """Run stages 2-4 for sub-tensors ``[lo, hi)`` in one flat batch.

    ``source`` is the searched Y structure — a
    :class:`~repro.hashtable.tensor_table.HashTensor` when ``y_structure
    == "hash"``, else a :class:`~repro.core.common.SortedY`. Probe
    counters (``search_probes``) are bumped on *profile* exactly as the
    per-sub-tensor loop would: the batched searches issue one call over
    all keys, which charges the identical total.

    ``codegen`` selects a per-signature generated kernel for the hash
    accumulator's chunk reduction (:mod:`repro.core.codegen`): ``None``
    uses it when the signature is derivable (and ``REPRO_NO_CODEGEN``
    is unset), ``False`` forces the generic path. The generated kernel
    is bit-identical to the generic one; only wall time changes.
    ``dense_threshold`` and ``workspace_cap`` gate its dense-workspace
    strategy — a chunk accumulates through a flat dense array when its
    product density reaches the threshold and the workspace fits the
    cap. All counter/probe/traffic accounting is identical either way.
    """
    if hi is None:
        hi = px.num_subtensors
    ptr = px.ptr
    s0, e0 = int(ptr[lo]), int(ptr[hi])
    keys = px.cx_ln[s0:e0]

    # ---- stage 2: one batched index search over every contract key ----
    t = clock()
    if y_structure == "hash":
        gids = source.lookup_many(keys)
        profile.bump("search_probes", int(keys.shape[0]))
    elif y_structure == "coo_bsearch":
        gids = source.binary_search_many(keys, profile)
    else:
        gids = source.linear_search_many(keys, profile)
    rows = np.flatnonzero(gids >= 0)
    grp = gids[rows]
    src_ptr = source.group_ptr
    starts = src_ptr[grp]
    lens = (src_ptr[grp + 1] - starts).astype(np.int64)
    # Absolute sub-tensor id of every matched X non-zero (ascending).
    fgrp = (
        np.searchsorted(ptr, s0 + rows, side="right") - 1
        if rows.size
        else np.empty(0, dtype=np.int64)
    )
    search_seconds = clock() - t

    xvals = px.values
    src_free = source.free_ln
    src_vals = source.values
    out_fgrp_parts: List[np.ndarray] = []
    out_fy_parts: List[np.ndarray] = []
    out_val_parts: List[np.ndarray] = []
    products = 0
    accum_probes = 0
    max_out = 0
    spa_peak = 0
    accum_seconds = 0.0

    if accumulator == "hash":
        # ---- stages 3-4 fused: gather, multiply, segmented reduce -----
        kern = None
        if _codegen_resolved(codegen):
            sig = KernelSignature.from_operands(px, source, accumulator)
            if sig is not None:
                cache = kernel_cache or default_kernel_cache()
                kern = cache.get_fused_kernel(sig, profile)
        for a, b in _subtensor_chunks(fgrp, lens, chunk_pairs):
            t = clock()
            gather = expand_ranges(starts[a:b], lens[a:b])
            search_seconds += clock() - t
            if gather.shape[0] == 0:
                continue
            t = clock()
            ln = lens[a:b]
            vals = np.repeat(xvals[s0 + rows[a:b]], ln) * src_vals[gather]
            fy = src_free[gather]
            seg = np.repeat(fgrp[a:b], ln)
            if kern is not None:
                # Specialized chunk reduction (dense workspace / packed
                # quicksort / lexsort fallback) — bit-identical to the
                # generic path below; see repro.core.codegen.templates.
                o_seg, o_fy, o_vals, strategy = kern(
                    vals, fy, seg, dense_threshold, workspace_cap
                )
                profile.bump(f"codegen_{strategy}_chunks")
            else:
                # Stable sort keyed (sub-tensor, LN(Fy)) keeps
                # contributions in X-row order within each output key —
                # the same order the per-element np.add.at reference
                # sums in.
                perm = np.lexsort((fy, seg))
                seg_s = seg[perm]
                fy_s = fy[perm]
                mask = np.concatenate(
                    (
                        [True],
                        (seg_s[1:] != seg_s[:-1])
                        | (fy_s[1:] != fy_s[:-1]),
                    )
                )
                boundary = np.flatnonzero(mask)
                o_seg = seg_s[boundary]
                o_fy = fy_s[boundary]
                # Segmented reduction via bincount on the segment ids:
                # its C loop adds strictly in array order, so each
                # output key sums its contributions left-to-right
                # exactly like the reference np.add.at (np.add.reduceat
                # would be ~2x faster here but pairwise-sums segments
                # >= 8 elements, breaking bit-parity).
                inv = np.cumsum(mask) - 1
                o_vals = np.bincount(
                    inv, weights=vals[perm], minlength=boundary.shape[0]
                )
            out_fgrp_parts.append(o_seg)
            out_fy_parts.append(o_fy)
            out_val_parts.append(o_vals)
            products += int(gather.shape[0])
            sub_bnd = np.flatnonzero(
                np.concatenate(([True], o_seg[1:] != o_seg[:-1]))
            )
            max_out = max(
                max_out,
                int(
                    np.diff(
                        np.append(sub_bnd, o_seg.shape[0])
                    ).max()
                ),
            )
            accum_seconds += clock() - t
        # A fresh HtA per sub-tensor batch-inserts into an empty table:
        # zero chain-walk probes, matching the loop path's accounting.
        accum_probes = 0
    else:
        # ---- SPA: fuse the search, keep the genuine accumulation ------
        # The SPA's linear-search cost over its unsorted key list is the
        # baseline behaviour (Algorithm 1); vectorizing it away would
        # erase the very overhead Figure 4 measures.
        sub_bnd = (
            np.flatnonzero(
                np.concatenate(([True], fgrp[1:] != fgrp[:-1]))
            )
            if rows.size
            else np.empty(0, dtype=np.int64)
        )
        sub_end = np.append(sub_bnd[1:], rows.shape[0])
        for i in range(sub_bnd.shape[0]):
            a, b = int(sub_bnd[i]), int(sub_end[i])
            t = clock()
            gather = expand_ranges(starts[a:b], lens[a:b])
            search_seconds += clock() - t
            if gather.shape[0] == 0:
                continue
            t = clock()
            acc = SparseAccumulator()
            prod_vals = (
                np.repeat(xvals[s0 + rows[a:b]], lens[a:b])
                * src_vals[gather]
            )
            acc.add_many(src_free[gather], prod_vals)
            keys_out, vals_out = acc.export()
            out_fgrp_parts.append(
                np.full(keys_out.shape[0], int(fgrp[a]), dtype=np.int64)
            )
            out_fy_parts.append(keys_out)
            out_val_parts.append(vals_out)
            products += int(gather.shape[0])
            accum_probes += acc.probes
            spa_peak = max(spa_peak, acc.nbytes)
            max_out = max(max_out, int(keys_out.shape[0]))
            accum_seconds += clock() - t

    return FusedRange(
        out_fgrp=_concat(out_fgrp_parts, np.int64),
        out_fy=_concat(out_fy_parts, INDEX_DTYPE),
        out_vals=_concat(out_val_parts, VALUE_DTYPE),
        products=products,
        accum_probes=accum_probes,
        max_group_output=max_out,
        spa_peak_bytes=spa_peak,
        search_seconds=search_seconds,
        accum_seconds=accum_seconds,
    )


def _concat(parts: List[np.ndarray], dtype) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    out = np.concatenate(parts)
    return out.astype(dtype, copy=False)


def assemble_fused(
    out_fgrp: np.ndarray,
    out_fy: np.ndarray,
    out_vals: np.ndarray,
    fx_rows: np.ndarray,
    plan: ContractionPlan,
    profile: RunProfile,
    *,
    zlocal_peak_bytes: Optional[int] = None,
    codegen: Optional[bool] = None,
    kernel_cache: Optional[KernelCache] = None,
) -> SparseTensor:
    """Vectorized stage-4 writeback with `assemble_output`'s accounting.

    ``zlocal_peak_bytes`` overrides the recorded Z_local object size for
    callers whose locals are per-thread (parallel executor); the default
    is the single-local size, identical to the serial loop path.
    ``codegen`` (same semantics as in :func:`fused_compute`) swaps the
    generic per-mode delinearization loop for an unrolled generated
    decoder with the strides folded in — identical integer arithmetic.
    """
    total = int(out_fy.shape[0])
    nfx = len(plan.fx)
    indices = np.empty((total, plan.out_order), dtype=INDEX_DTYPE)
    values = out_vals.astype(VALUE_DTYPE, copy=False)
    if total:
        indices[:, :nfx] = fx_rows[out_fgrp]
        if _codegen_resolved(codegen) and plan.fy_dims:
            cache = kernel_cache or default_kernel_cache()
            delin = cache.get_delinearizer(plan.fy_dims, profile)
            delin(
                out_fy.astype(INDEX_DTYPE, copy=False),
                indices[:, nfx:],
            )
        else:
            indices[:, nfx:] = delinearize(out_fy, plan.fy_dims)
    z = SparseTensor(
        indices, values, plan.out_shape, copy=False, validate=False
    )
    rowb = coo_row_bytes(plan.out_order)
    profile.bump("nnz_z", total)
    profile.note_object_bytes(DataObject.Z, total * rowb)
    zl_bytes = total * (8 * nfx + 16)
    profile.note_object_bytes(
        DataObject.Z_LOCAL,
        zl_bytes if zlocal_peak_bytes is None else zlocal_peak_bytes,
    )
    profile.record_traffic(
        DataObject.Z_LOCAL, Stage.WRITEBACK, AccessKind.READ,
        AccessPattern.SEQUENTIAL, total * rowb,
    )
    profile.record_traffic(
        DataObject.Z, Stage.WRITEBACK, AccessKind.WRITE,
        AccessPattern.SEQUENTIAL, total * rowb,
    )
    return z


# ----------------------------------------------------------------------
# traffic accounting (Table 2 access signatures) — shared by the serial
# driver and the parallel executor
# ----------------------------------------------------------------------
def record_hty_build(
    y: SparseTensor, hty, profile: RunProfile, *, cached: bool = False
) -> None:
    """Input-processing traffic of the COO→HtY conversion (O(nnz_Y)).

    A cache hit (``cached=True``) skips the conversion entirely: the
    resident objects and counters are still noted (the simulator needs
    their footprints) but no Y read / HtY write traffic is charged, and
    the hit is counted in ``hty_cache_hits``.
    """
    rowb = coo_row_bytes(y.order)
    profile.counters["nnz_y"] = y.nnz
    profile.counters["hty_groups"] = hty.num_groups
    profile.counters["hty_max_group"] = hty.max_group_size
    profile.note_object_bytes(DataObject.Y, y.nnz * rowb)
    profile.note_object_bytes(DataObject.HTY, hty.nbytes)
    if cached:
        profile.bump("hty_cache_hits")
        return
    profile.record_traffic(
        DataObject.Y, Stage.INPUT_PROCESSING, AccessKind.READ,
        AccessPattern.SEQUENTIAL, y.nnz * rowb,
    )
    profile.record_traffic(
        DataObject.HTY, Stage.INPUT_PROCESSING, AccessKind.WRITE,
        AccessPattern.RANDOM, y.nnz * HT_ENTRY_BYTES,
    )
    profile.record_traffic(
        DataObject.HTY, Stage.INPUT_PROCESSING, AccessKind.READ,
        AccessPattern.RANDOM, hty.table.num_buckets * 8,
    )


def record_computation_traffic(
    plan: ContractionPlan,
    profile: RunProfile,
    x: SparseTensor,
    *,
    uses_hty: bool,
    products: int,
    hta_peak_bytes: int,
    created: int,
) -> None:
    """Stages 2-4 traffic per Table 2 from the run's measured counts.

    ``created`` is the pre-sort output non-zero count (Z_local entries).
    Derived purely from counters, so the loop driver, the fused kernel
    and the parallel executor all charge identical traffic for identical
    work.
    """
    # Index search: X streamed sequentially once (compressed size when
    # X is stored in HiCOO).
    x_bytes = profile.object_bytes.get(
        DataObject.X, x.nnz * coo_row_bytes(x.order)
    )
    profile.record_traffic(
        DataObject.X, Stage.INDEX_SEARCH, AccessKind.READ,
        AccessPattern.SEQUENTIAL, x_bytes,
    )
    if uses_hty:
        # Each lookup reads a bucket head (8 B) and walks chain entries
        # (HT_ENTRY_BYTES each); hits then stream the group's contiguous
        # (LN(Fy), val) arrays. Table 2 charges all of it to HtY in the
        # index-search stage as random reads.
        lookups = profile.counters.get("search_probes", 0)
        chain_reads = profile.counters.get("hash_probes", lookups)
        probe_bytes = lookups * 8 + chain_reads * HT_ENTRY_BYTES
        group_bytes = products * 16  # (LN(Fy), val) pairs
        profile.record_traffic(
            DataObject.HTY, Stage.INDEX_SEARCH, AccessKind.READ,
            AccessPattern.RANDOM, probe_bytes + group_bytes,
        )
    else:
        scan_bytes = profile.counters.get("search_probes", 0) * 8
        group_bytes = products * 16
        profile.record_traffic(
            DataObject.Y, Stage.INDEX_SEARCH, AccessKind.READ,
            AccessPattern.RANDOM, scan_bytes + group_bytes,
        )
    # Accumulation: each product probes the accumulator (random read of
    # the entry's key and value, 16 B); a hit updates the 8-byte value in
    # place, a miss creates a full entry. Created entries total the final
    # output count. HtA is thread-private and small (the paper: 10-50 MB
    # per thread) so a sizable share of its probes hit the CPU caches and
    # never reach memory — modeled by HTA_CACHE_HIT.
    profile.note_object_bytes(DataObject.HTA, hta_peak_bytes)
    miss = 1.0 - HTA_CACHE_HIT
    profile.record_traffic(
        DataObject.HTA, Stage.ACCUMULATION, AccessKind.READ,
        AccessPattern.RANDOM, int(products * 16 * miss),
    )
    profile.record_traffic(
        DataObject.HTA, Stage.ACCUMULATION, AccessKind.WRITE,
        AccessPattern.RANDOM,
        int(
            (max(products - created, 0) * 8 + created * HT_ENTRY_BYTES)
            * miss
        ),
    )
    # Z_local appended sequentially during computation (Table 2 row 3).
    nfx = len(plan.fx)
    profile.record_traffic(
        DataObject.Z_LOCAL, Stage.ACCUMULATION, AccessKind.WRITE,
        AccessPattern.SEQUENTIAL, created * (8 * nfx + 16),
    )
