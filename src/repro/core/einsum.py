"""Einsum-style front end for sparse tensor contraction.

``einsum("abij,ijcd->abcd", x, y)`` is sugar over :func:`repro.contract`
for the two-operand contractions Sparta supports: every contracted label
appears exactly once in each operand, free labels appear once in one
operand and in the output.

Restrictions (matching the engines' semantics):

* exactly two operands;
* no repeated labels within one operand (no diagonals);
* no batch (shared free) labels — a label is either contracted (in both
  inputs, not the output) or free (in one input and the output);
* the output must list X's free labels then Y's free labels, in any
  order — the result is permuted to the requested order.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from repro.core.dispatch import contract
from repro.core.result import ContractionResult
from repro.errors import ContractionError
from repro.tensor.coo import SparseTensor

_SPEC_RE = re.compile(r"^\s*([a-zA-Z]+)\s*,\s*([a-zA-Z]+)\s*"
                      r"(?:->\s*([a-zA-Z]*))?\s*$")


def _parse(subscripts: str) -> Tuple[str, str, Optional[str]]:
    m = _SPEC_RE.match(subscripts)
    if not m:
        raise ContractionError(
            f"cannot parse einsum spec {subscripts!r}; expected "
            "'labels,labels->labels' with two operands"
        )
    lx, ly, out = m.group(1), m.group(2), m.group(3)
    for name, labels in (("first", lx), ("second", ly)):
        if len(set(labels)) != len(labels):
            raise ContractionError(
                f"repeated label within the {name} operand "
                f"({labels!r}); diagonals are not supported"
            )
    return lx, ly, out


def einsum(
    subscripts: str,
    x: SparseTensor,
    y: SparseTensor,
    *,
    method: str = "sparta",
    **kwargs,
) -> ContractionResult:
    """Contract two sparse tensors with einsum notation.

    Examples
    --------
    >>> from repro.tensor import random_tensor
    >>> x = random_tensor((4, 5, 3), 10, seed=0)
    >>> y = random_tensor((3, 6), 10, seed=1)
    >>> einsum("abk,kc->abc", x, y).tensor.shape
    (4, 5, 6)
    """
    lx, ly, out = _parse(subscripts)
    if len(lx) != x.order:
        raise ContractionError(
            f"operand 1 has {x.order} modes but spec has {len(lx)} labels"
        )
    if len(ly) != y.order:
        raise ContractionError(
            f"operand 2 has {y.order} modes but spec has {len(ly)} labels"
        )
    shared = [c for c in lx if c in ly]
    fx = [c for c in lx if c not in ly]
    fy = [c for c in ly if c not in lx]
    if not shared:
        raise ContractionError(
            "no shared labels: outer products are not supported"
        )
    default_out = "".join(fx + fy)
    if out is None:
        out = default_out
    if set(out) != set(default_out) or len(out) != len(default_out):
        raise ContractionError(
            f"output labels {out!r} must be a permutation of the free "
            f"labels {default_out!r} (batch labels are not supported)"
        )
    if any(c in out for c in shared):
        raise ContractionError(
            f"contracted labels {shared!r} cannot appear in the output"
        )
    cx = tuple(lx.index(c) for c in shared)
    cy = tuple(ly.index(c) for c in shared)
    result = contract(x, y, cx, cy, method=method, **kwargs)
    if out != default_out:
        perm = tuple(default_out.index(c) for c in out)
        result.tensor = result.tensor.permute(perm).sort()
    return result
