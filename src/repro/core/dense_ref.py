"""Dense reference contraction via ``numpy.tensordot``.

Ground truth for every sparse engine's tests; only usable when the dense
operands fit in memory.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.plan import ContractionPlan
from repro.core.profile import RunProfile
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.tensor.coo import SparseTensor

ENGINE_NAME = "dense_ref"


def dense_contract(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    cutoff: float = 0.0,
    sort_output: bool = True,
) -> ContractionResult:
    """Contract by densifying both operands and calling ``tensordot``.

    ``cutoff`` drops output magnitudes at or below the threshold, matching
    sparse engines that never materialize explicit zeros (exact zeros from
    cancellation are always dropped by the sparse conversion).
    """
    import time

    plan = ContractionPlan.create(x, y, cx, cy)
    profile = RunProfile(ENGINE_NAME)
    t0 = time.perf_counter()
    dense = np.tensordot(x.to_dense(), y.to_dense(), axes=(plan.cx, plan.cy))
    z = SparseTensor.from_dense(dense, cutoff=cutoff)
    if sort_output:
        z = z.sort()
    profile.add_time(Stage.ACCUMULATION, time.perf_counter() - t0)
    profile.counters["nnz_z"] = z.nnz
    return ContractionResult(z, profile, plan)
