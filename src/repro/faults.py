"""Deterministic fault injection for the parallel backends.

The paper's scalability results (§6) assume every worker survives the
run; production deployments cannot. This module provides the *testing*
half of the fault-tolerance story: a seed-driven :class:`FaultPlan`
that kills, delays, or corrupts a named worker at a named pipeline
stage and work unit, so the recovery machinery in
:mod:`repro.parallel.procpool` / :mod:`repro.parallel.executor` can be
exercised deterministically and its bit-identical-to-serial guarantee
asserted under failure (``tests/parallel/test_faults.py`` and the
differential fuzz suite).

Injection sites are named after the five pipeline stages of Figure 2
and map to these worker-side code points:

===================== =================================================
``input_processing``  stage 1 — before building one Y span's partial
                      grouping (kill/delay) or on its payload (corrupt)
``index_search``      stages 2–4 — before running the fused kernel on a
                      claimed chunk
``accumulation``      after the fused kernel, before the chunk result
                      is shipped (corrupt perturbs the payload here)
``writeback``         after the chunk result was shipped — the parent
                      already holds it when the worker dies
``output_sorting``    after the worker's claim loop drains, before its
                      ``done`` message
===================== =================================================

A :class:`FaultSpec` pins ``worker``/``unit`` or leaves them as
:data:`ANY`. Specs with a concrete ``worker`` fire at most once: the
process backend gives respawned replacement workers fresh ids beyond
the original range, and the in-process injector (thread backend)
remembers fired specs — so a single crash is recoverable. Specs with
``worker=ANY`` match every worker including replacements, which makes
the fault *irrecoverable* and exercises retry exhaustion
(:class:`~repro.errors.PoolDegradedError` / serial degradation).

Plans reach spawned workers as pickled process arguments; the
``REPRO_FAULTS`` environment variable (JSON, see
:meth:`FaultPlan.from_env`) activates a plan without touching call
sites — ``parallel_sparta`` reads it when no explicit ``fault_plan``
is passed, so ``contract(..., fault_plan=...)`` and the env var are
equivalent activation paths.

Payload integrity uses :func:`payload_digest`: workers digest their
result arrays *before* a corrupt fault perturbs them, the parent
re-digests on receipt, and a mismatch marks the sender faulty — an
end-to-end execution contract in the spirit of CoNST's generator-side
validation, rather than trusting worker output.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ContractionError

#: wildcard for :attr:`FaultSpec.worker` / :attr:`FaultSpec.unit`
ANY = -1

FAULT_KINDS = ("kill", "delay", "corrupt")

FAULT_STAGES = (
    "input_processing",
    "index_search",
    "accumulation",
    "writeback",
    "output_sorting",
)

#: environment variable holding a JSON-encoded plan (see FaultPlan.from_env)
FAULTS_ENV = "REPRO_FAULTS"

#: exit code of a worker killed by an injected ``kill`` fault
KILL_EXIT_CODE = 41


class InjectedFault(Exception):
    """Raised by a ``kill`` fault on the thread backend (in place of the
    process backend's hard ``os._exit``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *kind* at *stage*, gated on worker id and unit id.

    ``unit`` is the work-unit index at the injection site: the Y-span id
    for ``input_processing``, the chunk id for the chunk-loop stages.
    ``seconds`` is the sleep length of a ``delay`` fault (ignored for
    the other kinds).
    """

    kind: str
    worker: int = ANY
    stage: str = "index_search"
    unit: int = ANY
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ContractionError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {FAULT_KINDS}"
            )
        if self.stage not in FAULT_STAGES:
            raise ContractionError(
                f"unknown fault stage {self.stage!r}; "
                f"choose from {FAULT_STAGES}"
            )

    def matches(self, worker: int, stage: str, unit: int) -> bool:
        return (
            self.stage == stage
            and (self.worker == ANY or self.worker == int(worker))
            and (self.unit == ANY or self.unit == int(unit))
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "worker": self.worker,
            "stage": self.stage,
            "unit": self.unit,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=str(data["kind"]),
            worker=int(data.get("worker", ANY)),
            stage=str(data.get("stage", "index_search")),
            unit=int(data.get("unit", ANY)),
            seconds=float(data.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of :class:`FaultSpec` to inject."""

    specs: Tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------
    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        workers: int = 2,
        units: int = 8,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """One random fault, a pure function of *seed*.

        The worker id is always concrete (drawn from the original worker
        range) so the fault is recoverable by reassignment/respawn; the
        delay length is kept small so a delayed run finishes without
        needing a timeout. Used as the differential fuzz axis.
        """
        rng = np.random.default_rng(int(seed))
        kind = str(kinds[int(rng.integers(0, len(kinds)))])
        stage = FAULT_STAGES[int(rng.integers(0, len(FAULT_STAGES)))]
        # output_sorting fires after the claim loop, where no unit id is
        # in scope — pin such specs to ANY.
        unit = (
            ANY
            if stage == "output_sorting"
            else int(rng.integers(-1, max(units, 1)))
        )
        return cls(
            specs=(
                FaultSpec(
                    kind=kind,
                    worker=int(rng.integers(0, max(workers, 1))),
                    stage=stage,
                    unit=unit,
                    seconds=0.05 if kind == "delay" else 0.0,
                ),
            )
        )

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"specs": [s.to_dict() for s in self.specs]})

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            specs=tuple(
                FaultSpec.from_dict(s) for s in data.get("specs", [])
            )
        )

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """Parse ``REPRO_FAULTS`` (JSON) if set; ``None`` otherwise."""
        environ = os.environ if environ is None else environ
        text = environ.get(FAULTS_ENV)
        if not text:
            return None
        try:
            return cls.from_json(text)
        except (ValueError, KeyError, TypeError) as exc:
            raise ContractionError(
                f"malformed {FAULTS_ENV} value {text!r}: {exc}"
            ) from exc


class FaultInjector:
    """Evaluates a plan at worker-side injection sites.

    ``kill_mode="exit"`` (process workers) hard-kills via ``os._exit``;
    ``kill_mode="raise"`` (thread backend) raises :class:`InjectedFault`
    so the executor can catch and retry in-process. Specs pinned to a
    concrete worker are one-shot within one injector's lifetime; on the
    process backend the lifetime is one worker process, and replacements
    get fresh ids so pinned specs never refire after a respawn.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan],
        worker: Optional[int] = None,
        *,
        kill_mode: str = "exit",
        tracer=None,
    ) -> None:
        self.plan = plan
        self.worker = worker
        self.kill_mode = kill_mode
        #: optional repro.obs Tracer (duck-typed to keep this module
        #: importable standalone); fired faults leave instant events on
        #: it. A hard-killed process never ships its kill event — the
        #: parent's worker_failure event is the surviving record.
        self.tracer = tracer
        self._fired: set = set()

    def _note(self, name: str, stage: str, unit: int, **extra) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                name, cat="fault", stage=stage, unit=int(unit), **extra
            )

    # ------------------------------------------------------------------
    def _take(
        self, kinds: Tuple[str, ...], stage: str, unit: int,
        worker: Optional[int],
    ) -> Optional[FaultSpec]:
        if self.plan is None:
            return None
        wid = self.worker if worker is None else worker
        wid = ANY if wid is None else int(wid)
        for i, spec in enumerate(self.plan.specs):
            if spec.kind not in kinds or i in self._fired:
                continue
            if spec.matches(wid, stage, unit):
                if spec.worker != ANY:
                    self._fired.add(i)  # pinned specs fire once
                return spec
        return None

    # ------------------------------------------------------------------
    def fire(
        self, stage: str, unit: int, worker: Optional[int] = None
    ) -> None:
        """Execute any matching ``kill``/``delay`` fault at this site."""
        spec = self._take(("kill", "delay"), stage, unit, worker)
        if spec is None:
            return
        if spec.kind == "delay":
            self._note("fault_delay", stage, unit, seconds=spec.seconds)
            time.sleep(spec.seconds)
        elif self.kill_mode == "raise":
            self._note("fault_kill", stage, unit)
            raise InjectedFault(
                f"injected kill at {stage} (unit {unit})"
            )
        else:
            self._note("fault_kill", stage, unit)
            os._exit(KILL_EXIT_CODE)

    def corrupts(
        self, stage: str, unit: int, worker: Optional[int] = None
    ) -> bool:
        """True if a ``corrupt`` fault fires at this site."""
        return self._take(("corrupt",), stage, unit, worker) is not None

    def maybe_corrupt(
        self,
        stage: str,
        unit: int,
        arrays: Sequence[np.ndarray],
        worker: Optional[int] = None,
    ) -> bool:
        """Perturb the first non-empty payload array if a corrupt fault
        fires. Call *after* digesting, so the receiver detects it."""
        if not self.corrupts(stage, unit, worker):
            return False
        self._note("fault_corrupt", stage, unit)
        for arr in arrays:
            if arr.size:
                arr.flat[0] = arr.flat[0] + 1
                return True
        return True  # fired on an empty payload: nothing to flip


def payload_digest(*arrays: np.ndarray) -> str:
    """Cheap end-to-end integrity token over result arrays.

    Workers digest their payload before shipping; the parent re-digests
    on receipt and treats a mismatch as a faulty worker. blake2b over
    dtype, shape and raw bytes — order-sensitive, collision-resistant
    far beyond what in-flight corruption needs.
    """
    h = hashlib.blake2b(digest_size=16)
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(arr.dtype.str.encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


__all__ = [
    "ANY",
    "FAULTS_ENV",
    "FAULT_KINDS",
    "FAULT_STAGES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KILL_EXIT_CODE",
    "payload_digest",
]
