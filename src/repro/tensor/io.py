"""FROSTT ``.tns`` text format and a simple binary format.

The FROSTT format stores one non-zero per line: ``i1 i2 ... iN value`` with
**1-based** indices. The first non-comment line may optionally carry the
order and dimensions (as produced by some exporters); we accept both plain
and headered files and always write plain files plus a ``#`` header comment.

The binary format mirrors SPLATT's ``.bin`` convert target in spirit:
a small header (magic, order, shape, nnz) followed by raw index and value
arrays, via ``numpy.savez``.
"""

from __future__ import annotations

import io
import os
from typing import TextIO, Union

import numpy as np

from repro.errors import FormatError
from repro.tensor.coo import SparseTensor
from repro.types import INDEX_DTYPE, VALUE_DTYPE

PathLike = Union[str, os.PathLike]

_BIN_MAGIC = "repro-sptensor-v1"


def write_tns(tensor: SparseTensor, path_or_file: Union[PathLike, TextIO]) -> None:
    """Write a tensor in FROSTT ``.tns`` format (1-based indices)."""
    own = isinstance(path_or_file, (str, os.PathLike))
    fh: TextIO = open(path_or_file, "w") if own else path_or_file  # type: ignore[arg-type]
    try:
        fh.write(f"# sparse tensor: {tensor.order} modes, "
                 f"shape {' '.join(str(d) for d in tensor.shape)}, "
                 f"nnz {tensor.nnz}\n")
        one_based = tensor.indices + 1
        for row, val in zip(one_based, tensor.values):
            fh.write(" ".join(str(int(i)) for i in row))
            fh.write(f" {float(val)!r}\n")
    finally:
        if own:
            fh.close()


def read_tns(
    path_or_file: Union[PathLike, TextIO],
    shape: tuple[int, ...] | None = None,
) -> SparseTensor:
    """Read a FROSTT ``.tns`` file.

    If *shape* is not given it is inferred as the per-mode maximum index.
    """
    own = isinstance(path_or_file, (str, os.PathLike))
    fh: TextIO = open(path_or_file, "r") if own else path_or_file  # type: ignore[arg-type]
    try:
        rows = []
        vals = []
        order = None
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise FormatError(
                    f"line {lineno}: expected 'i1 ... iN value', got {line!r}"
                )
            if order is None:
                order = len(parts) - 1
            elif len(parts) - 1 != order:
                raise FormatError(
                    f"line {lineno}: inconsistent order "
                    f"({len(parts) - 1} vs {order})"
                )
            try:
                rows.append([int(p) for p in parts[:-1]])
                vals.append(float(parts[-1]))
            except ValueError as exc:
                raise FormatError(f"line {lineno}: {exc}") from exc
        if order is None:
            raise FormatError("no non-zero entries found")
        indices = np.asarray(rows, dtype=INDEX_DTYPE) - 1  # to 0-based
        values = np.asarray(vals, dtype=VALUE_DTYPE)
        if (indices < 0).any():
            raise FormatError("found index 0 in a 1-based .tns file")
        if shape is None:
            shape = tuple(int(m) + 1 for m in indices.max(axis=0))
        return SparseTensor(indices, values, shape)
    finally:
        if own:
            fh.close()


def read_tns_chunks(
    path_or_file: Union[PathLike, TextIO],
    shape: tuple[int, ...],
    *,
    chunk_nnz: int = 1_000_000,
):
    """Stream a ``.tns`` file as tensor chunks of at most *chunk_nnz*.

    For files too large to hold at once: each yielded
    :class:`SparseTensor` has the full declared *shape* (required —
    per-chunk inference would disagree across chunks) and a contiguous
    subset of the non-zeros. Pairs with
    :func:`repro.core.streaming.contract_streaming` for out-of-core Y.
    """
    if chunk_nnz <= 0:
        raise FormatError(f"chunk_nnz must be positive, got {chunk_nnz}")
    own = isinstance(path_or_file, (str, os.PathLike))
    fh: TextIO = open(path_or_file, "r") if own else path_or_file  # type: ignore[arg-type]
    order = len(shape)
    try:
        rows: list[list[int]] = []
        vals: list[float] = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) - 1 != order:
                raise FormatError(
                    f"line {lineno}: expected {order} indices + value, "
                    f"got {len(parts)} fields"
                )
            try:
                rows.append([int(p) - 1 for p in parts[:-1]])
                vals.append(float(parts[-1]))
            except ValueError as exc:
                raise FormatError(f"line {lineno}: {exc}") from exc
            if len(rows) >= chunk_nnz:
                yield SparseTensor(rows, vals, shape)
                rows, vals = [], []
        if rows:
            yield SparseTensor(rows, vals, shape)
    finally:
        if own:
            fh.close()


def tns_string(tensor: SparseTensor) -> str:
    """Render a tensor as a ``.tns`` string (round-trips via read_tns)."""
    buf = io.StringIO()
    write_tns(tensor, buf)
    return buf.getvalue()


def write_bin(tensor: SparseTensor, path: PathLike) -> None:
    """Write the binary format (.npz container with a magic marker)."""
    np.savez(
        path,
        magic=np.asarray(_BIN_MAGIC),
        shape=np.asarray(tensor.shape, dtype=INDEX_DTYPE),
        indices=tensor.indices,
        values=tensor.values,
    )


def read_bin(path: PathLike) -> SparseTensor:
    """Read the binary format written by :func:`write_bin`."""
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _BIN_MAGIC:
            raise FormatError(f"{path}: not a repro sparse-tensor file")
        return SparseTensor(
            data["indices"], data["values"], tuple(int(d) for d in data["shape"])
        )
