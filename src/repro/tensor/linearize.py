"""Large-number (LN) index representation (paper §3.3).

Sparta converts a sparse multi-dimensional index tuple into a single dense
integer so hash-table key comparison becomes one integer comparison:

    LN((i1, ..., ik), (d1, ..., dk)) = ((i1 * d2 + i2) * d3 + ...) + ik

i.e. row-major (C-order) linearization over the selected modes' extents.
The paper's example: tuple ``(0, 3)`` with trailing extent ``J4`` maps to
``0 * J4 + 3 = 3``.

Everything here is vectorized over arrays of index tuples.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import LinearizationOverflowError, ShapeError
from repro.types import INDEX_DTYPE

_INT64_MAX = np.iinfo(np.int64).max


def ln_strides(dims: Sequence[int]) -> np.ndarray:
    """Row-major strides for LN linearization over *dims*.

    ``strides[j] = prod(dims[j+1:])``, so
    ``ln = sum(idx[:, j] * strides[j])``.

    Raises
    ------
    LinearizationOverflowError
        If ``prod(dims)`` does not fit in a signed 64-bit integer. The
        paper's LN representation relies on unique integer keys; overflow
        would silently break uniqueness.
    """
    if len(dims) == 0:
        raise ShapeError("LN linearization needs at least one mode")
    capacity = 1
    for d in dims:
        d = int(d)
        if d <= 0:
            raise ShapeError(f"LN mode extent must be positive, got {d}")
        capacity *= d
        if capacity > _INT64_MAX:
            raise LinearizationOverflowError(
                f"product of mode extents {tuple(dims)} exceeds int64; "
                "LN keys would collide"
            )
    strides = np.empty(len(dims), dtype=INDEX_DTYPE)
    acc = 1
    for j in range(len(dims) - 1, -1, -1):
        strides[j] = acc
        acc *= int(dims[j])
    return strides


def ln_capacity(dims: Sequence[int]) -> int:
    """Number of distinct LN keys for *dims* (``prod(dims)``)."""
    strides = ln_strides(dims)  # validates overflow
    return int(strides[0]) * int(dims[0])


def linearize(indices: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Map an ``(n, k)`` index array to ``(n,)`` LN keys.

    Parameters
    ----------
    indices:
        Integer array of shape ``(n, k)``; column *j* holds mode-*j*
        indices, each in ``[0, dims[j])``.
    dims:
        Extents of the *k* modes being linearized.
    """
    indices = np.asarray(indices)
    if indices.ndim != 2:
        raise ShapeError(
            f"indices must be 2-D (n, k), got shape {indices.shape}"
        )
    if indices.shape[1] != len(dims):
        raise ShapeError(
            f"indices have {indices.shape[1]} modes but dims has {len(dims)}"
        )
    strides = ln_strides(dims)
    return indices.astype(INDEX_DTYPE, copy=False) @ strides


def delinearize(keys: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`linearize`: ``(n,)`` LN keys to ``(n, k)`` indices."""
    keys = np.asarray(keys, dtype=INDEX_DTYPE)
    if keys.ndim != 1:
        raise ShapeError(f"keys must be 1-D, got shape {keys.shape}")
    strides = ln_strides(dims)
    out = np.empty((keys.shape[0], len(dims)), dtype=INDEX_DTYPE)
    rem = keys
    for j, _ in enumerate(dims):
        out[:, j] = rem // strides[j]
        rem = rem % strides[j]
    return out


def linearize_tuple(index: Sequence[int], dims: Sequence[int]) -> int:
    """Scalar convenience wrapper around :func:`linearize`."""
    arr = np.asarray([index], dtype=INDEX_DTYPE)
    return int(linearize(arr, dims)[0])


def delinearize_tuple(key: int, dims: Sequence[int]) -> Tuple[int, ...]:
    """Scalar convenience wrapper around :func:`delinearize`."""
    arr = np.asarray([key], dtype=INDEX_DTYPE)
    return tuple(int(v) for v in delinearize(arr, dims)[0])
