"""Compressed Sparse Fiber (CSF) tensor format.

The paper argues (§3.2) that CSF does not help SpTC index search: only the
*root* mode of a CSF tree supports direct lookup; locating a sub-tensor by
indices of deeper modes still degenerates to scanning. This module exists
to make that argument measurable (``benchmarks/bench_ablation_csf.py``).

Structure: after lexicographic sorting, tree level ``l`` stores the
distinct prefix-(l+1) fibers: ``fids[l]`` holds each fiber's mode-``l``
index, ``fptr[l]`` maps each level-``(l-1)`` fiber to its range of
level-``l`` children (``fptr[0]`` maps the single root), and ``leaf_ptr``
maps each deepest-level fiber to its range in ``values``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.types import INDEX_DTYPE


class CSFTensor:
    """A CSF-compressed view of a sorted COO tensor."""

    def __init__(
        self,
        fids: List[np.ndarray],
        fptr: List[np.ndarray],
        leaf_ptr: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, ...],
    ) -> None:
        self.fids = fids
        self.fptr = fptr
        self.leaf_ptr = leaf_ptr
        self.values = values
        self.shape = shape

    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.values.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes held by all fiber-id, pointer and value arrays."""
        total = self.values.nbytes + self.leaf_ptr.nbytes
        for a in self.fids:
            total += a.nbytes
        for a in self.fptr:
            total += a.nbytes
        return int(total)

    def num_fibers(self, level: int) -> int:
        """Distinct prefix-(level+1) fibers."""
        return int(self.fids[level].shape[0])

    @classmethod
    def from_coo(cls, tensor: SparseTensor) -> "CSFTensor":
        """Compress a COO tensor (sorted internally first)."""
        t = tensor.sort()
        order = t.order
        if order < 1:
            raise ShapeError("CSF needs at least one mode")
        fids: List[np.ndarray] = []
        fptr: List[np.ndarray] = []
        if t.nnz == 0:
            for _ in range(order):
                fids.append(np.empty(0, dtype=INDEX_DTYPE))
                fptr.append(np.zeros(1, dtype=INDEX_DTYPE))
            return cls(
                fids, fptr, np.zeros(1, dtype=INDEX_DTYPE), t.values, t.shape
            )

        idx = t.indices
        nnz = t.nnz
        prev_starts = np.zeros(1, dtype=INDEX_DTYPE)  # level -1: one root
        starts = prev_starts
        for level in range(order):
            lead = idx[:, : level + 1]
            new_group = np.any(lead[1:] != lead[:-1], axis=1)
            starts = np.flatnonzero(
                np.concatenate(([True], new_group))
            ).astype(INDEX_DTYPE)
            fids.append(idx[starts, level].copy())
            # fptr[level] maps each level-(level-1) fiber (root for
            # level 0) to its child range at this level.
            ptr = np.searchsorted(
                starts, np.concatenate((prev_starts, [nnz]))
            )
            fptr.append(ptr.astype(INDEX_DTYPE))
            prev_starts = starts
        leaf_ptr = np.concatenate((starts, [nnz])).astype(INDEX_DTYPE)
        return cls(fids, fptr, leaf_ptr, t.values.copy(), t.shape)

    def to_coo(self) -> SparseTensor:
        """Expand back to COO (inverse of :meth:`from_coo`, sorted)."""
        nnz = self.nnz
        if nnz == 0:
            return SparseTensor.empty(self.shape)
        out = np.empty((nnz, self.order), dtype=INDEX_DTYPE)
        # leaf_counts[level][f] = values under fiber f at that level.
        counts = np.diff(self.leaf_ptr)
        out[:, self.order - 1] = np.repeat(self.fids[-1], counts)
        child_leaf_starts = self.leaf_ptr
        for level in range(self.order - 2, -1, -1):
            ptr = self.fptr[level + 1]
            n_fibers = self.num_fibers(level)
            leaf_starts = child_leaf_starts[ptr[:n_fibers]]
            leaf_ends = child_leaf_starts[ptr[1 : n_fibers + 1]]
            reps = (leaf_ends - leaf_starts).astype(np.int64)
            out[:, level] = np.repeat(self.fids[level], reps)
            child_leaf_starts = np.concatenate(
                (leaf_starts, [nnz])
            ).astype(INDEX_DTYPE)
        return SparseTensor(
            out, self.values.copy(), self.shape, copy=False, validate=False
        )

    # ------------------------------------------------------------------
    # index search — the operation the paper benchmarks CSF on
    # ------------------------------------------------------------------
    def search_prefix(self, prefix: Sequence[int]) -> Tuple[int, int]:
        """Locate the leaf (value) range of a *leading*-mode prefix.

        This is the fast path CSF offers: binary search per level, but
        only when the queried modes are the leading modes of the
        compression order. Returns ``(start, end)`` into ``values``;
        empty range when the prefix is absent.
        """
        if not 0 < len(prefix) <= self.order:
            raise ShapeError(
                f"prefix length must be in [1, {self.order}], "
                f"got {len(prefix)}"
            )
        lo_fiber, hi_fiber = 0, self.num_fibers(0)
        level = 0
        for level, want in enumerate(prefix):
            fids = self.fids[level][lo_fiber:hi_fiber]
            pos = int(np.searchsorted(fids, want))
            if pos >= fids.shape[0] or fids[pos] != want:
                return (0, 0)
            fiber = lo_fiber + pos
            if level == len(prefix) - 1:
                return self._leaf_range(level, fiber, fiber + 1)
            ptr = self.fptr[level + 1]
            lo_fiber, hi_fiber = int(ptr[fiber]), int(ptr[fiber + 1])
        return (0, 0)  # pragma: no cover - loop always returns

    def _leaf_range(
        self, level: int, lo_fiber: int, hi_fiber: int
    ) -> Tuple[int, int]:
        """Leaf (value) range covered by fibers [lo, hi) at *level*."""
        lo, hi = lo_fiber, hi_fiber
        for lv in range(level + 1, self.order):
            ptr = self.fptr[lv]
            lo, hi = int(ptr[lo]), int(ptr[hi])
        return (int(self.leaf_ptr[lo]), int(self.leaf_ptr[hi]))

    def search_trailing(self, trailing: Sequence[int]) -> np.ndarray:
        """Locate leaves whose *trailing* modes match — the slow path.

        The paper's point: for contract modes that are not the CSF root
        modes, CSF must scan ("all the other contract modes have to do
        linear search as well"). Returns leaf positions; cost O(nnz).
        """
        k = len(trailing)
        if not 0 < k <= self.order:
            raise ShapeError(
                f"trailing length must be in [1, {self.order}], got {k}"
            )
        coo = self.to_coo()
        want = np.asarray(trailing, dtype=INDEX_DTYPE)
        mask = np.all(coo.indices[:, self.order - k :] == want, axis=1)
        return np.flatnonzero(mask)
