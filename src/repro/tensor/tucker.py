"""Tucker decomposition (HOOI) — the other classic sparse-tensor kernel.

The tensor-decomposition literature the paper builds its context on
(Tucker via TTM chains, Smith & Karypis; Kaya & Ucar) factorizes a
tensor into a small dense core times one orthonormal factor per mode.
This module implements HOSVD initialization and HOOI iterations over our
sparse tensors, using the :func:`~repro.tensor.ops.ttm` and
:func:`~repro.tensor.ops.unfold` kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.tensor.ops import norm, ttm, unfold
from repro.types import VALUE_DTYPE


@dataclass
class TuckerModel:
    """A Tucker model: dense core plus per-mode orthonormal factors."""

    core: np.ndarray
    factors: List[np.ndarray]
    fits: List[float] = field(default_factory=list)

    @property
    def ranks(self) -> tuple:
        """Multilinear ranks (the core's shape)."""
        return tuple(self.core.shape)

    @property
    def fit(self) -> float:
        """Final fit, ``1 - |T - model| / |T|``."""
        return self.fits[-1] if self.fits else 0.0

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense tensor."""
        out = self.core
        for mode, f in enumerate(self.factors):
            out = np.moveaxis(
                np.tensordot(f, out, axes=(1, mode)), 0, mode
            )
        return out


def _leading_singular_vectors(matrix: np.ndarray, rank: int) -> np.ndarray:
    u, _, _ = np.linalg.svd(matrix, full_matrices=False)
    if u.shape[1] < rank:
        # Pad with an orthonormal completion for rank-deficient cases.
        pad = np.zeros((u.shape[0], rank - u.shape[1]), dtype=u.dtype)
        u = np.concatenate((u, pad), axis=1)
    return u[:, :rank]


def hooi(
    tensor: SparseTensor,
    ranks: Sequence[int],
    *,
    iterations: int = 25,
    tolerance: float = 1e-7,
    seed: Optional[int] = None,
) -> TuckerModel:
    """Tucker decomposition via higher-order orthogonal iteration.

    Parameters
    ----------
    ranks:
        One multilinear rank per mode, each in ``[1, shape[mode]]``.
    """
    if len(ranks) != tensor.order:
        raise ShapeError(
            f"need one rank per mode ({tensor.order}), got {len(ranks)}"
        )
    ranks = tuple(int(r) for r in ranks)
    for mode, (r, d) in enumerate(zip(ranks, tensor.shape)):
        if not 1 <= r <= d:
            raise ShapeError(
                f"rank {r} invalid for mode {mode} of extent {d}"
            )
    if iterations <= 0:
        raise ShapeError(f"iterations must be positive, got {iterations}")

    t_norm = norm(tensor)
    if t_norm == 0.0:
        return TuckerModel(
            np.zeros(ranks, dtype=VALUE_DTYPE),
            [
                np.eye(d, r, dtype=VALUE_DTYPE)
                for d, r in zip(tensor.shape, ranks)
            ],
            [1.0],
        )

    # HOSVD init: leading singular vectors of each unfolding.
    factors = [
        _leading_singular_vectors(unfold(tensor, m).to_dense(), ranks[m])
        for m in range(tensor.order)
    ]

    fits: List[float] = []
    core = None
    for _ in range(iterations):
        for mode in range(tensor.order):
            # Project all other modes, then SVD the mode unfolding.
            projected = None
            for other in range(tensor.order):
                if other == mode:
                    continue
                src = projected if projected is not None else None
                if src is None:
                    projected = ttm(tensor, factors[other].T, other)
                else:
                    projected = np.moveaxis(
                        np.tensordot(
                            factors[other].T, projected, axes=(1, other)
                        ),
                        0,
                        other,
                    )
            matricized = np.moveaxis(projected, mode, 0).reshape(
                tensor.shape[mode], -1
            )
            factors[mode] = _leading_singular_vectors(
                matricized, ranks[mode]
            )
        # Core and fit: |T - M|^2 = |T|^2 - |core|^2 for orthonormal
        # factors. The first projection contracts the sparse tensor
        # directly; the rest are small dense contractions.
        core = ttm(tensor, factors[0].T, 0)
        for mode in range(1, tensor.order):
            core = np.moveaxis(
                np.tensordot(factors[mode].T, core, axes=(1, mode)),
                0,
                mode,
            )
        residual_sq = max(t_norm**2 - float(np.sum(core * core)), 0.0)
        fit = 1.0 - np.sqrt(residual_sq) / t_norm
        fits.append(float(fit))
        if len(fits) > 1 and abs(fits[-1] - fits[-2]) < tolerance:
            break
    return TuckerModel(core.astype(VALUE_DTYPE), factors, fits)
