"""HiCOO — hierarchical COO storage (Li et al., SC'18).

The paper names HiCOO among the formats it could adopt for the first
operand X ("this work ... will adopt a more compressed format for the
sparse tensor X according to SpTC operations"). HiCOO groups non-zeros
into small aligned blocks: block coordinates are stored once per block in
wide integers, within-block offsets in narrow (8-bit) integers, shrinking
index storage for clustered tensors.

This implementation supports the pieces the SpTC pipeline needs:

* lossless COO ↔ HiCOO conversion (sorted order preserved);
* compression-ratio accounting (the storage win HiCOO exists for);
* per-block iteration, the natural outer-loop granularity for an
  X-side engine.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.types import INDEX_DTYPE, VALUE_DTYPE

#: block edge 2^3 = 8, HiCOO's default ("B = 128" bytes ~ 8^k elements)
DEFAULT_BLOCK_BITS = 3


class HiCOOTensor:
    """A HiCOO-compressed sparse tensor.

    Attributes
    ----------
    block_ptr:
        ``(n_blocks + 1,)`` — non-zero ranges per block.
    block_coords:
        ``(n_blocks, order)`` int64 — block coordinates (index >> bits).
    offsets:
        ``(nnz, order)`` uint8 — within-block offsets (index & mask).
    values:
        ``(nnz,)`` float64.
    """

    def __init__(
        self,
        block_ptr: np.ndarray,
        block_coords: np.ndarray,
        offsets: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, ...],
        block_bits: int,
    ) -> None:
        self.block_ptr = block_ptr
        self.block_coords = block_coords
        self.offsets = offsets
        self.values = values
        self.shape = shape
        self.block_bits = block_bits

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Stored non-zeros."""
        return int(self.values.shape[0])

    @property
    def num_blocks(self) -> int:
        """Occupied HiCOO blocks."""
        return int(self.block_coords.shape[0])

    @property
    def nbytes(self) -> int:
        """Compressed storage bytes."""
        return int(
            self.block_ptr.nbytes
            + self.block_coords.nbytes
            + self.offsets.nbytes
            + self.values.nbytes
        )

    def compression_ratio(self) -> float:
        """COO index+value bytes divided by HiCOO bytes (>1 is a win)."""
        coo_bytes = self.nnz * (8 * self.order + 8)
        return coo_bytes / self.nbytes if self.nbytes else 1.0

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        tensor: SparseTensor,
        *,
        block_bits: int = DEFAULT_BLOCK_BITS,
    ) -> "HiCOOTensor":
        """Compress a COO tensor (sorted by block, then within block)."""
        if not 1 <= block_bits <= 7:
            raise ShapeError(
                f"block_bits must be in [1, 7] (uint8 offsets), "
                f"got {block_bits}"
            )
        t = tensor.sort()
        nnz = t.nnz
        order = t.order
        if nnz == 0:
            return cls(
                np.zeros(1, dtype=INDEX_DTYPE),
                np.empty((0, order), dtype=INDEX_DTYPE),
                np.empty((0, order), dtype=np.uint8),
                np.empty(0, dtype=VALUE_DTYPE),
                t.shape,
                block_bits,
            )
        blocks = t.indices >> block_bits
        offsets = (t.indices & ((1 << block_bits) - 1)).astype(np.uint8)
        # Sorting lexicographically by full index also sorts by block
        # coordinate (same bit prefix), so boundaries are contiguous.
        new_block = np.any(blocks[1:] != blocks[:-1], axis=1)
        starts = np.flatnonzero(np.concatenate(([True], new_block)))
        block_ptr = np.concatenate((starts, [nnz])).astype(INDEX_DTYPE)
        return cls(
            block_ptr,
            blocks[starts].copy(),
            offsets,
            t.values.copy(),
            t.shape,
            block_bits,
        )

    def to_coo(self) -> SparseTensor:
        """Expand back to (sorted) COO."""
        if self.nnz == 0:
            return SparseTensor.empty(self.shape)
        reps = np.diff(self.block_ptr)
        base = np.repeat(self.block_coords, reps, axis=0) << self.block_bits
        indices = base + self.offsets.astype(INDEX_DTYPE)
        return SparseTensor(
            indices, self.values.copy(), self.shape,
            copy=False, validate=False,
        )

    def blocks(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield (block_coords, offsets, values) per occupied block."""
        for b in range(self.num_blocks):
            s, e = int(self.block_ptr[b]), int(self.block_ptr[b + 1])
            yield self.block_coords[b], self.offsets[s:e], self.values[s:e]
