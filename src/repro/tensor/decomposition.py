"""CP decomposition via ALS — the application context of the paper's intro.

"High-order sparse tensors have been studied well in tensor decomposition
... with a focus on the product of a sparse tensor and a dense matrix or
vector" (§1). This module provides that well-studied side as a library
feature: rank-R CP-ALS over our sparse tensors, built on the
:func:`~repro.tensor.ops.mttkrp` kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.tensor.ops import MTTKRPPlan, mttkrp, mttkrp_plan, norm
from repro.types import VALUE_DTYPE


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Khatri-Rao product of ``(I_m, R)`` matrices."""
    if not matrices:
        raise ShapeError("khatri_rao needs at least one matrix")
    out = np.asarray(matrices[0], dtype=VALUE_DTYPE)
    if out.ndim != 2:
        raise ShapeError("khatri_rao operands must be 2-D")
    rank = out.shape[1]
    for m in matrices[1:]:
        m = np.asarray(m, dtype=VALUE_DTYPE)
        if m.ndim != 2 or m.shape[1] != rank:
            raise ShapeError(
                f"rank mismatch in khatri_rao: {m.shape} vs rank {rank}"
            )
        out = (out[:, None, :] * m[None, :, :]).reshape(-1, rank)
    return out


@dataclass
class CPModel:
    """A rank-R CP model: weights plus one factor matrix per mode."""

    weights: np.ndarray
    factors: List[np.ndarray]
    fits: List[float] = field(default_factory=list)

    @property
    def rank(self) -> int:
        """Number of rank-one components."""
        return int(self.weights.shape[0])

    @property
    def fit(self) -> float:
        """Final fit, ``1 - |T - model| / |T|`` (1 is exact)."""
        return self.fits[-1] if self.fits else 0.0

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense tensor the model represents."""
        order = len(self.factors)
        out = None
        for r in range(self.rank):
            comp = self.weights[r]
            term = self.factors[0][:, r]
            for m in range(1, order):
                term = np.multiply.outer(term, self.factors[m][:, r])
            out = comp * term if out is None else out + comp * term
        return np.asarray(out)


def _plan_cache_pays_off(
    tensor: SparseTensor, rank: int, iterations: int
) -> bool:
    """Cost-model call for ``use_plan_cache="auto"``.

    Precomputing a scatter plan costs one O(nnz log nnz) grouping sort
    per mode; each of the *iterations* sweeps then scatters into grouped
    (dense-workspace-like) runs instead of hashing row-by-row. Both
    sides are priced with the planner's calibrated per-element
    coefficients, so the decision tracks the same machine profile as
    :func:`repro.planner.choose_plan`.
    """
    from repro.planner import default_calibration

    nnz = tensor.nnz
    if nnz < 2:
        return False
    coeff = default_calibration()
    build = coeff["sort_unit"] * nnz * math.log2(nnz)
    saving_per_sweep = (
        (coeff["product_hash"] - coeff["product_dense"]) * nnz * rank
    )
    return iterations * saving_per_sweep > build


def cp_als(
    tensor: SparseTensor,
    rank: int,
    *,
    iterations: int = 50,
    tolerance: float = 1e-6,
    seed: Optional[int] = None,
    use_plan_cache: Union[bool, str] = True,
) -> CPModel:
    """Rank-*rank* CP decomposition by alternating least squares.

    Each mode update solves the normal equations with the MTTKRP of the
    sparse tensor — the kernel the tensor-decomposition literature the
    paper cites optimizes. Stops when the fit improves by less than
    *tolerance* or after *iterations* sweeps.

    With ``use_plan_cache`` (default) the per-mode MTTKRP scatter plans
    are fetched from the process-wide
    :func:`~repro.core.htycache.default_plan_cache`, keyed by the
    tensor's content fingerprint — repeated sweeps (and repeated
    decompositions of the same tensor) skip the O(nnz log nnz) grouping
    work, and every planned scatter is bit-identical to the unplanned
    one. Pass ``use_plan_cache="auto"`` to let the planner's calibrated
    cost model decide whether the per-mode plan build pays for itself
    over the requested sweep count (small tensors or single-sweep runs
    skip it).
    """
    if rank <= 0:
        raise ShapeError(f"rank must be positive, got {rank}")
    if iterations <= 0:
        raise ShapeError(f"iterations must be positive, got {iterations}")
    if use_plan_cache not in (True, False, "auto"):
        raise ShapeError(
            f"use_plan_cache must be True, False or 'auto', "
            f"got {use_plan_cache!r}"
        )
    if use_plan_cache == "auto":
        use_plan_cache = _plan_cache_pays_off(tensor, rank, iterations)
    rng = np.random.default_rng(seed)
    order = tensor.order
    plans: List[Optional[MTTKRPPlan]] = [None] * order
    if use_plan_cache and tensor.nnz:
        from repro.core.htycache import default_plan_cache

        cache = default_plan_cache()
        fp = tensor.fingerprint()
        for mode in range(order):
            key = ("mttkrp", fp, mode)
            plan = cache.get(key)
            if plan is None:
                plan = mttkrp_plan(tensor, mode)
                cache.put(key, plan)
            plans[mode] = plan
    factors = [
        rng.standard_normal((d, rank)).astype(VALUE_DTYPE)
        for d in tensor.shape
    ]
    weights = np.ones(rank, dtype=VALUE_DTYPE)
    t_norm = norm(tensor)
    if t_norm == 0.0:
        return CPModel(np.zeros(rank), factors, [1.0])

    grams = [f.T @ f for f in factors]
    fits: List[float] = []
    for _ in range(iterations):
        m = None
        for mode in range(order):
            m = mttkrp(tensor, factors, mode, plan=plans[mode])
            gram = np.ones((rank, rank), dtype=VALUE_DTYPE)
            for other in range(order):
                if other != mode:
                    gram *= grams[other]
            # Solve F * gram = m (regularized for rank deficiency).
            f = np.linalg.solve(
                gram + 1e-12 * np.eye(rank), m.T
            ).T
            weights = np.linalg.norm(f, axis=0)
            weights[weights == 0] = 1.0
            f = f / weights
            factors[mode] = f
            grams[mode] = f.T @ f
        # Fit via the standard CP identity (no dense reconstruction):
        # |T - M|^2 = |T|^2 + |M|^2 - 2 <T, M>.
        full_gram = np.ones((rank, rank), dtype=VALUE_DTYPE)
        for g in grams:
            full_gram *= g
        model_sq = float(weights @ full_gram @ weights)
        # <T, M> = sum_r w_r * sum over nnz of prod factor rows — reuse
        # the sweep's final MTTKRP (mode order-1): mttkrp ignores
        # factors[mode], so the in-loop result is exactly what a fresh
        # call here would recompute.
        last = order - 1
        inner_tm = float(np.sum((m @ np.diag(weights)) * factors[last]))
        residual_sq = max(t_norm**2 + model_sq - 2 * inner_tm, 0.0)
        fit = 1.0 - np.sqrt(residual_sq) / t_norm
        fits.append(float(fit))
        if len(fits) > 1 and abs(fits[-1] - fits[-2]) < tolerance:
            break
    return CPModel(weights, factors, fits)
