"""Coordinate (COO) sparse tensor — the paper's storage format (§2.1).

A non-zero element is a tuple of per-mode indices plus a value. Indices are
held as an ``(nnz, order)`` int64 array ``indices`` and values as an
``(nnz,)`` float64 array ``values`` — the two-level ``inds``/``val`` layout
of HiParTI.

Mode permutation is a cheap column reordering (the paper: "to exchange
modes i1 and i2, we only need to switch the pointers of their indices");
sorting is a lexicographic quicksort over the (possibly permuted) modes.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.types import INDEX_DTYPE, VALUE_DTYPE, Shape
from repro.utils.validation import check_modes, check_shape


class SparseTensor:
    """An element-wise sparse tensor in COO format.

    Parameters
    ----------
    indices:
        ``(nnz, order)`` integer array of per-mode coordinates.
    values:
        ``(nnz,)`` array of non-zero values.
    shape:
        Extent of each mode. Indices must lie in ``[0, shape[m])``.
    copy:
        Copy input arrays (default) or adopt them.
    validate:
        Bounds-check indices against *shape* (default). Skipped by internal
        constructors that already guarantee validity.
    """

    __slots__ = ("indices", "values", "shape", "_fingerprint")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Sequence[int],
        *,
        copy: bool = True,
        validate: bool = True,
    ) -> None:
        shape = check_shape(shape)
        indices = np.array(indices, dtype=INDEX_DTYPE, copy=copy, ndmin=2)
        values = np.array(values, dtype=VALUE_DTYPE, copy=copy, ndmin=1)
        if indices.size == 0:
            indices = indices.reshape(0, len(shape))
        if indices.ndim != 2:
            raise ShapeError(
                f"indices must be 2-D (nnz, order), got shape {indices.shape}"
            )
        if indices.shape[1] != len(shape):
            raise ShapeError(
                f"indices have {indices.shape[1]} modes, shape has {len(shape)}"
            )
        if values.ndim != 1 or values.shape[0] != indices.shape[0]:
            raise ShapeError(
                f"values shape {values.shape} does not match "
                f"{indices.shape[0]} non-zeros"
            )
        if validate and indices.size:
            lo = indices.min(axis=0)
            hi = indices.max(axis=0)
            if (lo < 0).any():
                raise ShapeError("negative indices are not allowed")
            extents = np.asarray(shape, dtype=INDEX_DTYPE)
            if (hi >= extents).any():
                bad = int(np.flatnonzero(hi >= extents)[0])
                raise ShapeError(
                    f"index {int(hi[bad])} out of range for mode {bad} "
                    f"with extent {shape[bad]}"
                )
        self.indices = indices
        self.values = values
        self.shape: Shape = shape
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of modes (tensor order, N_X in the paper)."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zero elements."""
        return int(self.indices.shape[0])

    @property
    def density(self) -> float:
        """nnz divided by the number of positions in the dense tensor."""
        total = 1.0
        for d in self.shape:
            total *= float(d)
        return self.nnz / total if total else 0.0

    @property
    def nbytes(self) -> int:
        """Bytes held by the index and value arrays."""
        return int(self.indices.nbytes + self.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: Sequence[int]) -> "SparseTensor":
        """A tensor of the given shape with no stored non-zeros."""
        shape = check_shape(shape)
        return cls(
            np.empty((0, len(shape)), dtype=INDEX_DTYPE),
            np.empty((0,), dtype=VALUE_DTYPE),
            shape,
            copy=False,
            validate=False,
        )

    @classmethod
    def from_shared_buffers(
        cls,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Sequence[int],
        *,
        fingerprint: Optional[str] = None,
    ) -> "SparseTensor":
        """Adopt externally owned index/value buffers without copying.

        The zero-copy attach path of the serve-layer operand registry
        (:mod:`repro.serve.registry`): *indices* and *values* are views
        over a ``multiprocessing.shared_memory`` block that some other
        process (or the registry itself) owns and will eventually
        unlink. The caller guarantees the buffers outlive the tensor
        and already satisfy the COO invariants — validation is skipped,
        like the other internal constructors. A known content
        *fingerprint* can be passed through so attached views skip the
        O(nnz) hashing pass when keying the HtY/plan caches.
        """
        t = cls(indices, values, shape, copy=False, validate=False)
        t._fingerprint = fingerprint
        return t

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, *, cutoff: float = 0.0
    ) -> "SparseTensor":
        """Build from a dense array, keeping entries with ``|v| > cutoff``.

        ``cutoff`` mirrors the paper's treatment of quantum-chemistry data
        ("formed by cutting off values smaller than 1e-8").
        """
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.ndim == 0:
            raise ShapeError("0-d arrays cannot become sparse tensors")
        mask = np.abs(dense) > cutoff
        coords = np.argwhere(mask).astype(INDEX_DTYPE)
        vals = dense[mask].astype(VALUE_DTYPE)
        return cls(coords, vals, dense.shape, copy=False, validate=False)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray (duplicates are summed)."""
        total = 1
        for d in self.shape:
            total *= int(d)
        if total > 50_000_000:
            raise ShapeError(
                f"refusing to densify tensor with {total} positions"
            )
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        if self.nnz:
            np.add.at(out, tuple(self.indices.T), self.values)
        return out

    def copy(self) -> "SparseTensor":
        """Deep copy."""
        return SparseTensor(
            self.indices, self.values, self.shape, copy=True, validate=False
        )

    def fingerprint(self) -> str:
        """Content digest of (order, shape, indices, values).

        Keys the operand caches in :mod:`repro.core.htycache`: two tensors
        with equal fingerprints hold identical non-zeros in identical
        storage order. Computed lazily (one O(nnz) hashing pass on first
        call) and cached; callers must not mutate ``indices``/``values``
        in place after fingerprinting.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.int64(self.order).tobytes())
            h.update(np.asarray(self.shape, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self.indices).tobytes())
            h.update(np.ascontiguousarray(self.values).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # the paper's input-processing primitives (stage 1)
    # ------------------------------------------------------------------
    def permute(self, mode_order: Sequence[int]) -> "SparseTensor":
        """Reorder modes; cheap column/pointer exchange in COO (§3.1).

        ``mode_order[j]`` names the *old* mode that becomes new mode *j*.
        """
        mode_order = check_modes(mode_order, self.order, "mode_order")
        if len(mode_order) != self.order:
            raise ShapeError(
                f"mode_order must list all {self.order} modes, "
                f"got {len(mode_order)}"
            )
        cols = list(mode_order)
        return SparseTensor(
            self.indices[:, cols],
            self.values,
            tuple(self.shape[m] for m in cols),
            copy=False,
            validate=False,
        )

    def sort(self, mode_order: Optional[Sequence[int]] = None) -> "SparseTensor":
        """Lexicographically sort non-zeros (§3.1's quicksort).

        Sorts by mode 0, then mode 1, ... by default; *mode_order* sorts by
        the given modes first (without permuting the tensor).
        """
        if self.nnz == 0:
            return self.copy()
        if mode_order is None:
            mode_order = range(self.order)
        else:
            mode_order = check_modes(mode_order, self.order, "mode_order")
        # np.lexsort sorts by the *last* key first.
        keys = tuple(self.indices[:, m] for m in reversed(list(mode_order)))
        perm = np.lexsort(keys)
        return SparseTensor(
            self.indices[perm],
            self.values[perm],
            self.shape,
            copy=False,
            validate=False,
        )

    def is_sorted(self) -> bool:
        """True when non-zeros are in lexicographic mode order."""
        if self.nnz <= 1:
            return True
        prev = self.indices[:-1]
        nxt = self.indices[1:]
        # lexicographic comparison: find the first differing column
        diff = prev != nxt
        first = diff.argmax(axis=1)
        rows = np.arange(prev.shape[0])
        any_diff = diff.any(axis=1)
        cmp = nxt[rows, first] - prev[rows, first]
        return bool(np.all(cmp[any_diff] > 0) if any_diff.any() else True)

    def coalesce(self) -> "SparseTensor":
        """Sort and merge duplicate coordinates by summing their values."""
        if self.nnz == 0:
            return self.copy()
        sorted_t = self.sort()
        idx = sorted_t.indices
        same = np.all(idx[1:] == idx[:-1], axis=1)
        if not same.any():
            return sorted_t
        group_start = np.flatnonzero(
            np.concatenate(([True], ~same))
        )
        sums = np.add.reduceat(sorted_t.values, group_start)
        return SparseTensor(
            idx[group_start],
            sums,
            self.shape,
            copy=False,
            validate=False,
        )

    def prune(self, cutoff: float = 0.0) -> "SparseTensor":
        """Drop stored entries with ``|v| <= cutoff``."""
        mask = np.abs(self.values) > cutoff
        return SparseTensor(
            self.indices[mask],
            self.values[mask],
            self.shape,
            copy=False,
            validate=False,
        )

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def slice(self, mode: int, index: int) -> "SparseTensor":
        """Fix *mode* at *index*; the result drops that mode.

        ``t.slice(0, i)`` is the sub-tensor ``t[i, :, ..., :]``.
        """
        mode = check_modes([mode], self.order, "mode")[0]
        index = int(index)
        if not 0 <= index < self.shape[mode]:
            raise ShapeError(
                f"index {index} out of range for mode {mode} with "
                f"extent {self.shape[mode]}"
            )
        if self.order == 1:
            raise ShapeError(
                "slicing an order-1 tensor yields a scalar; index "
                "values directly"
            )
        keep = self.indices[:, mode] == index
        rest = [m for m in range(self.order) if m != mode]
        return SparseTensor(
            self.indices[keep][:, rest],
            self.values[keep],
            tuple(self.shape[m] for m in rest),
            copy=False,
            validate=False,
        )

    def select(self, mode: int, indices: Sequence[int]) -> "SparseTensor":
        """Keep only non-zeros whose *mode* index is in *indices*.

        The mode is retained (same shape); use :meth:`slice` to drop it.
        """
        mode = check_modes([mode], self.order, "mode")[0]
        wanted = np.asarray(sorted(set(int(i) for i in indices)),
                            dtype=INDEX_DTYPE)
        if wanted.size and (
            wanted[0] < 0 or wanted[-1] >= self.shape[mode]
        ):
            raise ShapeError(
                f"selection out of range for mode {mode} with extent "
                f"{self.shape[mode]}"
            )
        pos = np.searchsorted(wanted, self.indices[:, mode])
        pos = np.minimum(pos, max(wanted.size - 1, 0))
        keep = (
            (wanted.size > 0)
            & (wanted[pos] == self.indices[:, mode])
            if wanted.size
            else np.zeros(self.nnz, dtype=bool)
        )
        return SparseTensor(
            self.indices[keep],
            self.values[keep],
            self.shape,
            copy=False,
            validate=False,
        )

    # ------------------------------------------------------------------
    # sub-tensor grouping (the ptr_F array of Algorithm 2)
    # ------------------------------------------------------------------
    def fiber_pointers(self, num_modes: int) -> np.ndarray:
        """Boundaries of mode-F sub-tensors after sorting (``ptr_F``).

        Requires the tensor to be sorted. Groups non-zeros by their first
        *num_modes* indices; returns an ``(N_F + 1,)`` pointer array, so
        sub-tensor *f* occupies rows ``ptr[f]:ptr[f+1]``.
        """
        if num_modes < 0 or num_modes > self.order:
            raise ShapeError(
                f"num_modes {num_modes} out of range for order {self.order}"
            )
        if self.nnz == 0:
            return np.zeros(1, dtype=INDEX_DTYPE)
        if num_modes == 0:
            return np.asarray([0, self.nnz], dtype=INDEX_DTYPE)
        lead = self.indices[:, :num_modes]
        new_group = np.any(lead[1:] != lead[:-1], axis=1)
        starts = np.flatnonzero(np.concatenate(([True], new_group)))
        return np.concatenate(
            (starts, [self.nnz])
        ).astype(INDEX_DTYPE)

    # ------------------------------------------------------------------
    # comparison / iteration
    # ------------------------------------------------------------------
    def allclose(
        self, other: "SparseTensor", *, rtol: float = 1e-10, atol: float = 1e-12
    ) -> bool:
        """Numerically compare two tensors independent of storage order."""
        if not isinstance(other, SparseTensor):
            return NotImplemented
        if self.shape != other.shape:
            return False
        a = self.coalesce().prune(atol)
        b = other.coalesce().prune(atol)
        if a.nnz != b.nnz:
            return False
        return bool(
            np.array_equal(a.indices, b.indices)
            and np.allclose(a.values, b.values, rtol=rtol, atol=atol)
        )

    def __iter__(self) -> Iterable[Tuple[Tuple[int, ...], float]]:
        for row, val in zip(self.indices, self.values):
            yield tuple(int(i) for i in row), float(val)
