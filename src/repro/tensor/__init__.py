"""Sparse tensor substrate: COO/CSF/block formats, LN indexing, I/O."""

from repro.tensor.blocks import BlockSparseTensor
from repro.tensor.coo import SparseTensor
from repro.tensor.csf import CSFTensor
from repro.tensor.decomposition import CPModel, cp_als, khatri_rao
from repro.tensor.hicoo import HiCOOTensor
from repro.tensor.io import read_bin, read_tns, tns_string, write_bin, write_tns
from repro.tensor.ops import (
    add,
    fold,
    inner,
    mttkrp,
    multiply,
    norm,
    scale,
    subtract,
    ttm,
    ttv,
    unfold,
)
from repro.tensor.linearize import (
    delinearize,
    delinearize_tuple,
    linearize,
    linearize_tuple,
    ln_capacity,
    ln_strides,
)
from repro.tensor.reorder import (
    apply_reordering,
    frequency_order,
    invert_reordering,
    lexi_order,
)
from repro.tensor.stats import fiber_stats, tensor_stats
from repro.tensor.tucker import TuckerModel, hooi
from repro.tensor.random import (
    random_dense_like,
    random_tensor,
    random_tensor_fibered,
)

__all__ = [
    "BlockSparseTensor",
    "CPModel",
    "TuckerModel",
    "cp_als",
    "hooi",
    "khatri_rao",
    "CSFTensor",
    "HiCOOTensor",
    "SparseTensor",
    "add",
    "apply_reordering",
    "fiber_stats",
    "frequency_order",
    "invert_reordering",
    "lexi_order",
    "tensor_stats",
    "fold",
    "inner",
    "mttkrp",
    "multiply",
    "norm",
    "scale",
    "subtract",
    "ttm",
    "ttv",
    "unfold",
    "delinearize",
    "delinearize_tuple",
    "linearize",
    "linearize_tuple",
    "ln_capacity",
    "ln_strides",
    "random_dense_like",
    "random_tensor",
    "random_tensor_fibered",
    "read_bin",
    "read_tns",
    "tns_string",
    "write_bin",
    "write_tns",
]
