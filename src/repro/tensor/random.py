"""Random sparse tensor generation.

Used by tests, examples and the synthetic dataset registry. Two flavours:

* :func:`random_tensor` — uniform coordinates, the generic case;
* :func:`random_tensor_fibered` — controls the number of distinct
  sub-tensors ("fibers") along a chosen mode split. Sparta's advantage over
  linear search is governed by the fiber statistics of Y (how many distinct
  contract-index groups exist and how large they are), so reproducing the
  paper's speedup shapes needs this knob.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import delinearize, linearize, ln_capacity
from repro.types import INDEX_DTYPE, VALUE_DTYPE
from repro.utils.validation import check_shape


def _rng(seed: Optional[int | np.random.Generator]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_tensor(
    shape: Sequence[int],
    nnz: int,
    *,
    seed: Optional[int | np.random.Generator] = None,
    distinct: bool = True,
) -> SparseTensor:
    """Uniformly random sparse tensor with ~*nnz* non-zeros.

    With ``distinct=True`` duplicate coordinates are removed, so the result
    may hold slightly fewer than *nnz* entries (never more).
    """
    shape = check_shape(shape)
    if nnz < 0:
        raise ShapeError(f"nnz must be non-negative, got {nnz}")
    rng = _rng(seed)
    capacity = ln_capacity(shape)
    if distinct:
        nnz = min(nnz, capacity)
    if nnz == 0:
        return SparseTensor.empty(shape)
    if distinct:
        # Sample LN keys without replacement when feasible, else dedupe.
        if capacity <= 8 * nnz:
            keys = rng.choice(capacity, size=nnz, replace=False)
        else:
            keys = np.unique(
                rng.integers(0, capacity, size=int(nnz * 1.2) + 8)
            )
            if keys.shape[0] > nnz:
                keys = rng.choice(keys, size=nnz, replace=False)
        indices = delinearize(np.sort(keys).astype(INDEX_DTYPE), shape)
    else:
        indices = np.column_stack(
            [rng.integers(0, d, size=nnz) for d in shape]
        ).astype(INDEX_DTYPE)
    values = rng.standard_normal(indices.shape[0]).astype(VALUE_DTYPE)
    # Avoid exact zeros so nnz is meaningful.
    values[values == 0.0] = 1.0
    return SparseTensor(indices, values, shape, copy=False, validate=False)


def random_tensor_fibered(
    shape: Sequence[int],
    nnz: int,
    lead_modes: int,
    num_fibers: int,
    *,
    seed: Optional[int | np.random.Generator] = None,
    skew: float = 0.0,
) -> SparseTensor:
    """Random tensor with exactly ``num_fibers`` distinct leading-index groups.

    The first *lead_modes* modes take ``num_fibers`` distinct index tuples;
    the remaining modes are uniform. ``skew > 0`` concentrates non-zeros on
    a few fibers (Zipf-like), modelling real FROSTT tensors where a few
    fibers are dense.

    Duplicate full coordinates are coalesced, so the realized nnz can be a
    little below the request for very dense fibers.
    """
    shape = check_shape(shape)
    if not 0 < lead_modes < len(shape):
        raise ShapeError(
            f"lead_modes must be in (0, {len(shape)}), got {lead_modes}"
        )
    rng = _rng(seed)
    lead_shape = shape[:lead_modes]
    rest_shape = shape[lead_modes:]
    lead_capacity = ln_capacity(lead_shape)
    num_fibers = min(int(num_fibers), lead_capacity, nnz) or 1
    fiber_keys = rng.choice(lead_capacity, size=num_fibers, replace=False)

    if skew > 0.0:
        weights = (1.0 / np.arange(1, num_fibers + 1) ** skew)
        weights /= weights.sum()
    else:
        weights = np.full(num_fibers, 1.0 / num_fibers)
    # Each fiber gets >= 1 nnz; distribute the rest by weight.
    counts = np.ones(num_fibers, dtype=np.int64)
    extra = nnz - num_fibers
    if extra > 0:
        counts += rng.multinomial(extra, weights)

    lead_idx = delinearize(
        np.repeat(fiber_keys.astype(INDEX_DTYPE), counts), lead_shape
    )
    total = int(counts.sum())
    rest_idx = np.column_stack(
        [rng.integers(0, d, size=total) for d in rest_shape]
    ).astype(INDEX_DTYPE)
    indices = np.column_stack([lead_idx, rest_idx])
    values = rng.standard_normal(total).astype(VALUE_DTYPE)
    values[values == 0.0] = 1.0
    t = SparseTensor(indices, values, shape, copy=False, validate=False)
    # Coalescing duplicates keeps every fiber non-empty (counts >= 1 and
    # coalescing only merges identical coordinates within a fiber).
    return t.coalesce()


def random_dense_like(
    shape: Sequence[int],
    density: float,
    *,
    seed: Optional[int | np.random.Generator] = None,
) -> SparseTensor:
    """Random tensor from a target density rather than a target nnz."""
    shape = check_shape(shape)
    if not 0.0 <= density <= 1.0:
        raise ShapeError(f"density must be in [0, 1], got {density}")
    nnz = int(round(density * ln_capacity(shape)))
    return random_tensor(shape, nnz, seed=seed)
