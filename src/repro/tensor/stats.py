"""Sparsity statistics — the Table-3-style characterization of a tensor.

The registry tunes its generators by these quantities (fiber counts,
skew, densities); this module computes them for *any* tensor, so users
can characterize their own data the way the paper characterizes FROSTT's.

Run on a file: ``python -m repro.tensor.stats path/to/tensor.tns``
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import linearize, ln_capacity


@dataclass(frozen=True)
class FiberStats:
    """Distribution of non-zeros over the fibers of one mode split."""

    lead_modes: Tuple[int, ...]
    num_fibers: int
    min_size: int
    max_size: int
    mean_size: float
    #: share of non-zeros in the heaviest 1% of fibers (skew measure)
    top1pct_share: float


def fiber_stats(
    t: SparseTensor, lead_modes: Sequence[int]
) -> FiberStats:
    """Statistics of grouping non-zeros by the given leading modes."""
    lead = tuple(int(m) for m in lead_modes)
    if not lead or len(set(lead)) != len(lead):
        raise ShapeError("lead_modes must be non-empty and unique")
    for m in lead:
        if not 0 <= m < t.order:
            raise ShapeError(f"mode {m} out of range")
    if len(lead) >= t.order:
        raise ShapeError("lead_modes must leave at least one free mode")
    if t.nnz == 0:
        return FiberStats(lead, 0, 0, 0, 0.0, 0.0)
    dims = tuple(t.shape[m] for m in lead)
    keys = linearize(t.indices[:, lead], dims)
    _, counts = np.unique(keys, return_counts=True)
    counts_sorted = np.sort(counts)[::-1]
    top = max(1, int(np.ceil(counts.shape[0] * 0.01)))
    return FiberStats(
        lead_modes=lead,
        num_fibers=int(counts.shape[0]),
        min_size=int(counts.min()),
        max_size=int(counts.max()),
        mean_size=float(counts.mean()),
        top1pct_share=float(counts_sorted[:top].sum() / t.nnz),
    )


@dataclass(frozen=True)
class TensorStats:
    """The Table-3 row of one tensor, plus contraction-relevant extras."""

    order: int
    shape: Tuple[int, ...]
    nnz: int
    density: float
    #: per-mode count of distinct indices actually used
    used_indices: Tuple[int, ...]
    #: fiber stats for every leading-prefix split
    prefixes: Dict[int, FiberStats]


def tensor_stats(t: SparseTensor) -> TensorStats:
    """Characterize a tensor (order, density, usage, fiber structure)."""
    used = tuple(
        int(np.unique(t.indices[:, m]).shape[0]) if t.nnz else 0
        for m in range(t.order)
    )
    prefixes = {
        k: fiber_stats(t, tuple(range(k)))
        for k in range(1, t.order)
    }
    return TensorStats(
        order=t.order,
        shape=t.shape,
        nnz=t.nnz,
        density=t.density,
        used_indices=used,
        prefixes=prefixes,
    )


def render(stats: TensorStats) -> str:
    """Human-readable report of :func:`tensor_stats` output."""
    lines = [
        f"order {stats.order}, shape "
        + "x".join(str(d) for d in stats.shape),
        f"nnz {stats.nnz}, density {stats.density:.3g}",
        "used indices per mode: "
        + ", ".join(
            f"{u}/{d}" for u, d in zip(stats.used_indices, stats.shape)
        ),
    ]
    for k, fs in stats.prefixes.items():
        lines.append(
            f"prefix-{k} fibers: {fs.num_fibers} "
            f"(sizes {fs.min_size}-{fs.max_size}, "
            f"mean {fs.mean_size:.1f}, "
            f"top-1% share {100 * fs.top1pct_share:.1f}%)"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> str:  # pragma: no cover
    from repro.tensor.io import read_tns

    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.tensor.stats TENSOR.tns",
              file=sys.stderr)
        raise SystemExit(2)
    out = render(tensor_stats(read_tns(argv[0])))
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
