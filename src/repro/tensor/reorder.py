"""Index reordering for locality (Li et al., ICS'19 — the paper's [38]).

Renumbering mode indices so frequently co-occurring slices sit near each
other improves block clustering: HiCOO stores fewer blocks, sorted scans
touch denser regions. This module implements the lightweight relabeling
family of that work:

* :func:`frequency_order` — relabel a mode's indices by descending slice
  density (heavy slices first), the simplest locality win;
* :func:`lexi_order` — relabel by similarity of slice patterns
  (lexicographic over each slice's fingerprint), grouping slices that
  share non-zero structure;
* :func:`apply_reordering` / :func:`invert_reordering` — apply a
  permutation to a mode and undo it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import linearize
from repro.types import INDEX_DTYPE


def _check_mode(t: SparseTensor, mode: int) -> int:
    mode = int(mode)
    if not 0 <= mode < t.order:
        raise ShapeError(
            f"mode {mode} out of range for order-{t.order} tensor"
        )
    return mode


def frequency_order(t: SparseTensor, mode: int) -> np.ndarray:
    """Permutation placing the densest mode-*mode* slices first.

    Returns ``perm`` with ``perm[old_index] = new_index``.
    """
    mode = _check_mode(t, mode)
    counts = np.zeros(t.shape[mode], dtype=np.int64)
    if t.nnz:
        np.add.at(counts, t.indices[:, mode], 1)
    order = np.argsort(-counts, kind="stable")
    perm = np.empty_like(order)
    perm[order] = np.arange(t.shape[mode], dtype=order.dtype)
    return perm.astype(INDEX_DTYPE)


def lexi_order(t: SparseTensor, mode: int, *, bits: int = 16) -> np.ndarray:
    """Permutation grouping slices with similar non-zero patterns.

    Each slice gets a fingerprint — a *bits*-bucket occupancy bitmask of
    its non-zeros' positions in the other modes — and slices are ordered
    lexicographically by (fingerprint, density). Returns ``perm`` with
    ``perm[old_index] = new_index``.
    """
    mode = _check_mode(t, mode)
    if not 1 <= bits <= 62:
        raise ShapeError(f"bits must be in [1, 62], got {bits}")
    n = t.shape[mode]
    masks = np.zeros(n, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    if t.nnz:
        rest = [m for m in range(t.order) if m != mode]
        rest_dims = tuple(t.shape[m] for m in rest)
        keys = (
            linearize(t.indices[:, rest], rest_dims)
            if rest
            else np.zeros(t.nnz, dtype=INDEX_DTYPE)
        )
        capacity = 1
        for d in rest_dims:
            capacity *= d
        buckets = (keys * bits // max(capacity, 1)).astype(np.int64)
        buckets = np.clip(buckets, 0, bits - 1)
        np.bitwise_or.at(
            masks, t.indices[:, mode], np.int64(1) << buckets
        )
        np.add.at(counts, t.indices[:, mode], 1)
    order = np.lexsort((-counts, masks))
    perm = np.empty_like(order)
    perm[order] = np.arange(n, dtype=order.dtype)
    return perm.astype(INDEX_DTYPE)


def apply_reordering(
    t: SparseTensor, mode: int, perm: Sequence[int]
) -> SparseTensor:
    """Relabel mode-*mode* indices: ``new_index = perm[old_index]``."""
    mode = _check_mode(t, mode)
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    if perm.shape != (t.shape[mode],):
        raise ShapeError(
            f"perm length {perm.shape} does not match extent "
            f"{t.shape[mode]}"
        )
    if np.unique(perm).shape[0] != perm.shape[0] or (
        perm.min() != 0 or perm.max() != perm.shape[0] - 1
    ):
        raise ShapeError("perm must be a permutation of 0..extent-1")
    indices = t.indices.copy()
    indices[:, mode] = perm[t.indices[:, mode]]
    return SparseTensor(
        indices, t.values.copy(), t.shape, copy=False, validate=False
    )


def invert_reordering(perm: Sequence[int]) -> np.ndarray:
    """The inverse permutation of :func:`apply_reordering`'s input."""
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=INDEX_DTYPE)
    return inv
