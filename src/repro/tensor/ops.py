"""Sparse tensor operations beyond contraction.

The paper positions SpTC against the well-studied sparse-tensor x dense
kernels (TTM, MTTKRP — the workhorses of Tucker/CP decomposition, §1).
This module provides those kernels plus element-wise algebra, norms and
matricization, all vectorized over COO storage:

* :func:`ttm` — tensor-times-matrix along one mode;
* :func:`ttv` — tensor-times-vector along one mode;
* :func:`mttkrp` — matricized tensor times Khatri-Rao product;
* :func:`add`, :func:`subtract`, :func:`multiply` — element-wise algebra
  of two sparse tensors;
* :func:`scale`, :func:`norm`, :func:`inner` — scalar operations;
* :func:`unfold` / :func:`fold` — mode-n matricization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import delinearize, linearize
from repro.types import INDEX_DTYPE, VALUE_DTYPE


def _check_same_shape(a: SparseTensor, b: SparseTensor) -> None:
    if a.shape != b.shape:
        raise ShapeError(
            f"shape mismatch: {a.shape} vs {b.shape}"
        )


def _check_mode(t: SparseTensor, mode: int) -> int:
    mode = int(mode)
    if not 0 <= mode < t.order:
        raise ShapeError(
            f"mode {mode} out of range for order-{t.order} tensor"
        )
    return mode


# ----------------------------------------------------------------------
# element-wise algebra
# ----------------------------------------------------------------------
def add(a: SparseTensor, b: SparseTensor) -> SparseTensor:
    """Element-wise sum (union of patterns, coalesced)."""
    _check_same_shape(a, b)
    return SparseTensor(
        np.concatenate((a.indices, b.indices)),
        np.concatenate((a.values, b.values)),
        a.shape,
        copy=False,
        validate=False,
    ).coalesce()


def subtract(a: SparseTensor, b: SparseTensor) -> SparseTensor:
    """Element-wise difference ``a - b``."""
    _check_same_shape(a, b)
    return SparseTensor(
        np.concatenate((a.indices, b.indices)),
        np.concatenate((a.values, -b.values)),
        a.shape,
        copy=False,
        validate=False,
    ).coalesce()


def multiply(a: SparseTensor, b: SparseTensor) -> SparseTensor:
    """Element-wise (Hadamard) product — intersection of patterns."""
    _check_same_shape(a, b)
    ac = a.coalesce()
    bc = b.coalesce()
    ka = linearize(ac.indices, a.shape)
    kb = linearize(bc.indices, b.shape)
    pos = np.searchsorted(kb, ka)
    pos_c = np.minimum(pos, max(kb.shape[0] - 1, 0))
    both = (kb.shape[0] > 0) & (kb[pos_c] == ka) if kb.size else (
        np.zeros(ka.shape, dtype=bool)
    )
    rows = np.flatnonzero(both)
    return SparseTensor(
        ac.indices[rows],
        ac.values[rows] * bc.values[pos_c[rows]],
        a.shape,
        copy=False,
        validate=False,
    )


def scale(t: SparseTensor, alpha: float) -> SparseTensor:
    """Scalar multiple ``alpha * t``."""
    return SparseTensor(
        t.indices, t.values * float(alpha), t.shape,
        copy=True, validate=False,
    )


def norm(t: SparseTensor, ord: float = 2) -> float:
    """Entry-wise norm: 2 (Frobenius), 1, or ``np.inf``."""
    v = t.coalesce().values
    if v.size == 0:
        return 0.0
    if ord == 2:
        return float(np.sqrt(np.sum(v * v)))
    if ord == 1:
        return float(np.sum(np.abs(v)))
    if ord == np.inf:
        return float(np.max(np.abs(v)))
    raise ShapeError(f"unsupported norm order {ord!r}")


def inner(a: SparseTensor, b: SparseTensor) -> float:
    """Inner product ``<a, b>`` (sum of element-wise products)."""
    return float(multiply(a, b).values.sum())


# ----------------------------------------------------------------------
# sparse-tensor x dense kernels
# ----------------------------------------------------------------------
def ttm(t: SparseTensor, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Tensor-times-matrix: ``Y = T x_mode M`` with ``M (J, I_mode)``.

    The mode-*mode* fibers of T are multiplied by M; the result is dense
    along the new mode (TTM output is generally dense along that mode),
    returned as a dense ndarray with ``shape[mode] = J``.
    """
    mode = _check_mode(t, mode)
    matrix = np.asarray(matrix, dtype=VALUE_DTYPE)
    if matrix.ndim != 2 or matrix.shape[1] != t.shape[mode]:
        raise ShapeError(
            f"matrix shape {matrix.shape} incompatible with mode "
            f"{mode} extent {t.shape[mode]}"
        )
    out_shape = (
        t.shape[:mode] + (matrix.shape[0],) + t.shape[mode + 1 :]
    )
    out = np.zeros(out_shape, dtype=VALUE_DTYPE)
    if t.nnz == 0:
        return out
    # Each non-zero contributes val * M[:, i_mode] to its output fiber;
    # group contributions by the (linearized) non-mode indices and
    # scatter whole fibers at once.
    contrib = t.values[:, None] * matrix.T[t.indices[:, mode]]  # (nnz, J)
    rest_dims = tuple(
        d for m, d in enumerate(t.shape) if m != mode
    )
    if rest_dims:
        rest_keys = linearize(
            t.indices[:, [m for m in range(t.order) if m != mode]],
            rest_dims,
        )
        uniq, inverse = np.unique(rest_keys, return_inverse=True)
        sums = np.zeros((uniq.shape[0], matrix.shape[0]), dtype=VALUE_DTYPE)
        np.add.at(sums, inverse, contrib)
        rest_idx = delinearize(uniq, rest_dims)
        moved = np.moveaxis(out, mode, -1)
        moved[tuple(rest_idx.T)] = sums
    else:
        out[:] = contrib.sum(axis=0)
    return out


def ttv(t: SparseTensor, vector: np.ndarray, mode: int) -> SparseTensor:
    """Tensor-times-vector: contracts *mode* with a dense vector.

    Output is a sparse tensor of order ``t.order - 1``.
    """
    mode = _check_mode(t, mode)
    vector = np.asarray(vector, dtype=VALUE_DTYPE)
    if vector.ndim != 1 or vector.shape[0] != t.shape[mode]:
        raise ShapeError(
            f"vector length {vector.shape} incompatible with mode "
            f"{mode} extent {t.shape[mode]}"
        )
    if t.order == 1:
        raise ShapeError("ttv on an order-1 tensor is a dot product")
    rest = [m for m in range(t.order) if m != mode]
    out_shape = tuple(t.shape[m] for m in rest)
    if t.nnz == 0:
        return SparseTensor.empty(out_shape)
    vals = t.values * vector[t.indices[:, mode]]
    return SparseTensor(
        t.indices[:, rest], vals, out_shape, copy=False, validate=False
    ).coalesce().prune(0.0)


@dataclass(frozen=True)
class MTTKRPPlan:
    """Precomputed scatter plan for one ``(tensor, mode)`` MTTKRP.

    The sparsity pattern of *t* fixes how per-non-zero contributions
    scatter into output rows; that grouping (a stable sort by the mode's
    index column) is the same every call, so CP-ALS — which runs the
    identical scatter once per sweep per mode — precomputes it once. The
    planned scatter sums contributions per output row via one weighted
    ``bincount`` per rank column, in exactly the order ``np.add.at``
    would (stable sort keeps original order within each row), so planned
    and unplanned results are bit-identical.
    """

    #: stable permutation grouping non-zeros by their mode index
    perm: np.ndarray
    #: output-row segment id of each permuted non-zero
    seg_ids: np.ndarray
    #: distinct output rows, one per segment
    out_rows: np.ndarray
    #: nnz the plan was built for (guards stale application)
    nnz: int


def mttkrp_plan(t: SparseTensor, mode: int) -> MTTKRPPlan:
    """Build the scatter plan :func:`mttkrp` accepts via ``plan=``."""
    mode = _check_mode(t, mode)
    col = t.indices[:, mode]
    perm = np.argsort(col, kind="stable")
    sorted_col = col[perm]
    if sorted_col.shape[0]:
        mask = np.concatenate(
            ([True], sorted_col[1:] != sorted_col[:-1])
        )
        seg_ids = np.cumsum(mask) - 1
        out_rows = sorted_col[np.flatnonzero(mask)]
    else:
        seg_ids = np.empty(0, dtype=np.int64)
        out_rows = np.empty(0, dtype=col.dtype)
    return MTTKRPPlan(perm, seg_ids, out_rows, t.nnz)


def mttkrp(
    t: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    plan: Optional[MTTKRPPlan] = None,
) -> np.ndarray:
    """Matricized tensor times Khatri-Rao product (CP decomposition core).

    ``factors`` holds one ``(I_m, R)`` matrix per mode (the *mode*-th
    entry is ignored); returns the ``(I_mode, R)`` MTTKRP result.

    ``plan`` (from :func:`mttkrp_plan` for the same tensor and mode)
    replaces the element-at-a-time ``np.add.at`` scatter with a sorted
    segmented reduction; results are bit-identical.
    """
    mode = _check_mode(t, mode)
    if len(factors) != t.order:
        raise ShapeError(
            f"need one factor per mode ({t.order}), got {len(factors)}"
        )
    ranks = set()
    mats = []
    for m, f in enumerate(factors):
        f = np.asarray(f, dtype=VALUE_DTYPE)
        if m != mode:
            if f.ndim != 2 or f.shape[0] != t.shape[m]:
                raise ShapeError(
                    f"factor {m} shape {f.shape} incompatible with "
                    f"extent {t.shape[m]}"
                )
            ranks.add(f.shape[1])
        mats.append(f)
    if len(ranks) != 1:
        raise ShapeError(f"factors have inconsistent ranks {ranks}")
    rank = ranks.pop()
    out = np.zeros((t.shape[mode], rank), dtype=VALUE_DTYPE)
    if t.nnz == 0:
        return out
    acc = np.broadcast_to(
        t.values[:, None], (t.nnz, rank)
    ).copy()
    for m in range(t.order):
        if m == mode:
            continue
        acc *= mats[m][t.indices[:, m]]
    if plan is None:
        np.add.at(out, t.indices[:, mode], acc)
    else:
        if plan.nnz != t.nnz:
            raise ShapeError(
                f"MTTKRP plan built for {plan.nnz} non-zeros applied to "
                f"a tensor with {t.nnz}"
            )
        acc_s = acc[plan.perm]
        n_seg = plan.out_rows.shape[0]
        for r in range(rank):
            out[plan.out_rows, r] = np.bincount(
                plan.seg_ids, weights=acc_s[:, r], minlength=n_seg
            )
    return out


# ----------------------------------------------------------------------
# matricization
# ----------------------------------------------------------------------
def unfold(t: SparseTensor, mode: int) -> SparseTensor:
    """Mode-*mode* matricization: an order-2 sparse tensor
    ``(I_mode, prod(other extents))`` with the other modes linearized in
    ascending order."""
    mode = _check_mode(t, mode)
    rest = [m for m in range(t.order) if m != mode]
    rest_dims = tuple(t.shape[m] for m in rest)
    cols = (
        linearize(t.indices[:, rest], rest_dims)
        if rest
        else np.zeros(t.nnz, dtype=INDEX_DTYPE)
    )
    n_cols = 1
    for d in rest_dims:
        n_cols *= d
    return SparseTensor(
        np.column_stack((t.indices[:, mode], cols)),
        t.values.copy(),
        (t.shape[mode], n_cols),
        copy=False,
        validate=False,
    )


def fold(
    matrix: SparseTensor, mode: int, shape: Sequence[int]
) -> SparseTensor:
    """Inverse of :func:`unfold` for the given original *shape*."""
    shape = tuple(int(d) for d in shape)
    mode = int(mode)
    if not 0 <= mode < len(shape):
        raise ShapeError(f"mode {mode} out of range for shape {shape}")
    if matrix.order != 2:
        raise ShapeError("fold expects an order-2 tensor")
    rest = [m for m in range(len(shape)) if m != mode]
    rest_dims = tuple(shape[m] for m in rest)
    expected = (shape[mode], int(np.prod(rest_dims)) if rest_dims else 1)
    if matrix.shape != expected:
        raise ShapeError(
            f"matrix shape {matrix.shape} does not match unfolding "
            f"{expected} of {shape}"
        )
    out_idx = np.empty((matrix.nnz, len(shape)), dtype=INDEX_DTYPE)
    out_idx[:, mode] = matrix.indices[:, 0]
    if rest:
        rest_idx = delinearize(matrix.indices[:, 1], rest_dims)
        for j, m in enumerate(rest):
            out_idx[:, m] = rest_idx[:, j]
    return SparseTensor(
        out_idx, matrix.values.copy(), shape, copy=False, validate=False
    )
