"""Block-sparse tensors — the representation ITensor-style engines use.

A block-sparse tensor partitions each mode into fixed-size tiles and stores
only non-zero *blocks* as dense arrays, keyed by their block coordinates.
The paper's Figure 5 baseline (ITensor) contracts tensors in this form by
matching block pairs and calling dense GEMM per pair.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.coo import SparseTensor
from repro.types import INDEX_DTYPE, VALUE_DTYPE
from repro.utils.validation import check_shape

BlockKey = Tuple[int, ...]


class BlockSparseTensor:
    """Dense blocks on a regular tile grid.

    Parameters
    ----------
    shape:
        Global tensor shape. Must be divisible by *block_shape* per mode.
    block_shape:
        Tile extent per mode.
    blocks:
        Mapping from block coordinates to dense ``block_shape`` arrays.
    """

    def __init__(
        self,
        shape: Sequence[int],
        block_shape: Sequence[int],
        blocks: Dict[BlockKey, np.ndarray] | None = None,
    ) -> None:
        self.shape = check_shape(shape)
        self.block_shape = check_shape(block_shape)
        if len(self.shape) != len(self.block_shape):
            raise ShapeError(
                f"shape has {len(self.shape)} modes but block_shape has "
                f"{len(self.block_shape)}"
            )
        for m, (d, b) in enumerate(zip(self.shape, self.block_shape)):
            if d % b != 0:
                raise ShapeError(
                    f"mode {m}: extent {d} not divisible by block size {b}"
                )
        self.grid = tuple(
            d // b for d, b in zip(self.shape, self.block_shape)
        )
        self.blocks: Dict[BlockKey, np.ndarray] = {}
        if blocks:
            for key, arr in blocks.items():
                self.set_block(key, arr)

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def num_blocks(self) -> int:
        """Number of stored (non-zero) blocks."""
        return len(self.blocks)

    @property
    def nnz(self) -> int:
        """Number of non-zero *elements* across all stored blocks."""
        return int(sum(np.count_nonzero(b) for b in self.blocks.values()))

    @property
    def stored_elements(self) -> int:
        """Number of stored elements (dense block volume x block count)."""
        vol = 1
        for b in self.block_shape:
            vol *= b
        return vol * self.num_blocks

    @property
    def nbytes(self) -> int:
        """Bytes held by stored blocks."""
        return int(sum(b.nbytes for b in self.blocks.values()))

    def set_block(self, key: BlockKey, arr: np.ndarray) -> None:
        """Store a dense block at block-coordinates *key*."""
        key = tuple(int(k) for k in key)
        if len(key) != self.order:
            raise ShapeError(
                f"block key {key} has wrong length for order {self.order}"
            )
        for m, (k, g) in enumerate(zip(key, self.grid)):
            if not 0 <= k < g:
                raise ShapeError(
                    f"block key {key}: coordinate {k} out of grid {self.grid}"
                )
        arr = np.asarray(arr, dtype=VALUE_DTYPE)
        if arr.shape != self.block_shape:
            raise ShapeError(
                f"block shape {arr.shape} != tile shape {self.block_shape}"
            )
        self.blocks[key] = arr

    def block_keys(self) -> Iterable[BlockKey]:
        """Iterate stored block coordinates."""
        return self.blocks.keys()

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        block_shape: Sequence[int],
        *,
        cutoff: float = 0.0,
    ) -> "BlockSparseTensor":
        """Tile a dense array, keeping blocks with any ``|v| > cutoff``."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        out = cls(dense.shape, block_shape)
        for key in np.ndindex(*out.grid):
            sl = tuple(
                slice(k * b, (k + 1) * b)
                for k, b in zip(key, out.block_shape)
            )
            block = dense[sl]
            if np.any(np.abs(block) > cutoff):
                out.set_block(key, block.copy())
        return out

    @classmethod
    def from_coo(
        cls, tensor: SparseTensor, block_shape: Sequence[int]
    ) -> "BlockSparseTensor":
        """Tile a COO tensor; only blocks containing non-zeros are stored."""
        out = cls(tensor.shape, block_shape)
        if tensor.nnz == 0:
            return out
        bs = np.asarray(block_shape, dtype=INDEX_DTYPE)
        bkeys = tensor.indices // bs
        local = tensor.indices - bkeys * bs
        # Group by block key via lexsort.
        perm = np.lexsort(tuple(bkeys[:, m] for m in range(tensor.order - 1, -1, -1)))
        bkeys = bkeys[perm]
        local = local[perm]
        vals = tensor.values[perm]
        new_group = np.any(bkeys[1:] != bkeys[:-1], axis=1)
        starts = np.flatnonzero(np.concatenate(([True], new_group)))
        ends = np.concatenate((starts[1:], [tensor.nnz]))
        for s, e in zip(starts, ends):
            key = tuple(int(k) for k in bkeys[s])
            block = np.zeros(out.block_shape, dtype=VALUE_DTYPE)
            np.add.at(block, tuple(local[s:e].T), vals[s:e])
            out.set_block(key, block)
        return out

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense array."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        for key, block in self.blocks.items():
            sl = tuple(
                slice(k * b, (k + 1) * b)
                for k, b in zip(key, self.block_shape)
            )
            out[sl] += block
        return out

    def to_coo(self, *, cutoff: float = 0.0) -> SparseTensor:
        """Flatten stored blocks into an element-wise COO tensor."""
        rows = []
        vals = []
        for key, block in self.blocks.items():
            mask = np.abs(block) > cutoff
            if not mask.any():
                continue
            local = np.argwhere(mask).astype(INDEX_DTYPE)
            offset = np.asarray(
                [k * b for k, b in zip(key, self.block_shape)],
                dtype=INDEX_DTYPE,
            )
            rows.append(local + offset)
            vals.append(block[mask])
        if not rows:
            return SparseTensor.empty(self.shape)
        return SparseTensor(
            np.concatenate(rows),
            np.concatenate(vals).astype(VALUE_DTYPE),
            self.shape,
            copy=False,
            validate=False,
        ).sort()

    def prune(self, cutoff: float) -> "BlockSparseTensor":
        """Zero out elements ``<= cutoff`` and drop all-zero blocks.

        Mirrors the paper's preparation of Hubbard-2D tensors ("formed by
        cutting off values smaller than 1e-8").
        """
        out = BlockSparseTensor(self.shape, self.block_shape)
        for key, block in self.blocks.items():
            kept = np.where(np.abs(block) > cutoff, block, 0.0)
            if np.any(kept):
                out.set_block(key, kept)
        return out
