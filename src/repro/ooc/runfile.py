"""Spill run files: header + packed key/value arrays, mmap-readable.

One run file holds any number of *runs*; a run is an ordered set of
named 1-D arrays (a fused chunk's ``fgrp``/``fy``/``vals`` triple, a
stage-1 partial's four arrays, ...). The layout is append-friendly —
writers stream raw array bytes through a buffered file handle (the
kernel page cache absorbs them; the writing process's RSS stays flat)
and the directory goes at the *end*:

.. code-block:: text

    magic "SPTCRUN1"
    run 0 array bytes ... (each 8-byte aligned)
    run 1 array bytes ...
    directory (JSON: per run, per array: name, dtype, offset, count)
    trailer: uint64 directory offset, uint64 directory length, magic

Readers map arrays with ``np.memmap(mode="r")`` straight out of the
file — zero-copy, demand-paged — and can drop consumed pages with
:meth:`RunFileReader.release` (``madvise(MADV_DONTNEED)``), which is
what bounds resident memory during the streaming merge. The same
format serves the merge tree, the per-worker spill files of the
process backend, and the serialized HtY partials.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SpillError

__all__ = [
    "FusedRunRef",
    "RunFileReader",
    "RunFileWriter",
    "load_fused_ref",
    "spill_fused_range",
]

_MAGIC = b"SPTCRUN1"
_TRAILER = struct.Struct("<QQ8s")
_ALIGN = 8

#: buffered-write size: big enough that array bytes stream through the
#: page cache in few syscalls, small enough to keep writer RSS flat
_WRITE_BUFFER = 1 << 20


class RunFileWriter:
    """Append runs of named arrays to one spill file.

    Not thread-safe; one writer per file. ``close()`` (or the context
    manager) seals the file by appending the directory and trailer —
    an unsealed file is detected by readers and rejected, which is how
    a worker killed mid-write is distinguished from a complete run.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "wb", buffering=_WRITE_BUFFER)
        self._fh.write(_MAGIC)
        self._offset = len(_MAGIC)
        self._dir: List[List[dict]] = []
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def run_count(self) -> int:
        return len(self._dir)

    @property
    def bytes_written(self) -> int:
        return self._offset

    def append_run(self, arrays: Dict[str, np.ndarray]) -> int:
        """Write one run; returns its index within this file."""
        if self._closed:
            raise SpillError(f"run file {self.path} already sealed")
        entries = []
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            if arr.ndim != 1:
                arr = arr.reshape(-1)
            pad = (-self._offset) % _ALIGN
            if pad:
                self._fh.write(b"\0" * pad)
                self._offset += pad
            entries.append(
                {
                    "name": str(name),
                    "dtype": arr.dtype.str,
                    "offset": self._offset,
                    "count": int(arr.shape[0]),
                }
            )
            self._fh.write(memoryview(arr).cast("B"))
            self._offset += arr.nbytes
        self._dir.append(entries)
        return len(self._dir) - 1

    def close(self) -> None:
        """Seal the file: append directory + trailer, flush, close."""
        if self._closed:
            return
        payload = json.dumps({"runs": self._dir}).encode("utf-8")
        self._fh.write(payload)
        self._fh.write(_TRAILER.pack(self._offset, len(payload), _MAGIC))
        self._fh.flush()
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "RunFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RunFileReader:
    """Memory-map runs out of a sealed run file.

    Arrays come back as read-only ``np.memmap`` views — demand-paged,
    so opening a reader costs O(directory), not O(data). ``release()``
    advises the kernel to drop the file's resident pages once a run has
    been consumed; ``close()`` drops every mapping reference (the
    arrays themselves keep their own mmap alive if still referenced).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        size = os.path.getsize(self.path)
        if size < len(_MAGIC) + _TRAILER.size:
            raise SpillError(f"run file {self.path} truncated ({size} B)")
        with open(self.path, "rb") as fh:
            if fh.read(len(_MAGIC)) != _MAGIC:
                raise SpillError(f"run file {self.path}: bad magic")
            fh.seek(size - _TRAILER.size)
            dir_off, dir_len, tail = _TRAILER.unpack(fh.read(_TRAILER.size))
            if tail != _MAGIC or dir_off + dir_len > size:
                raise SpillError(
                    f"run file {self.path}: unsealed or corrupt trailer"
                )
            fh.seek(dir_off)
            try:
                directory = json.loads(fh.read(dir_len).decode("utf-8"))
            except ValueError as exc:
                raise SpillError(
                    f"run file {self.path}: corrupt directory"
                ) from exc
        self._dir: List[List[dict]] = directory["runs"]
        self._maps: List[np.memmap] = []

    # ------------------------------------------------------------------
    @property
    def num_runs(self) -> int:
        return len(self._dir)

    def run(self, index: int) -> Dict[str, np.ndarray]:
        """Map run *index*'s arrays by name (read-only views)."""
        try:
            entries = self._dir[index]
        except IndexError:
            raise SpillError(
                f"run file {self.path}: no run {index} "
                f"(have {self.num_runs})"
            ) from None
        out: Dict[str, np.ndarray] = {}
        for e in entries:
            dtype = np.dtype(e["dtype"])
            count = int(e["count"])
            if count == 0:
                out[e["name"]] = np.empty(0, dtype=dtype)
                continue
            mapped = np.memmap(
                self.path,
                dtype=dtype,
                mode="r",
                offset=int(e["offset"]),
                shape=(count,),
            )
            self._maps.append(mapped)
            out[e["name"]] = mapped
        return out

    def release(self) -> None:
        """Advise the kernel to drop this reader's resident pages."""
        for mapped in self._maps:
            mm = getattr(mapped, "_mmap", None)
            if mm is not None:
                try:
                    mm.madvise(mmap.MADV_DONTNEED)
                except (AttributeError, OSError, ValueError):
                    pass  # madvise is advisory; absence is fine

    def close(self) -> None:
        self.release()
        self._maps = []

    def __enter__(self) -> "RunFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# fused-chunk spill refs (shipped over worker pipes instead of arrays)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedRunRef:
    """Pointer to one spilled fused chunk plus its scalar statistics.

    Everything a :class:`~repro.core.kernels.FusedRange` carries except
    the arrays themselves, which live in ``path`` (a single-run file).
    Picklable, so process workers ship this over their result pipes and
    the parent maps the arrays lazily — the payload digest shipped
    alongside still covers the *array contents*, so the existing
    corrupt-payload recovery applies unchanged after mapping.
    """

    path: str
    nnz: int
    products: int
    accum_probes: int
    max_group_output: int
    spa_peak_bytes: int
    search_seconds: float
    accum_seconds: float


def spill_fused_range(fr, path: str) -> FusedRunRef:
    """Write one fused chunk's arrays to *path* (single-run file)."""
    with RunFileWriter(path) as w:
        w.append_run(
            {"fgrp": fr.out_fgrp, "fy": fr.out_fy, "vals": fr.out_vals}
        )
    return FusedRunRef(
        path=str(path),
        nnz=int(fr.nnz),
        products=int(fr.products),
        accum_probes=int(fr.accum_probes),
        max_group_output=int(fr.max_group_output),
        spa_peak_bytes=int(fr.spa_peak_bytes),
        search_seconds=float(fr.search_seconds),
        accum_seconds=float(fr.accum_seconds),
    )


def load_fused_ref(ref: FusedRunRef):
    """Re-map a spilled fused chunk as a FusedRange over mmapped arrays."""
    from repro.core.kernels import FusedRange

    reader = RunFileReader(ref.path)
    arrs = reader.run(0)
    return FusedRange(
        out_fgrp=arrs["fgrp"],
        out_fy=arrs["fy"],
        out_vals=arrs["vals"],
        products=ref.products,
        accum_probes=ref.accum_probes,
        max_group_output=ref.max_group_output,
        spa_peak_bytes=ref.spa_peak_bytes,
        search_seconds=ref.search_seconds,
        accum_seconds=ref.accum_seconds,
    )
