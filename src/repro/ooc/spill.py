"""Spill-directory lifecycle and accounting.

A :class:`SpillManager` owns one temporary directory for a single
contraction (or one worker pool): every run file the engine writes
lives under it, its counters feed the run profile
(``ooc_spill_bytes`` / ``ooc_runs`` / ``ooc_run_files``), and
``close()`` removes the whole tree — the leak check in
``benchmarks/bench_ooc.py`` asserts nothing survives it, including
after an injected worker crash (respawned workers write fresh,
uniquely named files; the orphans of the killed worker die with the
directory).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict, Optional

from .runfile import RunFileReader, RunFileWriter

__all__ = ["SpillManager"]


class SpillManager:
    """Owns a spill directory; hands out writers and tallies bytes."""

    def __init__(
        self,
        spill_root: Optional[str] = None,
        *,
        prefix: str = "sptc-ooc-",
    ) -> None:
        if spill_root is not None:
            os.makedirs(spill_root, exist_ok=True)
        self.root = tempfile.mkdtemp(prefix=prefix, dir=spill_root)
        self.spilled_bytes = 0
        self.run_count = 0
        self.file_count = 0
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    def path(self, name: str) -> str:
        """A unique file path under the spill directory."""
        self._seq += 1
        return os.path.join(self.root, f"{self._seq:04d}_{name}")

    def writer(self, name: str) -> RunFileWriter:
        """Open a new run-file writer; call :meth:`account` on close."""
        self.file_count += 1
        return RunFileWriter(self.path(name))

    def account(self, writer: RunFileWriter) -> None:
        """Fold a sealed writer's totals into the spill counters."""
        self.spilled_bytes += writer.bytes_written
        self.run_count += writer.run_count

    def account_file(self, path: str) -> RunFileReader:
        """Open + tally a run file written elsewhere (a worker's)."""
        reader = RunFileReader(path)
        self.file_count += 1
        self.run_count += reader.num_runs
        self.spilled_bytes += os.path.getsize(path)
        return reader

    # ------------------------------------------------------------------
    def counters(self, prefix: str = "ooc") -> Dict[str, int]:
        return {
            f"{prefix}_spill_bytes": int(self.spilled_bytes),
            f"{prefix}_runs": int(self.run_count),
            f"{prefix}_run_files": int(self.file_count),
        }

    def close(self) -> None:
        """Remove the spill directory and everything under it."""
        if self._closed:
            return
        shutil.rmtree(self.root, ignore_errors=True)
        self._closed = True

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
