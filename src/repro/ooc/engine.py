"""Budget-capped out-of-core Sparta: the streaming five-stage pipeline.

:func:`ooc_contract` is the serial fused engine re-plumbed so no stage
ever holds the full working set:

* **stage 1** — X is prepared as usual (its footprint is charged to the
  budget); HtY is built *partition-by-partition*: each Y span's partial
  grouping is spilled to a run file as soon as it is built, then the
  partials are merged straight off their memory maps (the merge is the
  PR 3 ``merge_partials``, bit-identical to a serial ``from_coo``), and
  the merged table's bulk payload arrays (``free_ln``/``values``) are
  demoted back to disk and re-mapped read-only — only the hash chains,
  group pointers and X stay resident;
* **stages 2–4** — the sub-tensor loop runs in budget-sized chunks
  through the unmodified :func:`~repro.core.kernels.fused_compute`;
  each chunk's sorted ``(fgrp, fy, vals)`` output is appended to a spill
  run and dropped from memory;
* **stage 5** — a streaming k-way merge over the mmapped runs
  (:func:`~repro.ooc.merge.stream_merge_fused`) assembles and writes
  the final COO arrays *incrementally* to two raw files, which are then
  mapped and immediately unlinked — the returned tensor stays valid,
  the spill directory is removed without orphans, and the full
  accumulator is never materialized.

Chunks cover disjoint ascending sub-tensor ranges, so the concatenation
of the per-chunk outputs is exactly the serial fused output (the same
argument the parallel executor's gather rests on), all probe/product
counters sum to the serial totals, and every Table-2 traffic cell is
charged through the identical shared helpers with identical totals —
results and traffic are byte-exact against the in-core engines.

When :func:`~repro.planner.ooc.plan_ooc` estimates the working set fits
the budget (and ``force_spill`` is off), the call routes to the in-core
:func:`~repro.core.looped.looped_contract` unchanged — budgeted
execution costs nothing when spilling would not help.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.common import _sort_passes, coo_row_bytes, prepare_x
from repro.core.htycache import cached_plan
from repro.core.kernels import (
    fused_compute,
    hta_model_nbytes,
    record_computation_traffic,
    record_hty_build,
)
from repro.core.looped import looped_contract
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.hashtable.tensor_table import (
    HashTensor,
    PartialGroups,
    build_partial_groups,
    split_contract_modes,
)
from repro.obs.tracer import (
    CAT_CONTRACTION,
    CAT_SPILL,
    NULL_TRACER,
    Tracer,
)
from repro.planner.ooc import OocDecision, plan_ooc
from repro.planner.stats import contraction_stats
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import delinearize
from repro.types import INDEX_DTYPE, VALUE_DTYPE

from .budget import MemoryBudget
from .merge import DEFAULT_BLOCK_ROWS, stream_merge_fused
from .runfile import RunFileReader
from .spill import SpillManager

__all__ = ["ooc_contract", "stream_finalize"]

ENGINE_NAME = "sparta"


def _fy_span(fy_dims: Sequence[int]) -> int:
    span = 1
    for d in fy_dims:
        span *= int(d)
    return max(span, 1)


def _even_spans(n: int, k: int) -> List[Tuple[int, int]]:
    k = max(min(int(k), int(n)), 1)
    bounds = [(i * n) // k for i in range(k + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(k)
        if bounds[i + 1] > bounds[i]
    ]


def _px_nbytes(px) -> int:
    return int(
        px.ptr.nbytes + px.fx_rows.nbytes + px.cx_ln.nbytes
        + px.values.nbytes
    )


def _build_hty_spilled(
    y: SparseTensor,
    cy: Sequence[int],
    decision: OocDecision,
    spill: SpillManager,
    budget: MemoryBudget,
    num_buckets: Optional[int],
    tr: Tracer,
    clock,
) -> HashTensor:
    """Stage 1 for Y: spill per-span partials, merge from their maps.

    The merge reproduces the exact serial ``from_coo`` build (partials
    cover consecutive disjoint spans; see
    :meth:`HashTensor.merge_partials`). The merged table's payload
    arrays — the O(nnz_Y) bulk — are then demoted to a spill file and
    re-mapped read-only, so stage 2's group streams are demand-paged
    while the chains and group pointers stay resident for O(1) lookup.
    """
    cmodes, fmodes, cdims, fdims = split_contract_modes(
        y.order, y.shape, cy
    )
    t0 = clock()
    writer = spill.writer("hty_partials.runs")
    for lo, hi in _even_spans(y.nnz, decision.num_y_spans):
        pg = build_partial_groups(
            y.indices, y.values, cmodes, fmodes, cdims, fdims, lo, hi
        )
        pg_bytes = (
            pg.group_keys.nbytes + pg.group_ptr.nbytes
            + pg.free_ln.nbytes + pg.values.nbytes
        )
        with budget.hold("hty_partial", pg_bytes):
            writer.append_run(
                {
                    "group_keys": pg.group_keys,
                    "group_ptr": pg.group_ptr,
                    "free_ln": pg.free_ln,
                    "values": pg.values,
                }
            )
        del pg
    writer.close()
    spill.account(writer)
    tr.add_span(
        "spill_partials", start=t0, end=clock(), cat=CAT_SPILL,
        spans=int(decision.num_y_spans), bytes=int(writer.bytes_written),
    )
    reader = RunFileReader(writer.path)
    partials = []
    for i in range(reader.num_runs):
        arrs = reader.run(i)
        partials.append(
            PartialGroups(
                arrs["group_keys"], arrs["group_ptr"],
                arrs["free_ln"], arrs["values"],
            )
        )
    hty = HashTensor.merge_partials(
        partials, fdims, cdims, num_buckets=num_buckets
    )
    reader.close()
    budget.charge("hty", hty.nbytes)
    # Demote the payload bulk to disk; lookups stay O(1) in RAM.
    payload_bytes = int(hty.free_ln.nbytes + hty.values.nbytes)
    if payload_bytes:
        pw = spill.writer("hty_payload.run")
        pw.append_run({"free_ln": hty.free_ln, "values": hty.values})
        pw.close()
        spill.account(pw)
        pr = RunFileReader(pw.path)
        arrs = pr.run(0)
        hty.free_ln = arrs["free_ln"]
        hty.values = arrs["values"]
        budget.release("hty", payload_bytes)
    return hty


def stream_finalize(
    runs: List[Dict[str, np.ndarray]],
    fx_rows: np.ndarray,
    plan,
    profile: RunProfile,
    spill: SpillManager,
    *,
    sort_output: bool,
    clock=time.perf_counter,
    tracer: Optional[Tracer] = None,
    zlocal_peak_bytes: Optional[int] = None,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> SparseTensor:
    """Stages 4–5 as a streaming merge-assemble-append over sorted runs.

    Byte-identical replacement for ``merge_fused_runs`` +
    ``assemble_fused`` + ``z.sort()``: merged blocks are assembled to
    COO rows (same ``fx_rows`` gather and ``delinearize`` arithmetic)
    and appended to two raw files, which are mapped back and unlinked —
    the returned tensor owns the last references to their inodes, so
    the spill directory cleanup leaves nothing behind. Charges exactly
    the traffic `assemble_fused` and the stage-5 sort charge, with
    ``zlocal_peak_bytes`` overriding the Z_local object size for
    callers whose locals are per-worker (the parallel executor), as in
    ``assemble_fused``.
    """
    tr = NULL_TRACER if tracer is None else tracer
    nfx = len(plan.fx)
    out_order = plan.out_order
    fy_span = _fy_span(plan.fy_dims)
    idx_path = spill.path("z_indices.bin")
    val_path = spill.path("z_values.bin")
    total = 0
    t0 = clock()
    with open(idx_path, "wb", buffering=1 << 20) as fi, open(
        val_path, "wb", buffering=1 << 20
    ) as fv:
        for fgrp_blk, fy_blk, vals_blk in stream_merge_fused(
            runs, fy_span, block_rows=block_rows
        ):
            n = int(fgrp_blk.shape[0])
            indices = np.empty((n, out_order), dtype=INDEX_DTYPE)
            indices[:, :nfx] = fx_rows[fgrp_blk]
            indices[:, nfx:] = delinearize(
                fy_blk.astype(INDEX_DTYPE, copy=False), plan.fy_dims
            )
            fi.write(memoryview(indices).cast("B"))
            fv.write(
                memoryview(
                    np.ascontiguousarray(
                        vals_blk.astype(VALUE_DTYPE, copy=False)
                    )
                ).cast("B")
            )
            total += n
    t1 = clock()
    spill.spilled_bytes += total * (8 * out_order + 8)
    tr.add_span(
        "stream_merge", start=t0, end=t1, cat=CAT_SPILL,
        rows=int(total), runs=len(runs),
    )
    if total:
        indices = np.memmap(
            idx_path, dtype=INDEX_DTYPE, mode="r",
            shape=(total, out_order),
        )
        values = np.memmap(
            val_path, dtype=VALUE_DTYPE, mode="r", shape=(total,)
        )
        # POSIX keeps the inodes alive while mapped: the tensor stays
        # valid, and the spill dir can be removed without orphans.
        os.unlink(idx_path)
        os.unlink(val_path)
    else:
        indices = np.empty((0, out_order), dtype=INDEX_DTYPE)
        values = np.empty(0, dtype=VALUE_DTYPE)
        for p in (idx_path, val_path):
            if os.path.exists(p):
                os.unlink(p)
    z = SparseTensor(
        indices, values, plan.out_shape, copy=False, validate=False
    )

    # --- assemble_fused's exact writeback accounting -------------------
    rowb = coo_row_bytes(out_order)
    profile.bump("nnz_z", total)
    profile.note_object_bytes(DataObject.Z, total * rowb)
    zl_bytes = total * (8 * nfx + 16)
    profile.note_object_bytes(
        DataObject.Z_LOCAL,
        zl_bytes if zlocal_peak_bytes is None else zlocal_peak_bytes,
    )
    profile.record_traffic(
        DataObject.Z_LOCAL, Stage.WRITEBACK, AccessKind.READ,
        AccessPattern.SEQUENTIAL, total * rowb,
    )
    profile.record_traffic(
        DataObject.Z, Stage.WRITEBACK, AccessKind.WRITE,
        AccessPattern.SEQUENTIAL, total * rowb,
    )
    profile.add_time(Stage.WRITEBACK, t1 - t0)
    tr.add_span(Stage.WRITEBACK.value, start=t0, end=t1,
                measured="streamed")
    if sort_output:
        # The streaming merge *is* the stage-5 sort; charge the sort's
        # access signature so Table-2 cells stay byte-exact with the
        # in-core engines (same rule as the executor's merge path).
        passes = _sort_passes(total)
        profile.add_time(Stage.OUTPUT_SORTING, 0.0)
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.READ,
            AccessPattern.RANDOM, int(total * rowb * passes),
        )
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.WRITE,
            AccessPattern.RANDOM, int(total * rowb * passes),
        )
    return z


def ooc_contract(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    memory_budget: Union[int, str, MemoryBudget],
    sort_output: bool = True,
    swap_larger_to_y: bool = False,
    num_buckets: Optional[int] = None,
    accumulator_buckets: Optional[int] = None,
    spill_root: Optional[str] = None,
    force_spill: bool = False,
    codegen: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
    engine_name: str = ENGINE_NAME,
) -> ContractionResult:
    """Contract under a hard memory budget, spilling when needed.

    ``memory_budget`` caps the engine's live working set (bytes, or a
    ``"64M"``-style string, or a pre-built :class:`MemoryBudget` —
    shared accountants let callers pool several contractions under one
    cap). :func:`~repro.planner.ooc.plan_ooc` routes the call: a
    working set that fits runs the unmodified in-core engine
    (``flags["ooc"] = "in_core"``); otherwise the streaming spill
    pipeline runs (``flags["ooc"] = "spill"``). ``force_spill`` pins
    the spill path for tests and benchmarks. Results and Table-2
    traffic are byte-exact against the in-core engine either way.

    ``swap_larger_to_y`` applies the §3.3 larger-operand rule exactly
    like :func:`repro.core.sparta.sparta`; note the post-swap output
    permutation+sort materializes Z in memory, so budget-critical
    callers should orient operands so no swap triggers.
    """
    budget = (
        memory_budget
        if isinstance(memory_budget, MemoryBudget)
        else MemoryBudget(memory_budget)
    )
    if swap_larger_to_y and x.nnz > y.nnz:
        plan = cached_plan(x, y, cx, cy)
        res = ooc_contract(
            y, x, cy, cx,
            memory_budget=budget,
            sort_output=False,
            num_buckets=num_buckets,
            accumulator_buckets=accumulator_buckets,
            spill_root=spill_root,
            force_spill=force_spill,
            codegen=codegen,
            tracer=tracer,
            engine_name=engine_name,
        )
        tr = NULL_TRACER if tracer is None else tracer
        with tr.span(Stage.OUTPUT_SORTING.value, swapped=True):
            z = res.tensor.permute(plan.swap_output_permutation())
            if sort_output:
                z = z.sort()
        res.tensor = z
        res.plan = plan
        res.profile.counters["swapped_operands"] = 1
        return res

    plan = cached_plan(x, y, cx, cy)
    stats = contraction_stats(x, y, plan)
    decision = plan_ooc(stats, budget.cap, force_spill=force_spill)

    if not decision.out_of_core:
        res = looped_contract(
            x, y, cx, cy,
            engine_name=engine_name,
            y_structure="hash",
            accumulator="hash",
            sort_output=sort_output,
            num_buckets=num_buckets,
            accumulator_buckets=accumulator_buckets,
            codegen=codegen,
            tracer=tracer,
        )
        res.profile.set_flag("ooc", "in_core")
        res.profile.counters.update(decision.counters())
        res.profile.counters.update(budget.counters())
        return res

    profile = RunProfile(engine_name)
    tr = NULL_TRACER if tracer is None else tracer
    clock = time.perf_counter
    t_root = clock()
    spill = SpillManager(spill_root)
    try:
        # ---------------- stage 1: input processing ------------------
        t0 = clock()
        px = prepare_x(x, plan, profile)
        px_bytes = budget.charge("prepared_x", _px_nbytes(px))
        hty = _build_hty_spilled(
            y, plan.cy, decision, spill, budget, num_buckets, tr, clock
        )
        record_hty_build(y, hty, profile, cached=False)
        hty_probes0 = hty.table.probes
        t1 = clock()
        profile.add_time(Stage.INPUT_PROCESSING, t1 - t0)
        tr.add_span(Stage.INPUT_PROCESSING.value, start=t0, end=t1)
        profile.bump("num_subtensors", px.num_subtensors)

        # ------------- stages 2-4: chunked compute + spill ------------
        tc0 = clock()
        from repro.parallel.partition import partition_subtensors

        ranges = partition_subtensors(px.ptr, decision.num_chunks)
        writer = spill.writer("fused.runs")
        products = 0
        accum_probes = 0
        max_out = 0
        zlocal_rows = 0
        for lo, hi in ranges:
            fr = fused_compute(
                px,
                hty,
                y_structure="hash",
                accumulator="hash",
                profile=profile,
                accumulator_buckets=accumulator_buckets,
                lo=lo,
                hi=hi,
                chunk_pairs=decision.chunk_pairs,
                codegen=codegen,
                clock=clock,
            )
            profile.add_time(Stage.INDEX_SEARCH, fr.search_seconds)
            profile.add_time(Stage.ACCUMULATION, fr.accum_seconds)
            fr_bytes = (
                fr.out_fgrp.nbytes + fr.out_fy.nbytes
                + fr.out_vals.nbytes
            )
            ts = clock()
            with budget.hold("fused_chunk", fr_bytes):
                writer.append_run(
                    {
                        "fgrp": fr.out_fgrp,
                        "fy": fr.out_fy,
                        "vals": fr.out_vals,
                    }
                )
            tr.add_span(
                "spill_run", start=ts, end=clock(), cat=CAT_SPILL,
                rows=int(fr.nnz), bytes=int(fr_bytes),
            )
            products += fr.products
            accum_probes += fr.accum_probes
            max_out = max(max_out, fr.max_group_output)
            zlocal_rows += fr.nnz
            del fr
        writer.close()
        spill.account(writer)
        profile.bump("products", products)
        profile.bump("accum_probes", accum_probes)
        if tr.enabled:
            t = tc0
            for st in (Stage.INDEX_SEARCH, Stage.ACCUMULATION):
                d = float(profile.stage_seconds.get(st, 0.0))
                tr.add_span(st.value, start=t, end=t + d,
                            measured="aggregate")
                t += d

        # ------------- stages 4-5: streaming merge writeback ----------
        reader = RunFileReader(writer.path)
        runs = [reader.run(i) for i in range(reader.num_runs)]
        z = stream_finalize(
            runs,
            px.fx_rows,
            plan,
            profile,
            spill,
            sort_output=sort_output,
            clock=clock,
            tracer=tr,
        )
        reader.close()
        profile.counters["hash_probes"] = hty.table.probes - hty_probes0
        record_computation_traffic(
            plan,
            profile,
            x,
            uses_hty=True,
            products=products,
            hta_peak_bytes=hta_model_nbytes(
                max_out, accumulator_buckets
            ),
            created=z.nnz,
        )
        profile.set_flag("ooc", "spill")
        profile.counters.update(decision.counters())
        profile.counters.update(spill.counters())
        profile.counters.update(budget.counters())
        # Shared accountants outlive this run: return its residents.
        budget.release("prepared_x", px_bytes)
        budget.release("hty", hty.group_ptr.nbytes + hty.table.nbytes)
        tr.add_span(
            engine_name,
            start=t_root,
            end=clock(),
            cat=CAT_CONTRACTION,
            engine=engine_name,
            ooc="spill",
            nnz_out=int(z.nnz),
        )
        return ContractionResult(z, profile, plan)
    finally:
        spill.close()
