"""Live-allocation accountant for budget-capped execution.

The out-of-core engine never *enforces* the budget by refusing work —
it *plans* around it (run sizes, span counts, in-core vs. spill) and
uses :class:`MemoryBudget` to account every large live allocation so
the run can report how close it came. ``strict=True`` turns overruns
into :class:`~repro.errors.MemoryBudgetError` for tests that pin the
engine's sizing logic; the default records an ``overruns`` counter and
continues, because a single unsplittable allocation (one sub-tensor's
output, the hash-table heads) may legitimately exceed a tiny budget.

Budgets are parsed from human strings (``"64M"``, ``"1.5GiB"``,
``"250000"``) by :func:`parse_budget`, shared by ``contract`` and the
``ttt --memory-budget`` flag.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

from repro.errors import MemoryBudgetError, ShapeError

__all__ = ["MemoryBudget", "parse_budget"]

_UNIT_BYTES = {
    "": 1,
    "b": 1,
    "k": 1 << 10,
    "kb": 1 << 10,
    "kib": 1 << 10,
    "m": 1 << 20,
    "mb": 1 << 20,
    "mib": 1 << 20,
    "g": 1 << 30,
    "gb": 1 << 30,
    "gib": 1 << 30,
}

_BUDGET_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_budget(value: Union[int, float, str]) -> int:
    """Parse a budget spec into bytes.

    Accepts plain byte counts (``1048576``) and unit-suffixed strings
    (``"64M"``, ``"1.5GiB"``, ``"512kb"``; units are powers of two).
    """
    if isinstance(value, (int, float)):
        nbytes = int(value)
    else:
        m = _BUDGET_RE.match(str(value))
        if m is None:
            raise ShapeError(
                f"cannot parse memory budget {value!r}; use bytes or a "
                "K/M/G-suffixed size like '64M'"
            )
        number, unit = m.groups()
        try:
            scale = _UNIT_BYTES[unit.lower()]
        except KeyError:
            raise ShapeError(
                f"unknown memory-budget unit {unit!r} in {value!r}; "
                f"choose from {sorted(u for u in _UNIT_BYTES if u)}"
            ) from None
        nbytes = int(float(number) * scale)
    if nbytes <= 0:
        raise ShapeError(
            f"memory budget must be positive, got {nbytes} bytes"
        )
    return nbytes


class MemoryBudget:
    """Charge/release accounting of live engine allocations against a cap.

    Tracks the current total, the peak, per-label peaks, and how often
    a charge pushed the total past the cap. The accountant covers the
    engine's *own* large allocations (prepared X, HtY, chunk outputs,
    merge windows) — operands the caller already holds are sunk cost
    and are not charged.
    """

    def __init__(
        self, cap_bytes: Union[int, float, str], *, strict: bool = False
    ) -> None:
        self.cap = parse_budget(cap_bytes)
        self.strict = bool(strict)
        self.used = 0
        self.peak = 0
        self.overruns = 0
        self.charges = 0
        self._by_label: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def charge(self, label: str, nbytes: int) -> int:
        """Account *nbytes* of a live allocation under *label*."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ShapeError(f"cannot charge {nbytes} bytes")
        self.used += nbytes
        self.charges += 1
        self._by_label[label] = self._by_label.get(label, 0) + nbytes
        if self.used > self.peak:
            self.peak = self.used
        if self.used > self.cap:
            self.overruns += 1
            if self.strict:
                raise MemoryBudgetError(
                    f"budget of {self.cap} bytes exceeded: {self.used} "
                    f"bytes live after charging {nbytes} for {label!r}"
                )
        return nbytes

    def release(self, label: str, nbytes: int) -> None:
        """Release a previously charged allocation."""
        nbytes = int(nbytes)
        self.used = max(self.used - nbytes, 0)
        left = self._by_label.get(label, 0) - nbytes
        if left > 0:
            self._by_label[label] = left
        else:
            self._by_label.pop(label, None)

    @contextmanager
    def hold(self, label: str, nbytes: int) -> Iterator[None]:
        """Charge for the duration of a ``with`` block."""
        self.charge(label, nbytes)
        try:
            yield
        finally:
            self.release(label, nbytes)

    # ------------------------------------------------------------------
    def fits(self, nbytes: int) -> bool:
        """Would charging *nbytes* stay within the cap?"""
        return self.used + int(nbytes) <= self.cap

    @property
    def remaining(self) -> int:
        """Headroom left under the cap (0 when over)."""
        return max(self.cap - self.used, 0)

    def share(self, fraction: float, *, floor: int = 1 << 20) -> int:
        """A planning share of the cap: ``max(cap * fraction, floor)``.

        The engine sizes spill runs and merge windows from shares of
        the cap; the floor keeps degenerate budgets from producing
        byte-sized runs.
        """
        return max(int(self.cap * float(fraction)), int(floor))

    def subdivide(
        self,
        fractions: Dict[str, float],
        *,
        floor: int = 1 << 16,
        strict: bool = False,
    ) -> Dict[str, "MemoryBudget"]:
        """Independent child budgets capped at fractions of this cap.

        The serve layer hands each tenant a fixed share of the operand
        registry's budget: a tenant pinning against its own child
        budget can exhaust only its share, so backpressure stays
        per-tenant while the parent budget still bounds the total.
        Children account independently — charge the parent alongside a
        child when a global total is also needed.
        """
        children: Dict[str, MemoryBudget] = {}
        for label, fraction in fractions.items():
            if fraction <= 0:
                raise ShapeError(
                    f"budget fraction for {label!r} must be positive, "
                    f"got {fraction}"
                )
            children[label] = MemoryBudget(
                max(int(self.cap * float(fraction)), int(floor)),
                strict=strict,
            )
        return children

    def counters(self, prefix: str = "ooc_budget") -> Dict[str, int]:
        """Profile-counter snapshot (``<prefix>_*`` names)."""
        return {
            f"{prefix}_cap_bytes": int(self.cap),
            f"{prefix}_peak_bytes": int(self.peak),
            f"{prefix}_overruns": int(self.overruns),
            f"{prefix}_charges": int(self.charges),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryBudget(cap={self.cap}, used={self.used}, "
            f"peak={self.peak}, overruns={self.overruns})"
        )
