"""Streaming k-way merge over (mmapped) sorted fused runs.

Stage 5 of the out-of-core pipeline: the spilled per-chunk runs are
individually sorted by packed ``(fgrp, fy)`` key, and the merge must
produce the exact byte sequence the in-core path gets from
``merge_fused_runs`` + ``z.sort()`` — but without ever holding more
than one *block window* per run resident.

The round structure keeps the in-core merge's stability guarantees:

* each round picks a boundary key ``t`` = the minimum over runs of the
  last key in that run's current window, then consumes **all** keys
  ``<= t`` from **every** run — so no key value ever spans two rounds,
  and cross-run tie order (run order, the same rule
  :func:`~repro.parallel.merge.merge_sorted_runs` applies) is
  preserved round to round;
* inside a round the per-run slices are merged with the same stable
  pairwise merge tree the in-core path uses.

When the runs are already globally ordered (the executor's normal
disjoint-ascending-chunk case) the merge degenerates to streaming each
run through in sequence — no keys are even materialized.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.parallel.merge import merge_sorted_runs

__all__ = ["DEFAULT_BLOCK_ROWS", "stream_merge_fused"]

#: rows per merge window per run; 256k rows ≈ 6 MiB of key+fy+val
DEFAULT_BLOCK_ROWS = 1 << 18

_Block = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _packed(run: Dict[str, np.ndarray], lo: int, hi: int, span: np.int64):
    return (
        run["fgrp"][lo:hi].astype(np.int64) * span
        + run["fy"][lo:hi].astype(np.int64)
    )


def _key_at(run: Dict[str, np.ndarray], i: int, span: int) -> int:
    return int(run["fgrp"][i]) * span + int(run["fy"][i])


def stream_merge_fused(
    runs: Sequence[Dict[str, np.ndarray]],
    fy_span: int,
    *,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> Iterator[_Block]:
    """Yield globally sorted ``(fgrp, fy, vals)`` blocks from sorted runs.

    Each *run* maps ``"fgrp"``/``"fy"``/``"vals"`` to equally long
    sorted arrays (typically ``np.memmap`` views of spill files). The
    concatenation of the yielded blocks is byte-identical to what the
    in-core stable k-way merge of the same runs produces. Requires the
    packed key ``fgrp * fy_span + fy`` to fit in int64 — the engine
    checks that from the plan before choosing this path.
    """
    runs = [r for r in runs if r["fgrp"].shape[0]]
    if not runs:
        return
    span = max(int(fy_span), 1)
    nspan = np.int64(span)
    sizes = [r["fgrp"].shape[0] for r in runs]
    block_rows = max(int(block_rows), 1024)

    # Fast path: consecutive runs already globally ordered → stream
    # each run through in run order, touching only 2 scalars per pair.
    ordered = all(
        _key_at(runs[i], sizes[i] - 1, span)
        <= _key_at(runs[i + 1], 0, span)
        for i in range(len(runs) - 1)
    )
    if ordered:
        for r, n in zip(runs, sizes):
            for lo in range(0, n, block_rows):
                hi = min(lo + block_rows, n)
                yield (
                    np.asarray(r["fgrp"][lo:hi]),
                    np.asarray(r["fy"][lo:hi]),
                    np.asarray(r["vals"][lo:hi]),
                )
        return

    pos = [0] * len(runs)
    while True:
        active = [i for i in range(len(runs)) if pos[i] < sizes[i]]
        if not active:
            return
        # Round boundary: min over runs of the current window's last
        # key. Every key <= t is consumed this round from every run.
        t = min(
            _key_at(
                runs[i],
                min(pos[i] + block_rows, sizes[i]) - 1,
                span,
            )
            for i in active
        )
        key_slices: List[np.ndarray] = []
        taken: List[Tuple[int, int, int]] = []
        for i in active:
            run, lo, n = runs[i], pos[i], sizes[i]
            hi = min(lo + block_rows, n)
            # A duplicate tail equal to t may extend past the window;
            # widen until the cut is strictly below the window end.
            while hi < n and _key_at(run, hi - 1, span) <= t:
                hi = min(hi + block_rows, n)
            keys = _packed(run, lo, hi, nspan)
            cut = lo + int(np.searchsorted(keys, t, side="right"))
            if cut > lo:
                key_slices.append(keys[: cut - lo])
                taken.append((i, lo, cut))
                pos[i] = cut
        if not taken:  # pragma: no cover - t always consumes >= 1 row
            return
        if len(taken) == 1:
            i, lo, cut = taken[0]
            yield (
                np.asarray(runs[i]["fgrp"][lo:cut]),
                np.asarray(runs[i]["fy"][lo:cut]),
                np.asarray(runs[i]["vals"][lo:cut]),
            )
            continue
        _, gather = merge_sorted_runs(key_slices)
        fgrp = np.concatenate(
            [np.asarray(runs[i]["fgrp"][lo:cut]) for i, lo, cut in taken]
        )[gather]
        fy = np.concatenate(
            [np.asarray(runs[i]["fy"][lo:cut]) for i, lo, cut in taken]
        )[gather]
        vals = np.concatenate(
            [np.asarray(runs[i]["vals"][lo:cut]) for i, lo, cut in taken]
        )[gather]
        yield fgrp, fy, vals
