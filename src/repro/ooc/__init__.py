"""Out-of-core execution: spill files, memory budgets, streaming merge.

Sparta's whole point is contractions whose working set exceeds fast
memory; this package makes that real rather than simulated. The pieces:

* :class:`MemoryBudget` / :func:`parse_budget` — live-allocation
  accounting against a user cap (``contract(memory_budget=...)``,
  ``ttt --memory-budget``);
* :mod:`~repro.ooc.runfile` — the mmap-readable spill format (header +
  packed key/value arrays) shared by fused-chunk runs, HtY partials and
  the per-worker spill files of the process backend;
* :class:`SpillManager` — spill-directory lifecycle + byte accounting;
* :func:`stream_merge_fused` — the streaming stage-5 k-way merge;
* :func:`ooc_contract` — the budget-capped serial engine, byte-exact
  against the in-core engines in both results and Table-2 traffic.
"""

from repro.ooc.budget import MemoryBudget, parse_budget
from repro.ooc.engine import ooc_contract, stream_finalize
from repro.ooc.merge import DEFAULT_BLOCK_ROWS, stream_merge_fused
from repro.ooc.runfile import (
    FusedRunRef,
    RunFileReader,
    RunFileWriter,
    load_fused_ref,
    spill_fused_range,
)
from repro.ooc.spill import SpillManager

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "FusedRunRef",
    "MemoryBudget",
    "RunFileReader",
    "RunFileWriter",
    "SpillManager",
    "load_fused_ref",
    "ooc_contract",
    "parse_budget",
    "spill_fused_range",
    "stream_finalize",
    "stream_merge_fused",
]
