"""Baselines: ITensor-style block-sparse engine, SpGEMM substrate."""

from repro.baselines.itensor import (
    BlockContractionResult,
    block_contract,
    element_flops,
)
from repro.baselines.spgemm import CSRMatrix, spgemm

__all__ = [
    "BlockContractionResult",
    "CSRMatrix",
    "block_contract",
    "element_flops",
    "spgemm",
]
