"""SpGEMM — sparse matrix-matrix multiplication substrate.

SpTC is "a high-order extension of SpGEMM" (paper §1), and both the SPA
and the hash-table accumulator come from the SpGEMM literature (Gilbert et
al.; Nagasaka et al.). This module provides the order-2 case:

* a minimal CSR matrix type;
* Gustavson's row-wise algorithm with a pluggable accumulator (SPA
  dynamic array with linear search, or the chaining hash table).

Tests use it to cross-validate the tensor engines: an order-2 contraction
``Z = X ×_1^0 Y`` must equal the SpGEMM of the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Tuple

import numpy as np

from repro.errors import ContractionError, ShapeError
from repro.hashtable.accumulator import HashAccumulator
from repro.hashtable.spa import SparseAccumulator
from repro.tensor.coo import SparseTensor
from repro.types import INDEX_DTYPE, VALUE_DTYPE


@dataclass
class CSRMatrix:
    """Compressed sparse row matrix (indptr / indices / data)."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: Tuple[int, int]

    @property
    def nnz(self) -> int:
        """Stored non-zeros."""
        return int(self.data.shape[0])

    @classmethod
    def from_coo(cls, tensor: SparseTensor) -> "CSRMatrix":
        """Build from an order-2 COO tensor (duplicates coalesced)."""
        if tensor.order != 2:
            raise ShapeError(
                f"CSR needs an order-2 tensor, got order {tensor.order}"
            )
        t = tensor.coalesce()
        rows = t.indices[:, 0]
        n_rows = t.shape[0]
        indptr = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(
            indptr,
            t.indices[:, 1].copy(),
            t.values.copy(),
            (t.shape[0], t.shape[1]),
        )

    def to_coo(self) -> SparseTensor:
        """Back to an order-2 COO tensor."""
        rows = np.repeat(
            np.arange(self.shape[0], dtype=INDEX_DTYPE),
            np.diff(self.indptr),
        )
        return SparseTensor(
            np.column_stack((rows, self.indices)),
            self.data,
            self.shape,
            copy=False,
            validate=False,
        )

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row *i*."""
        s, e = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[s:e], self.data[s:e]

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        rows = np.repeat(
            np.arange(self.shape[0], dtype=INDEX_DTYPE),
            np.diff(self.indptr),
        )
        np.add.at(out, (rows, self.indices), self.data)
        return out


Accumulator = Literal["hash", "spa"]


def spgemm(
    a: CSRMatrix, b: CSRMatrix, *, accumulator: Accumulator = "hash"
) -> CSRMatrix:
    """Gustavson's SpGEMM: C = A @ B with the chosen accumulator."""
    if a.shape[1] != b.shape[0]:
        raise ContractionError(
            f"inner dimensions differ: {a.shape} @ {b.shape}"
        )
    n_rows = a.shape[0]
    out_rows: list[np.ndarray] = []
    out_cols: list[np.ndarray] = []
    out_vals: list[np.ndarray] = []
    for i in range(n_rows):
        cols_a, vals_a = a.row(i)
        if cols_a.size == 0:
            continue
        acc = (
            SparseAccumulator()
            if accumulator == "spa"
            else HashAccumulator(capacity_hint=max(cols_a.size, 16))
        )
        for k, v in zip(cols_a, vals_a):
            cols_b, vals_b = b.row(int(k))
            if cols_b.size:
                acc.add_many(cols_b, v * vals_b)
        keys, vals = acc.export()
        if keys.size:
            order = np.argsort(keys, kind="stable")
            out_rows.append(
                np.full(keys.shape[0], i, dtype=INDEX_DTYPE)
            )
            out_cols.append(keys[order])
            out_vals.append(vals[order])
    shape = (a.shape[0], b.shape[1])
    if not out_rows:
        return CSRMatrix(
            np.zeros(shape[0] + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
            shape,
        )
    rows = np.concatenate(out_rows)
    cols = np.concatenate(out_cols)
    vals = np.concatenate(out_vals)
    indptr = np.zeros(shape[0] + 1, dtype=INDEX_DTYPE)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(indptr, cols, vals, shape)
