"""ITensor-style block-sparse tensor contraction (the Figure-5 baseline).

State-of-the-art sparse contraction libraries in quantum chemistry and
physics (ITensor, libtensor, TiledArray) are *block-sparse*: tensors hold
dense quantum-number blocks, and a contraction (a) matches block pairs
whose contracted block-coordinates agree, (b) permutes/reshapes each pair
to matrices, and (c) calls dense GEMM, accumulating into output blocks.
That is what this engine does, with ``numpy``'s BLAS-backed ``@``.

The element-wise engine wins (Figure 5, 7.1x average) when blocks are
internally sparse: the block engine pays dense FLOPs for every stored
element, zeros included. FLOP counters on both sides make that comparison
inspectable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ContractionError
from repro.tensor.blocks import BlockSparseTensor
from repro.types import VALUE_DTYPE


@dataclass
class BlockContractionResult:
    """Block-engine output plus work accounting."""

    tensor: BlockSparseTensor
    seconds: float
    #: dense multiply-adds executed by GEMM calls
    flops: int
    #: number of (X block, Y block) pairs multiplied
    block_pairs: int
    counters: Dict[str, int] = field(default_factory=dict)


def _validate(
    x: BlockSparseTensor,
    y: BlockSparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    cx = tuple(int(m) for m in cx)
    cy = tuple(int(m) for m in cy)
    if len(cx) != len(cy) or not cx:
        raise ContractionError("contract modes must pair one-to-one")
    if len(set(cx)) != len(cx) or len(set(cy)) != len(cy):
        raise ContractionError("duplicate contract modes")
    for mx, my in zip(cx, cy):
        if x.shape[mx] != y.shape[my]:
            raise ContractionError(
                f"extent mismatch on contract pair ({mx}, {my})"
            )
        if x.block_shape[mx] != y.block_shape[my]:
            raise ContractionError(
                f"block-shape mismatch on contract pair ({mx}, {my}); "
                "block engines require aligned tilings"
            )
    return cx, cy


def block_contract(
    x: BlockSparseTensor,
    y: BlockSparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
) -> BlockContractionResult:
    """Contract two block-sparse tensors the ITensor way."""
    t0 = time.perf_counter()
    cx, cy = _validate(x, y, cx, cy)
    fx = tuple(m for m in range(x.order) if m not in cx)
    fy = tuple(m for m in range(y.order) if m not in cy)
    if not fx or not fy:
        raise ContractionError("both operands need free modes")

    out_shape = tuple(x.shape[m] for m in fx) + tuple(
        y.shape[m] for m in fy
    )
    out_block = tuple(x.block_shape[m] for m in fx) + tuple(
        y.block_shape[m] for m in fy
    )
    fx_vol = int(np.prod([x.block_shape[m] for m in fx]))
    fy_vol = int(np.prod([y.block_shape[m] for m in fy]))
    c_vol = int(np.prod([x.block_shape[m] for m in cx]))

    # Index Y blocks by contracted block-coordinates.
    y_by_contract: Dict[Tuple[int, ...], List[Tuple[Tuple[int, ...], np.ndarray]]] = {}
    for key, block in y.blocks.items():
        ckey = tuple(key[m] for m in cy)
        fkey = tuple(key[m] for m in fy)
        mat = block.transpose(cy + fy).reshape(c_vol, fy_vol)
        y_by_contract.setdefault(ckey, []).append((fkey, mat))

    out = BlockSparseTensor(out_shape, out_block)
    acc: Dict[Tuple[int, ...], np.ndarray] = {}
    flops = 0
    pairs = 0
    for key, block in x.blocks.items():
        ckey = tuple(key[m] for m in cx)
        partners = y_by_contract.get(ckey)
        if not partners:
            continue
        fkey_x = tuple(key[m] for m in fx)
        mat_x = block.transpose(fx + cx).reshape(fx_vol, c_vol)
        for fkey_y, mat_y in partners:
            pairs += 1
            flops += 2 * fx_vol * c_vol * fy_vol
            prod = mat_x @ mat_y
            out_key = fkey_x + fkey_y
            if out_key in acc:
                acc[out_key] += prod
            else:
                acc[out_key] = prod
    for out_key, mat in acc.items():
        out.set_block(out_key, mat.reshape(out_block))
    return BlockContractionResult(
        tensor=out,
        seconds=time.perf_counter() - t0,
        flops=flops,
        block_pairs=pairs,
        counters={
            "x_blocks": x.num_blocks,
            "y_blocks": y.num_blocks,
            "out_blocks": out.num_blocks,
        },
    )


def element_flops(products: int) -> int:
    """Multiply-adds an element-wise engine spends for *products* pairs."""
    return 2 * int(products)
