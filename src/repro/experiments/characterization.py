"""Figure 3 + Table 2 — the §4.1 characterization study.

Figure 3: run Sparta on Nell-2 (2-mode), then simulate placing exactly one
data object in PMM while the rest stay in DRAM; report the slowdown each
placement causes. The paper's observations to reproduce:

1. write-heavy objects hurt more than read-only ones (PMM write bandwidth
   is ~3x worse);
2. randomly-accessed objects hurt more than sequential ones;
3. X and Y placement barely matters.

Table 2: classify the run's actual traffic per (object, stage) and print
the observed access signatures.

Run as ``python -m repro.experiments.characterization [--table2]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core import contract
from repro.core.profile import DataObject
from repro.datasets import make_case
from repro.memory import (
    HMSimulator,
    all_dram_placement,
    dram,
    observed_signatures,
    pmm,
    single_object_pmm,
)
from repro.memory.devices import HeterogeneousMemory


@dataclass
class CharacterizationResult:
    """Figure-3 numbers for one workload."""

    label: str
    all_dram_seconds: float
    #: simulated total seconds with exactly this object in PMM
    single_pmm_seconds: Dict[DataObject, float]

    def slowdown(self, obj: DataObject) -> float:
        """Relative slowdown of placing *obj* in PMM."""
        return self.single_pmm_seconds[obj] / self.all_dram_seconds - 1.0

    def priority(self) -> List[DataObject]:
        """Objects ranked by placement sensitivity (the §4.2 input)."""
        return sorted(
            self.single_pmm_seconds,
            key=lambda o: self.single_pmm_seconds[o],
            reverse=True,
        )


def run(
    *,
    dataset: str = "nell2",
    n_modes: int = 2,
    scale: float = 0.5,
    seed: int = 0,
) -> CharacterizationResult:
    """Run the Figure-3 characterization for one workload."""
    case = make_case(dataset, n_modes, scale=scale, seed=seed)
    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    peak = res.profile.peak_bytes()
    hm = HeterogeneousMemory(
        dram=dram(max(peak * 2, 1)), pmm=pmm(max(peak * 20, 1))
    )
    sim = HMSimulator(hm)
    base = sim.simulate(res.profile, all_dram_placement())
    singles = {
        obj: sim.simulate(
            res.profile, single_object_pmm(obj)
        ).total_seconds
        for obj in DataObject
    }
    return CharacterizationResult(
        label=case.label,
        all_dram_seconds=base.total_seconds,
        single_pmm_seconds=singles,
    )


def table2_report(
    *, dataset: str = "nell2", n_modes: int = 2, scale: float = 0.5,
    seed: int = 0,
) -> str:
    """Print the observed Table-2 access signatures of a Sparta run."""
    from repro.core.stages import STAGE_ORDER
    from repro.experiments.fmt import format_table

    case = make_case(dataset, n_modes, scale=scale, seed=seed)
    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    sigs = observed_signatures(res.profile)
    rows = []
    for stage in STAGE_ORDER:
        row = [stage.value]
        for obj in DataObject:
            sig = sigs.get((obj, stage))
            if sig is None:
                row.append("-")
            else:
                pattern, kinds = sig
                ks = "".join(sorted(k.value[0].upper() for k in kinds))
                row.append(f"{pattern.value[:3]},{ks}")
        rows.append(row)
    return format_table(
        ["stage"] + [o.value for o in DataObject],
        rows,
        title=f"Table 2 (observed) — {case.label}",
    )


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="nell2")
    parser.add_argument("--modes", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--table2", action="store_true")
    args = parser.parse_args(argv)

    if args.table2:
        out = table2_report(
            dataset=args.dataset, n_modes=args.modes,
            scale=args.scale, seed=args.seed,
        )
        print(out)
        return out

    result = run(
        dataset=args.dataset, n_modes=args.modes,
        scale=args.scale, seed=args.seed,
    )
    from repro.experiments.fmt import format_table

    table = format_table(
        ["object in PMM", "simulated total (s)", "slowdown"],
        [["(all in DRAM)", result.all_dram_seconds, "-"]]
        + [
            [
                obj.value,
                result.single_pmm_seconds[obj],
                f"+{100 * result.slowdown(obj):.1f}%",
            ]
            for obj in result.priority()
        ],
        title=f"Figure 3 — placement characterization, {result.label}",
    )
    print(table)
    print(
        "derived placement priority: "
        + " > ".join(o.value for o in result.priority())
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
