"""Figure 8 — DRAM and PMM bandwidth timelines (Vast, 1-mode).

The paper samples per-device memory bandwidth over the run for Sparta,
IAL, Memory mode and Optane-only, observing that

* IAL's *PMM* bandwidth exceeds Sparta's (migration traffic);
* Memory mode's *DRAM* bandwidth exceeds Sparta's (hardware cache fills);
* Optane-only's DRAM bandwidth is ~0 by construction.

We regenerate the four timelines from the simulator's per-stage device
traffic.

Run as ``python -m repro.experiments.bandwidth [--scale S]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core import contract
from repro.datasets import make_case
from repro.memory import (
    DEFAULT_IAL_LAG,
    HMSimulator,
    all_pmm_placement,
    dram,
    ial_schedule,
    pmm,
)
from repro.memory.devices import HeterogeneousMemory
from repro.memory.policies import sparta_policy_characterized

Timeline = List[Tuple[float, float, float]]  # (t, DRAM GB/s, PMM GB/s)


@dataclass
class BandwidthResult:
    """Figure-8 timelines for one workload."""

    label: str
    timelines: Dict[str, Timeline]

    def mean_bandwidth(self, policy: str) -> Tuple[float, float]:
        """Time-weighted mean (DRAM, PMM) bandwidth for a policy."""
        tl = self.timelines[policy]
        if len(tl) < 2:
            return (0.0, 0.0)
        total = tl[-1][0] - tl[0][0]
        if total <= 0:
            return (0.0, 0.0)
        dram_acc = 0.0
        pmm_acc = 0.0
        for (t0, d, p), (t1, _, _) in zip(tl, tl[1:]):
            dram_acc += d * (t1 - t0)
            pmm_acc += p * (t1 - t0)
        return (dram_acc / total, pmm_acc / total)


def run(
    *,
    dataset: str = "vast",
    n_modes: int = 1,
    scale: float = 0.5,
    seed: int = 0,
    dram_fraction: float = 0.5,
) -> BandwidthResult:
    """Build the four Figure-8 timelines."""
    case = make_case(dataset, n_modes, scale=scale, seed=seed)
    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    peak = max(res.profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(
        dram=dram(max(int(peak * dram_fraction), 1)),
        pmm=pmm(peak * 20),
    )
    sim = HMSimulator(hm)
    runs = {
        "sparta": sim.simulate(
            res.profile,
            sparta_policy_characterized(
                res.profile, sim, hm.dram.capacity_bytes
            ),
        ),
        "ial": sim.simulate_schedule(
            res.profile,
            ial_schedule(res.profile, hm.dram.capacity_bytes),
            lag_fraction=DEFAULT_IAL_LAG,
        ),
        "memory_mode": sim.simulate_memory_mode(res.profile),
        "optane_only": sim.simulate(res.profile, all_pmm_placement()),
    }
    return BandwidthResult(
        label=case.label,
        timelines={
            name: run.bandwidth_timeline() for name, run in runs.items()
        },
    )


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="vast")
    parser.add_argument("--modes", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    result = run(
        dataset=args.dataset, n_modes=args.modes,
        scale=args.scale, seed=args.seed,
    )
    from repro.experiments.fmt import format_table

    table = format_table(
        ["policy", "mean DRAM GB/s", "mean PMM GB/s", "duration (s)"],
        [
            [
                name,
                *result.mean_bandwidth(name),
                result.timelines[name][-1][0],
            ]
            for name in result.timelines
        ],
        title=f"Figure 8 — mean device bandwidth, {result.label}",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
