"""Experiment harness: one module per paper figure/table.

=======================  =====================================
module                   regenerates
=======================  =====================================
``breakdown``            Figure 2 + §5.2 stage shares
``characterization``     Figure 3 + Table 2
``speedup``              Figure 4
``itensor_cmp``          Figure 5 (+ Table 4 data)
``scalability``          Figure 6 + §5.4 per-stage speedups
``hm``                   Figure 7
``bandwidth``            Figure 8
``memory_usage``         Figure 9
``report``               Tables 3 and 4
=======================  =====================================

Each module exposes ``run(...)`` returning structured results and a
``main(argv)`` CLI that prints the paper-style table. Submodules are
imported lazily so ``python -m repro.experiments.<name>`` does not
double-import the module it executes.
"""

import importlib

_SUBMODULES = (
    "allocation",
    "bandwidth",
    "breakdown",
    "characterization",
    "extrapolate",
    "hm",
    "itensor_cmp",
    "memory_usage",
    "report",
    "run_all",
    "scalability",
    "speedup",
    "validate",
)

__all__ = list(_SUBMODULES)


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.experiments.{name}")
    raise AttributeError(f"module 'repro.experiments' has no attribute {name!r}")
