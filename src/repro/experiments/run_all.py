"""Regenerate every figure and table in one command.

``python -m repro.experiments.run_all [--outdir results] [--fast]``

Writes one text file per experiment into the output directory. ``--fast``
uses reduced scales (minutes instead of tens of minutes).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import time
from pathlib import Path
from typing import Callable, List, Sequence, Tuple


def _experiments(fast: bool) -> List[Tuple[str, Callable[[], str]]]:
    from repro.experiments import (
        allocation,
        bandwidth,
        breakdown,
        characterization,
        dynamic_placement,
        extrapolate,
        hm,
        itensor_cmp,
        memory_usage,
        report,
        scalability,
        speedup,
    )

    s_fig2 = "0.1" if fast else "0.25"
    s_fig4 = "0.2" if fast else "0.5"
    s_sim = "0.2" if fast else "0.5"
    return [
        ("tables", lambda: report.main([])),
        ("fig2_spa", lambda: breakdown.main(["--scale", s_fig2])),
        (
            "fig2_sparta",
            lambda: breakdown.main(
                ["--engine", "sparta", "--scale", s_fig2]
            ),
        ),
        (
            "fig3_characterization",
            lambda: characterization.main(["--scale", s_sim]),
        ),
        (
            "table2_patterns",
            lambda: characterization.main(["--table2", "--scale", s_sim]),
        ),
        ("fig4_speedup", lambda: speedup.main(["--scale", s_fig4])),
        (
            "fig5_itensor",
            lambda: itensor_cmp.main(
                ["--scale", "0.5" if fast else "1.0"]
            ),
        ),
        (
            "fig6_scalability",
            lambda: scalability.main(["--scale", s_sim]),
        ),
        ("fig7_hm", lambda: hm.main(["--scale", s_sim])),
        ("fig8_bandwidth", lambda: bandwidth.main(["--scale", s_sim])),
        ("fig9_memory", lambda: memory_usage.main(["--scale", s_sim])),
        (
            "fig9_dynamic_placement",
            lambda: dynamic_placement.main(
                ["--scale", "0.1" if fast else "0.2"]
                + (["--repeats", "1"] if fast else [])
            ),
        ),
        ("fig4_scaling", lambda: extrapolate.main([])),
        (
            "allocation",
            lambda: allocation.main(["--scale", s_fig2]),
        ),
    ]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="results")
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args(argv)

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for name, fn in _experiments(args.fast):
        t0 = time.perf_counter()
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            fn()
        path = outdir / f"{name}.txt"
        path.write_text(buf.getvalue())
        print(f"{name:22s} -> {path} ({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
