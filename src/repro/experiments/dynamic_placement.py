"""Figure-9 successor — dynamic placement under multi-contraction load.

The paper's Figure 9 shows memory usage exceeding DRAM on the large
SpTCs, which is *why* placement matters; Figure 7 then compares static
placements on one contraction at a time. This experiment extends that
to the regime the serve layer creates: a stream of contractions whose
aggregate working set exceeds DRAM, with registry-pinned operands
eating fast-tier capacity across requests. Four managements compete:

* **static** — Sparta's §4.2 priority placement, recomputed per
  request (one mapping for all five stages);
* **ial** — the reactive hotness comparator with migration lag;
* **dynamic:**\\ *policy* — the :class:`~repro.memory.migration.
  MigrationEngine` (lookahead | ewma | inclusive | hybrid), which
  time-multiplexes DRAM across stage boundaries with explicit,
  overlap-timed migrations.

Two scenarios per workload:

* **pressured** — DRAM holds any one placement-sensitive object but
  not a big request's full placeable set, and the serve registry pins
  a slice of it across requests: no static mapping can keep every
  stage's hot object resident.
* **fits** — DRAM comfortably holds everything: the guard scenario
  where dynamic policies must not lose to static (no gratuitous
  migration churn).

Run as ``python -m repro.experiments.dynamic_placement [--scale S]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core import contract
from repro.datasets import make_case
from repro.memory import (
    DEFAULT_IAL_LAG,
    DYNAMIC_POLICIES,
    HMSimulator,
    MigrationEngine,
    StreamRequest,
    dram,
    ial_schedule,
    pmm,
    simulate_stream,
    static_stream_scheduler,
)
from repro.memory.devices import HeterogeneousMemory
from repro.memory.objects import ALWAYS_PMM
from repro.core.profile import DataObject

#: the request mix: (dataset, n_modes) per request, round-robin
STREAM_CASES: Tuple[Tuple[str, int], ...] = (
    ("chicago", 2),
    ("nips", 2),
    ("vast", 2),
    ("chicago", 1),
)

#: pressured DRAM capacity, as a multiple of the stream's largest
#: single placeable object: any one stage's hot object fits (so
#: placement decisions, not raw capacity, decide the outcome) but the
#: full placeable set of a big request does not
PRESSURE_FACTOR = 1.6

#: fraction of pressured DRAM the serve registry pins across requests
PIN_FRACTION = 0.3

#: all compared managements, static baseline first
POLICIES = ("static", "ial") + tuple(
    f"dynamic:{p}" for p in DYNAMIC_POLICIES
)


@dataclass
class StreamRow:
    """One scenario's totals for every management."""

    scenario: str
    dram_bytes: int
    pinned_bytes: int
    requests: int
    seconds: Dict[str, float] = field(default_factory=dict)
    migration_seconds: Dict[str, float] = field(default_factory=dict)

    def win_over_static(self, policy: str) -> float:
        """Fractional improvement of *policy* over the static baseline."""
        static = self.seconds["static"]
        return 1.0 - self.seconds[policy] / static if static else 0.0

    @property
    def best_dynamic(self) -> str:
        return min(
            (p for p in self.seconds if p.startswith("dynamic:")),
            key=lambda p: self.seconds[p],
        )


def build_stream(
    *,
    cases: Sequence[Tuple[str, int]] = STREAM_CASES,
    repeats: int = 2,
    scale: float = 0.3,
    seed: int = 0,
) -> List:
    """Contract every case once and return the profiles, in stream order."""
    profiles = []
    for name, n in cases:
        case = make_case(name, n, scale=scale, seed=seed)
        res = contract(
            case.x, case.y, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )
        profiles.append(res.profile)
    return profiles * repeats


def run_scenario(
    profiles: Sequence,
    *,
    scenario: str,
    dram_bytes: int,
    pinned_bytes: int,
) -> StreamRow:
    """Simulate every management over one request stream."""
    hm = HeterogeneousMemory(
        dram=dram(max(dram_bytes, 1)),
        pmm=pmm(max(dram_bytes, 1) * 50),
    )
    sim = HMSimulator(hm)
    requests = [
        StreamRequest(profile, pinned_bytes) for profile in profiles
    ]
    row = StreamRow(
        scenario=scenario,
        dram_bytes=dram_bytes,
        pinned_bytes=pinned_bytes,
        requests=len(requests),
    )

    def ial_scheduler(profile, pinned):
        return ial_schedule(
            profile, max(hm.dram.capacity_bytes - pinned, 0)
        )

    schedulers = {"static": static_stream_scheduler(hm)}
    schedulers["ial"] = ial_scheduler
    for pol in DYNAMIC_POLICIES:
        schedulers[f"dynamic:{pol}"] = MigrationEngine(
            hm, policy=pol
        ).schedule_run
    for name, scheduler in schedulers.items():
        result = simulate_stream(
            sim,
            requests,
            scheduler,
            lag_fraction=DEFAULT_IAL_LAG if name == "ial" else 0.0,
            overlap=name.startswith("dynamic:"),
            policy=name,
        )
        row.seconds[name] = result.total_seconds
        row.migration_seconds[name] = result.migration_seconds
    return row


def run(
    *,
    cases: Sequence[Tuple[str, int]] = STREAM_CASES,
    repeats: int = 2,
    scale: float = 0.3,
    seed: int = 0,
) -> List[StreamRow]:
    """Both scenarios over the same request stream."""
    profiles = build_stream(
        cases=cases, repeats=repeats, scale=scale, seed=seed
    )
    largest_object = max(
        p.object_bytes.get(o, 0)
        for p in profiles
        for o in DataObject
        if o not in ALWAYS_PMM
    )
    total = max(
        sum(p.object_bytes.get(o, 0) for o in DataObject)
        for p in profiles
    )
    pressured_dram = max(int(largest_object * PRESSURE_FACTOR), 1)
    pinned = int(pressured_dram * PIN_FRACTION)
    return [
        run_scenario(
            profiles,
            scenario="pressured",
            dram_bytes=pressured_dram,
            pinned_bytes=pinned,
        ),
        run_scenario(
            profiles,
            scenario="fits",
            dram_bytes=total * 2,
            pinned_bytes=0,
        ),
    ]


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run(
        scale=args.scale, repeats=args.repeats, seed=args.seed
    )
    from repro.experiments.fmt import format_table

    out = []
    for row in rows:
        table = format_table(
            ["policy", "total s", "migrating s", "vs static"],
            [
                [
                    p,
                    f"{row.seconds[p]:.4f}",
                    f"{row.migration_seconds[p]:.4f}",
                    f"{row.win_over_static(p):+.1%}",
                ]
                for p in POLICIES
            ],
            title=(
                f"{row.scenario}: {row.requests} requests, "
                f"DRAM {row.dram_bytes} B, pinned {row.pinned_bytes} B"
            ),
        )
        print(table)
        out.append(table)
        best = row.best_dynamic
        print(
            f"best dynamic ({row.scenario}): {best}, "
            f"{row.win_over_static(best):+.1%} vs static\n"
        )
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    main()
