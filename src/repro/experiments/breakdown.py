"""Figure 2 + §5.2 stage shares: execution-time breakdown per stage.

Figure 2 shows where SpTC-SPA spends its time across the five tensors and
1/2/3-mode contractions (the computation stages dominate; input/output
processing is <1-few %). §5.2's text gives Sparta's own shares (index
search 4.7%, accumulation 61.6%, writeback 9.6%, input processing 3.3%,
output sorting 20.8%).

Run as ``python -m repro.experiments.breakdown [--engine
spa|sparta|parallel] [--scale S]``. With ``--engine parallel`` the same
breakdown comes from the all-stage parallel executor (``--threads``,
``--backend``): stage 1 is the partitioned HtY build, stages 2-4 are the
fused worker chunks, and stage 5 is the merge-based output sort — so the
table shows how parallelism shifts the Figure-2 shares.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core import Stage, contract
from repro.core.stages import STAGE_ORDER
from repro.datasets import FIGURE4_DATASETS, make_case
from repro.obs import Tracer


@dataclass
class BreakdownRow:
    """Stage shares for one SpTC case."""

    label: str
    n_modes: int
    total_seconds: float
    fractions: Dict[Stage, float]


def run(
    *,
    engine: str = "spa",
    datasets: Sequence[str] = FIGURE4_DATASETS,
    modes: Sequence[int] = (1, 2, 3),
    scale: float = 0.25,
    seed: int = 0,
    threads: int = 4,
    backend: str = "thread",
    tracer: Optional[Tracer] = None,
) -> List[BreakdownRow]:
    """Measure per-stage time shares for every (dataset, n-mode) case.

    With ``tracer`` set, every case's stage spans land on the one
    tracer — the whole sweep becomes a single Perfetto timeline.
    """
    rows: List[BreakdownRow] = []
    for n in modes:
        for name in datasets:
            case = make_case(name, n, scale=scale, seed=seed)
            if engine == "parallel":
                from repro.parallel import parallel_sparta

                res = parallel_sparta(
                    case.x, case.y, case.cx, case.cy,
                    threads=threads, backend=backend, tracer=tracer,
                    planner="off",
                ).result
            else:
                res = contract(
                    case.x, case.y, case.cx, case.cy, method=engine,
                    tracer=tracer,
                    **(
                        {"swap_larger_to_y": False}
                        if engine == "sparta" else {}
                    ),
                )
            rows.append(
                BreakdownRow(
                    label=case.label,
                    n_modes=n,
                    total_seconds=res.profile.total_seconds,
                    fractions=res.profile.stage_fractions(),
                )
            )
    return rows


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine", default="spa", choices=("spa", "sparta", "parallel")
    )
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threads", type=int, default=4,
        help="worker count for --engine parallel (default 4)",
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="parallel backend for --engine parallel",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON of the whole sweep and "
             "print the span tree (open the JSON in Perfetto)",
    )
    args = parser.parse_args(argv)

    tracer = Tracer() if args.trace else None
    rows = run(
        engine=args.engine, scale=args.scale, seed=args.seed,
        threads=args.threads, backend=args.backend, tracer=tracer,
    )
    from repro.experiments.fmt import format_table

    table = format_table(
        ["case", "total (s)"] + [s.value for s in STAGE_ORDER],
        [
            [
                r.label,
                r.total_seconds,
                *[
                    f"{100 * r.fractions.get(s, 0.0):.1f}%"
                    for s in STAGE_ORDER
                ],
            ]
            for r in rows
        ],
        title=(
            f"Figure 2 — stage breakdown of {args.engine} "
            f"(scale={args.scale})"
        ),
    )
    print(table)
    if tracer is not None:
        tracer.write(args.trace)
        print(f"\nspan tree ({len(tracer.records)} records, "
              f"trace: {args.trace}):")
        print(tracer.summary())
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
