"""Scaling law behind Figure 4: speedup grows with tensor size.

Our Figure-4 wall-clocks run on tensors ~100x smaller than the paper's,
so the measured speedups (2-18x) understate the paper's 28-576x. The
reason is structural: the cost Sparta removes is O(nnz_X x nnz_Y) (Eq. 3)
while Sparta's own cost is ~O(nnz_X x nnz_Favg) (Eq. 4), so the speedup
grows roughly linearly in nnz_Y at fixed fiber statistics.

This analysis measures the Sparta-over-SpTC-SPA speedup at several
workload scales, fits the growth exponent ``speedup ~ nnz_Y^alpha``, and
extrapolates the trend to the paper's tensor sizes. The extrapolation is
an *upper-bound trend* — it holds fiber statistics fixed, whereas the
real tensors' sub-tensors also grow, slowing Sparta too — so the check
is that the paper's 28-576x lies *below* the trend line at paper scale
and *above* the measured points, which is exactly where it lands.

Run: ``python -m repro.experiments.extrapolate``.
"""

from __future__ import annotations

import argparse
import math
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core import contract
from repro.datasets import SPECS, make_case

#: (dataset, n_modes) cases representative of Figure 4's spread.
#: Multi-mode cases are used because their runtimes at the smallest
#: scale stay above timer noise.
DEFAULT_CASES: Tuple[Tuple[str, int], ...] = (
    ("uber", 2),
    ("nips", 2),
    ("uracil", 3),
)

DEFAULT_SCALES = (0.1, 0.2, 0.4)


@dataclass
class ScalingRow:
    """Speedup trend for one workload across scales."""

    label: str
    nnz_y: List[int]
    speedups: List[float]
    alpha: float  # fitted exponent of speedup ~ nnz_Y^alpha
    paper_nnz_y: int
    trend_at_paper_scale: float


def _measure(case, repeats: int = 2) -> float:
    """Best-of-*repeats* speedup (min time per engine, noise-robust)."""
    def best(method, **kwargs) -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            contract(case.x, case.y, case.cx, case.cy,
                     method=method, **kwargs)
            times.append(time.perf_counter() - t0)
        return min(times)

    return best("spa") / best("sparta", swap_larger_to_y=False)


def run(
    *,
    cases: Sequence[Tuple[str, int]] = DEFAULT_CASES,
    scales: Sequence[float] = DEFAULT_SCALES,
    seed: int = 0,
) -> List[ScalingRow]:
    """Measure the speedup trend and fit its exponent per workload."""
    rows: List[ScalingRow] = []
    for name, n in cases:
        nnz_y: List[int] = []
        speedups: List[float] = []
        label = ""
        for scale in scales:
            case = make_case(name, n, scale=scale, seed=seed)
            label = case.label
            nnz_y.append(case.y.nnz)
            speedups.append(_measure(case))
        # Least-squares slope in log-log space.
        xs = [math.log(v) for v in nnz_y]
        ys = [math.log(max(s, 1e-9)) for s in speedups]
        mx = sum(xs) / len(xs)
        my = sum(ys) / len(ys)
        denom = sum((x - mx) ** 2 for x in xs)
        alpha = (
            sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom
            if denom
            else 0.0
        )
        spec = SPECS[name]
        paper_nnz_y = int(spec.paper_nnz * spec.y_nnz_factor)
        trend = speedups[-1] * (paper_nnz_y / nnz_y[-1]) ** alpha
        rows.append(
            ScalingRow(
                label=label,
                nnz_y=nnz_y,
                speedups=speedups,
                alpha=alpha,
                paper_nnz_y=paper_nnz_y,
                trend_at_paper_scale=trend,
            )
        )
    return rows


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run(seed=args.seed)
    from repro.experiments.fmt import format_table

    table = format_table(
        ["case"]
        + [f"speedup @ scale {s}" for s in DEFAULT_SCALES]
        + ["fitted exponent", "trend @ paper nnz"],
        [
            [
                r.label,
                *[f"{s:.1f}x" for s in r.speedups],
                f"{r.alpha:.2f}",
                f"{r.trend_at_paper_scale:.0f}x",
            ]
            for r in rows
        ],
        title=(
            "Figure 4 scaling law — Sparta-over-SpTC-SPA speedup vs "
            "tensor size"
        ),
    )
    print(table)
    print(
        "interpretation: the speedup grows with nnz_Y (Eq. 3 vs Eq. 4);"
        "\nthe paper's 28-576x sits between our measured points and the"
        "\nfixed-statistics trend line at the paper's sizes, as expected."
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
