"""Figure 6 + §5.4 — thread scalability of parallel Sparta.

The paper reports 10.2x / 9.3x / 10.7x at 12 threads for NIPS 1-mode,
Vast 2-mode and NIPS 3-mode, with per-stage speedups of 10.4x (search),
10.9x (accumulation), 9.5x (writeback), 6.8x (input processing) and 6.2x
(output sorting).

On a single-core host the curves come from the scalability model: the
measured one-thread stage breakdown of each workload (this repository's
own run) combined with per-stage Amdahl fractions calibrated to the
paper's per-stage numbers, plus the measured load imbalance of the actual
sub-tensor partition. The thread-pool executor is run as well to verify
the parallel decomposition computes identical results.

With ``--measure-process`` the experiment additionally runs the
shared-memory process backend (``backend="process"``) and reports the
*measured* wall-clock speedup next to the modeled curve — the real
Figure-6 mode on multi-core hosts (it is meaningless on one core, where
process overhead makes the ratio < 1). The measured run exercises the
full all-stage pipeline: workers build HtY partials from Y spans while
the parent sorts X, and the parent k-way merges the workers' presorted
chunk outputs instead of re-sorting Z (see ``benchmarks/bench_pr3.py``
for the seed-vs-all-stage comparison).

Run as ``python -m repro.experiments.scalability [--scale S]``.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import contract
from repro.core.stages import STAGE_ORDER
from repro.datasets import make_case
from repro.parallel import (
    ScalabilityModel,
    parallel_sparta,
    partition_imbalance,
    partition_subtensors,
)

#: the three workloads of Figure 6
FIGURE6_CASES: Tuple[Tuple[str, int], ...] = (
    ("nips", 1),
    ("vast", 2),
    ("nips", 3),
)

THREAD_COUNTS = (1, 2, 4, 8, 12)


@dataclass
class ScalabilityRow:
    """Predicted speedups for one workload."""

    label: str
    serial_seconds: float
    speedups: Dict[int, float]
    parallel_matches: bool
    load_imbalance: float
    #: measured process-backend wall-clock speedup at ``process_workers``
    #: (None unless ``run(measure_process=True)``)
    measured_speedup: Optional[float] = None
    #: True when the measured process run lost workers and degraded to
    #: serial recomputation — the result is still exact, but its wall
    #: clock is not a fair speedup sample
    measured_degraded: bool = False


def run(
    *,
    cases: Sequence[Tuple[str, int]] = FIGURE6_CASES,
    threads: Sequence[int] = THREAD_COUNTS,
    scale: float = 0.5,
    seed: int = 0,
    measure_process: bool = False,
    process_workers: int = 4,
    max_retries: int = 2,
    on_failure: str = "serial",
) -> List[ScalabilityRow]:
    """Predict Figure-6 curves and validate the parallel decomposition."""
    rows: List[ScalabilityRow] = []
    for name, n in cases:
        case = make_case(name, n, scale=scale, seed=seed)
        t0 = time.perf_counter()
        serial = contract(
            case.x, case.y, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )
        serial_wall = time.perf_counter() - t0
        # Load imbalance of the real partition at the largest thread count.
        from repro.core.common import prepare_x
        from repro.core.plan import ContractionPlan
        from repro.core.profile import RunProfile

        plan = ContractionPlan.create(case.x, case.y, case.cx, case.cy)
        px = prepare_x(case.x, plan, RunProfile("partition-probe"))
        ranges = partition_subtensors(px.ptr, max(threads))
        imbalance = partition_imbalance(px.ptr, ranges)

        model = ScalabilityModel(load_imbalance=imbalance)
        speedups = {
            t: model.predict(serial.profile, t).speedup for t in threads
        }
        par = parallel_sparta(
            case.x, case.y, case.cx, case.cy, threads=4,
            planner="off",
        )
        measured = None
        degraded = False
        if measure_process:
            proc = parallel_sparta(
                case.x, case.y, case.cx, case.cy,
                threads=process_workers, backend="process",
                max_retries=max_retries, on_failure=on_failure,
                planner="off",
            )
            measured = serial_wall / max(proc.wall_seconds, 1e-12)
            degraded = (
                proc.result.profile.flags.get("degraded") == "serial"
            )
        rows.append(
            ScalabilityRow(
                label=case.label,
                serial_seconds=serial.profile.total_seconds,
                speedups=speedups,
                parallel_matches=bool(
                    par.result.tensor.allclose(serial.tensor)
                ),
                load_imbalance=imbalance,
                measured_speedup=measured,
                measured_degraded=degraded,
            )
        )
    return rows


def stage_speedup_report(threads: int = 12) -> str:
    """Per-stage model speedups at *threads* (the §5.4 numbers)."""
    from repro.experiments.fmt import format_table

    model = ScalabilityModel()
    return format_table(
        ["stage", f"speedup @{threads}T"],
        [
            [s.value, f"{model.stage_speedup(s, threads):.1f}x"]
            for s in STAGE_ORDER
        ],
        title="§5.4 — per-stage parallel speedups (model)",
    )


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--measure-process", action="store_true",
        help="also run the shared-memory process backend and report its "
             "measured wall-clock speedup (meaningful on multi-core hosts)",
    )
    parser.add_argument(
        "--process-workers", type=int, default=4,
        help="worker count for --measure-process (default 4)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="respawn rounds before the measured process run degrades "
             "(default 2)",
    )
    parser.add_argument(
        "--on-failure", choices=("raise", "serial"), default="serial",
        help="measured-run policy once retries exhaust: keep the "
             "experiment alive with a serial recomputation (default) "
             "or raise",
    )
    args = parser.parse_args(argv)

    rows = run(
        scale=args.scale,
        seed=args.seed,
        measure_process=args.measure_process,
        process_workers=args.process_workers,
        max_retries=args.max_retries,
        on_failure=args.on_failure,
    )
    from repro.experiments.fmt import format_table

    headers = (
        ["case", "1T (s)", "imbalance", "verified"]
        + [f"{t}T" for t in THREAD_COUNTS]
    )
    if args.measure_process:
        headers.append(f"measured {args.process_workers}P")
    table = format_table(
        headers,
        [
            [
                r.label,
                r.serial_seconds,
                f"{r.load_imbalance:.3f}",
                "yes" if r.parallel_matches else "NO",
                *[f"{r.speedups[t]:.1f}x" for t in THREAD_COUNTS],
                *(
                    [
                        f"{r.measured_speedup:.1f}x"
                        + (" (degraded)" if r.measured_degraded else "")
                    ]
                    if r.measured_speedup is not None
                    else []
                ),
            ]
            for r in rows
        ],
        title="Figure 6 — thread scalability (model over measured breakdown)",
    )
    print(table)
    print()
    print(stage_speedup_report())
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
