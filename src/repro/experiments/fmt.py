"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append([_cell(v) for v in row])
    widths = [
        max(len(r[i]) for r in str_rows) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(str_rows[0], widths)))
    lines.append(sep)
    for row in str_rows[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)
