"""Figure 7 — Sparta vs IAL, Memory mode, Optane-only and DRAM-only.

For each of the 15 "*" SpTCs, run Sparta once to collect traffic, then
simulate five managements of a DRAM+PMM machine whose DRAM covers roughly
half the workload's footprint (the paper's 96 GB DRAM against workloads
peaking at 100-768 GB, Figure 9):

* **sparta** — static characterization-driven priority placement (§4.2);
* **ial** — reactive hotness tracking with migration (software);
* **memory mode** — DRAM as a hardware direct-mapped cache;
* **optane-only** — everything in PMM (the speedup baseline);
* **dram-only** — everything in DRAM (the ceiling).

Paper averages to compare: Sparta beats IAL by 30.7% (up to 98.5%),
Memory mode by 10.7% (up to 28.3%) and Optane-only by 17% (up to 65.1%),
and sits within ~6% of DRAM-only.

Run as ``python -m repro.experiments.hm [--scale S]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core import contract
from repro.datasets import FIGURE7_DATASETS, make_case
from repro.memory import (
    DEFAULT_IAL_LAG,
    HMSimulator,
    all_dram_placement,
    all_pmm_placement,
    dram,
    ial_schedule,
    pmm,
)
from repro.memory.devices import HeterogeneousMemory
from repro.memory.policies import sparta_policy_characterized

#: the 15 SpTCs of Figure 7: (dataset, n_modes)
FIGURE7_CASES: Tuple[Tuple[str, int], ...] = tuple(
    (name, n)
    for n in (1, 2, 3)
    for name in FIGURE7_DATASETS
    if not (n != 2 and name == "nell2")  # Nell-2 appears only at 2-mode
    and not (n == 1 and name == "delicious")  # as in the paper's x-axis
)

#: DRAM capacity as a fraction of each workload's peak footprint
DRAM_FRACTION = 0.5


@dataclass
class HMRow:
    """Figure-7 bars for one SpTC (speedups over Optane-only)."""

    label: str
    optane_seconds: float
    seconds: Dict[str, float]

    def speedup(self, policy: str) -> float:
        """Speedup of *policy* over Optane-only."""
        return self.optane_seconds / self.seconds[policy]


POLICIES = ("sparta", "ial", "memory_mode", "dram_only")


def run_case(
    dataset: str,
    n_modes: int,
    *,
    scale: float = 0.5,
    seed: int = 0,
    dram_fraction: float = DRAM_FRACTION,
) -> HMRow:
    """Simulate all five managements for one SpTC."""
    case = make_case(dataset, n_modes, scale=scale, seed=seed)
    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    peak = max(res.profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(
        dram=dram(max(int(peak * dram_fraction), 1)),
        pmm=pmm(peak * 20),
    )
    sim = HMSimulator(hm)
    optane = sim.simulate(res.profile, all_pmm_placement()).total_seconds
    seconds = {
        "sparta": sim.simulate(
            res.profile,
            sparta_policy_characterized(
                res.profile, sim, hm.dram.capacity_bytes
            ),
        ).total_seconds,
        "ial": sim.simulate_schedule(
            res.profile,
            ial_schedule(res.profile, hm.dram.capacity_bytes),
            lag_fraction=DEFAULT_IAL_LAG,
        ).total_seconds,
        "memory_mode": sim.simulate_memory_mode(res.profile).total_seconds,
        "dram_only": sim.simulate(
            res.profile, all_dram_placement()
        ).total_seconds,
    }
    return HMRow(
        label=case.label, optane_seconds=optane, seconds=seconds
    )


def run(
    *,
    cases: Sequence[Tuple[str, int]] = FIGURE7_CASES,
    scale: float = 0.5,
    seed: int = 0,
) -> List[HMRow]:
    """Simulate every Figure-7 SpTC."""
    return [
        run_case(name, n, scale=scale, seed=seed) for name, n in cases
    ]


@dataclass
class ThreadSweepRow:
    """Placement at one thread count (§4.2's per-thread partitioning)."""

    threads: int
    dram_objects: Tuple[str, ...]
    simulated_seconds: float


def thread_sweep(
    dataset: str = "nell2",
    n_modes: int = 2,
    *,
    threads: Sequence[int] = (1, 2, 4, 8, 12),
    scale: float = 0.5,
    seed: int = 0,
    dram_fraction: float = DRAM_FRACTION,
) -> List[ThreadSweepRow]:
    """How §4.2's per-thread HtA/Z_local budgets change the placement.

    HtA and Z_local are thread-private: at T threads their DRAM cost is
    T x the per-thread estimate, so objects fall out of DRAM as the
    thread count grows — the sweep shows which, and the simulated cost
    of the resulting placements.
    """
    from repro.core.profile import DataObject
    from repro.memory.placement import sparta_placement

    case = make_case(dataset, n_modes, scale=scale, seed=seed)
    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    peak = max(res.profile.peak_bytes(), 1)
    hm_machine = HeterogeneousMemory(
        dram=dram(max(int(peak * dram_fraction), 1)),
        pmm=pmm(peak * 20),
    )
    sim = HMSimulator(hm_machine)
    sizes = {
        obj: res.profile.object_bytes.get(obj, 0)
        for obj in (
            DataObject.HTY,
            DataObject.HTA,
            DataObject.Z_LOCAL,
            DataObject.Z,
        )
    }
    rows: List[ThreadSweepRow] = []
    for t in threads:
        placement = sparta_placement(
            sizes, hm_machine.dram.capacity_bytes, threads=t
        )
        run = sim.simulate(res.profile, placement)
        rows.append(
            ThreadSweepRow(
                threads=t,
                dram_objects=tuple(
                    o.value for o in placement.objects_on("DRAM")
                ),
                simulated_seconds=run.total_seconds,
            )
        )
    return rows


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run(scale=args.scale, seed=args.seed)
    from repro.experiments.fmt import format_table

    table = format_table(
        ["case"] + [f"{p} / optane" for p in POLICIES],
        [
            [r.label, *[f"{r.speedup(p):.2f}x" for p in POLICIES]]
            for r in rows
        ],
        title="Figure 7 — speedups over Optane-only",
    )
    print(table)
    for p in POLICIES:
        mean = sum(r.speedup(p) for r in rows) / len(rows)
        print(f"average {p} over optane-only: {mean:.2f}x")
    mean_ial = sum(
        r.seconds["ial"] / r.seconds["sparta"] for r in rows
    ) / len(rows)
    mean_mm = sum(
        r.seconds["memory_mode"] / r.seconds["sparta"] for r in rows
    ) / len(rows)
    mean_opt = sum(
        r.optane_seconds / r.seconds["sparta"] for r in rows
    ) / len(rows)
    print(
        f"sparta beats ial by {100 * (mean_ial - 1):.1f}% "
        "(paper: 30.7%, up to 98.5%)"
    )
    print(
        f"sparta beats memory mode by {100 * (mean_mm - 1):.1f}% "
        "(paper: 10.7%, up to 28.3%)"
    )
    print(
        f"sparta beats optane-only by {100 * (mean_opt - 1):.1f}% "
        "(paper: 17%, up to 65.1%)"
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
