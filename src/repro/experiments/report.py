"""Tables 3 and 4 — dataset characteristic reports.

Prints the paper's dataset tables side-by-side with the scaled synthetic
analogues this reproduction actually runs.

Run as ``python -m repro.experiments.report [--table3 | --table4]``.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.datasets import SPECS, all_cases, make_case
from repro.experiments.fmt import format_table


def table3(*, scale: float = 0.5, seed: int = 0) -> str:
    """Table 3: paper tensors vs. the scaled synthetic analogues."""
    rows = []
    for spec in SPECS.values():
        case = make_case(spec.name, min(2, len(spec.dims) - 1),
                         scale=scale, seed=seed)
        rows.append(
            [
                spec.name,
                spec.paper_order,
                "x".join(str(d) for d in spec.paper_dims),
                f"{spec.paper_nnz:.1e}",
                f"{spec.paper_density:.1e}",
                "x".join(str(d) for d in case.x.shape),
                case.x.nnz,
                f"{case.x.density:.1e}",
            ]
        )
    return format_table(
        [
            "tensor",
            "order",
            "paper dims",
            "paper nnz",
            "paper density",
            "scaled dims",
            "scaled nnz",
            "scaled density",
        ],
        rows,
        title="Table 3 — evaluation tensors (paper vs scaled synthetic)",
    )


def table4(*, scale: float = 1.0, seed: int = 0) -> str:
    """Table 4: the Hubbard-2D block tensors of Figure 5."""
    rows = []
    for case in all_cases(scale=scale, seed=seed):
        for side, t in (("X", case.x), ("Y", case.y)):
            rows.append(
                [
                    case.label,
                    side,
                    t.order,
                    "x".join(str(d) for d in t.shape),
                    t.nnz,
                    f"{t.nnz / max(1, _volume(t.shape)):.1e}",
                    t.num_blocks,
                ]
            )
    return format_table(
        ["SpTC", "tensor", "order", "dims", "nnz", "density", "#blocks"],
        rows,
        title="Table 4 — Hubbard-2D tensors (scaled synthetic)",
    )


def _volume(shape) -> int:
    v = 1
    for d in shape:
        v *= int(d)
    return v


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table3", action="store_true")
    parser.add_argument("--table4", action="store_true")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    out = []
    if args.table3 or not args.table4:
        out.append(table3(scale=args.scale, seed=args.seed))
    if args.table4 or not args.table3:
        out.append(table4(seed=args.seed))
    text = "\n\n".join(out)
    print(text)
    return text


if __name__ == "__main__":  # pragma: no cover
    main()
