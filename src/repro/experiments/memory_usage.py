"""Figure 9 — peak memory consumption of the 15 SpTCs.

The paper's peaks span tens to ~770 GB, motivating heterogeneous memory
in the first place. We report per-object and total peak bytes for every
Figure-7 case, plus the §4.2 estimator outputs (Eq. 5 exact for HtY,
Eq. 6 upper bound for HtA) so the estimators can be compared against the
measured peaks.

Run as ``python -m repro.experiments.memory_usage [--scale S]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core import contract
from repro.core.profile import DataObject
from repro.datasets import make_case
from repro.experiments.hm import FIGURE7_CASES
from repro.hashtable import HashTensor, default_num_buckets
from repro.memory import estimate_from_tensors


@dataclass
class MemoryRow:
    """Peak memory accounting for one SpTC."""

    label: str
    object_bytes: Dict[DataObject, int]
    peak_bytes: int
    hty_estimate: int
    hta_estimate: int

    @property
    def hty_measured(self) -> int:
        return self.object_bytes.get(DataObject.HTY, 0)

    @property
    def hta_measured(self) -> int:
        return self.object_bytes.get(DataObject.HTA, 0)


def run_case(
    dataset: str, n_modes: int, *, scale: float = 0.5, seed: int = 0
) -> MemoryRow:
    """Measure and estimate memory for one SpTC."""
    case = make_case(dataset, n_modes, scale=scale, seed=seed)
    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    # Rebuild the input-processing statistics the estimators consume.
    from repro.core.common import prepare_x
    from repro.core.plan import ContractionPlan
    from repro.core.profile import RunProfile

    plan = ContractionPlan.create(case.x, case.y, case.cx, case.cy)
    px = prepare_x(case.x, plan, RunProfile("estimate-probe"))
    hty = HashTensor.from_coo(case.y, plan.cy)
    est = estimate_from_tensors(
        x_fiber_ptr=px.ptr,
        nnz_y=case.y.nnz,
        order_y=case.y.order,
        hty_buckets=hty.table.num_buckets,
        hty_max_group=hty.max_group_size,
        num_free_x=len(plan.fx),
        num_free_y=len(plan.fy),
    )
    return MemoryRow(
        label=case.label,
        object_bytes=dict(res.profile.object_bytes),
        peak_bytes=res.profile.peak_bytes(),
        hty_estimate=est.hty,
        hta_estimate=est.hta_per_thread,
    )


def run(
    *,
    cases: Sequence[Tuple[str, int]] = FIGURE7_CASES,
    scale: float = 0.5,
    seed: int = 0,
) -> List[MemoryRow]:
    """Measure every Figure-9 case."""
    return [
        run_case(name, n, scale=scale, seed=seed) for name, n in cases
    ]


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run(scale=args.scale, seed=args.seed)
    from repro.experiments.fmt import format_table

    mb = 1024 * 1024
    table = format_table(
        [
            "case",
            "peak (MB)",
            "X",
            "Y",
            "HtY",
            "HtA",
            "Z_local",
            "Z",
            "HtY est",
            "HtA bound ok",
        ],
        [
            [
                r.label,
                r.peak_bytes / mb,
                *[
                    r.object_bytes.get(o, 0) / mb
                    for o in (
                        DataObject.X,
                        DataObject.Y,
                        DataObject.HTY,
                        DataObject.HTA,
                        DataObject.Z_LOCAL,
                        DataObject.Z,
                    )
                ],
                r.hty_estimate / mb,
                "yes" if r.hta_estimate >= r.hta_measured else "NO",
            ]
            for r in rows
        ],
        title="Figure 9 — peak memory consumption (scaled workloads, MB)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
