"""Output-allocation strategy comparison (the §1/§3.2 argument).

Compares three answers to the unknown-output-size problem on the
registry workloads:

* **dynamic** (Sparta/SpTC-SPA): grow SPA/HtA and Z_local as results
  appear — no pre-pass, exact memory;
* **symbolic two-phase**: an exact counting pre-pass, then a numeric
  pass — precise memory but the pre-pass duplicates most of the
  contraction's work;
* **upper-bound prediction**: allocate one slot per product — no
  pre-pass, but memory overshoots by the accumulation factor
  (products / nnz_Z).

Run: ``python -m repro.experiments.allocation [--scale S]``
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core import contract
from repro.core.symbolic import two_phase_contract
from repro.datasets import make_case

DEFAULT_CASES: Tuple[Tuple[str, int], ...] = (
    ("chicago", 2),
    ("nips", 2),
    ("uracil", 2),
    ("vast", 2),
    ("nell2", 2),
)


@dataclass
class AllocationRow:
    """Comparison for one workload."""

    label: str
    dynamic_seconds: float
    symbolic_seconds: float  # the pre-pass alone
    numeric_seconds: float
    two_phase_seconds: float  # symbolic + numeric
    nnz_z: int
    upper_bound_nnz: int

    @property
    def symbolic_overhead(self) -> float:
        """Two-phase time over the numeric phase alone — the factor
        the symbolic pre-pass adds to a contraction that would otherwise
        run once (~2x when the pre-pass duplicates the matching work)."""
        return self.two_phase_seconds / max(self.numeric_seconds, 1e-12)

    @property
    def memory_waste(self) -> float:
        """Upper-bound allocation over the true output size."""
        return self.upper_bound_nnz / max(self.nnz_z, 1)


def run(
    *,
    cases: Sequence[Tuple[str, int]] = DEFAULT_CASES,
    scale: float = 0.4,
    seed: int = 0,
) -> List[AllocationRow]:
    """Compare the three allocation strategies per workload."""
    rows: List[AllocationRow] = []
    for name, n in cases:
        case = make_case(name, n, scale=scale, seed=seed)
        t0 = time.perf_counter()
        dyn = contract(
            case.x, case.y, case.cx, case.cy, method="vectorized"
        )
        dynamic_seconds = time.perf_counter() - t0
        sym = two_phase_contract(
            case.x, case.y, case.cx, case.cy, allocation="symbolic"
        )
        ub = two_phase_contract(
            case.x, case.y, case.cx, case.cy, allocation="upper_bound"
        )
        assert sym.result.tensor.allclose(dyn.tensor)
        assert ub.result.tensor.allclose(dyn.tensor)
        rows.append(
            AllocationRow(
                label=case.label,
                dynamic_seconds=dynamic_seconds,
                symbolic_seconds=sym.symbolic_seconds,
                numeric_seconds=sym.numeric_seconds,
                two_phase_seconds=(
                    sym.symbolic_seconds + sym.numeric_seconds
                ),
                nnz_z=dyn.nnz,
                upper_bound_nnz=ub.allocated_nnz,
            )
        )
    return rows


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run(scale=args.scale, seed=args.seed)
    from repro.experiments.fmt import format_table

    table = format_table(
        [
            "case",
            "dynamic (s)",
            "numeric (s)",
            "two-phase (s)",
            "pre-pass overhead",
            "nnz_Z",
            "upper-bound alloc",
            "memory waste",
        ],
        [
            [
                r.label,
                r.dynamic_seconds,
                r.numeric_seconds,
                r.two_phase_seconds,
                f"{r.symbolic_overhead:.2f}x",
                r.nnz_z,
                r.upper_bound_nnz,
                f"{r.memory_waste:.1f}x",
            ]
            for r in rows
        ],
        title=(
            "Output-allocation strategies — dynamic (Sparta) vs the "
            "rejected symbolic / upper-bound approaches"
        ),
    )
    print(table)
    mean_over = sum(r.symbolic_overhead for r in rows) / len(rows)
    mean_waste = sum(r.memory_waste for r in rows) / len(rows)
    print(
        f"average symbolic pre-pass overhead {mean_over:.2f}x over the "
        f"numeric phase; average upper-bound memory waste "
        f"{mean_waste:.1f}x (worst "
        f"{max(r.memory_waste for r in rows):.1f}x) — the §1 argument "
        "for Sparta's dynamic allocation: the pre-pass roughly doubles "
        "one-shot contractions, and the loose bound blows up exactly on "
        "accumulation-heavy workloads."
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
