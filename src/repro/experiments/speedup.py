"""Figure 4 — speedups of HtY+HtA (Sparta) and COOY+HtA over COOY+SPA.

The paper reports 28-576x for Sparta over SpTC-SPA and 1.07-42x for
COOY+HtA over COOY+SPA across Chicago/NIPS/Uber/Vast/Uracil x 1/2/3-mode.
Absolute factors grow with tensor size (the removed cost is
O(nnz_X x nnz_Y)), so at our scaled sizes the factors are smaller; the
*shape* — Sparta always fastest, COOY+HtA between (except where index
search dominates, e.g. Uracil 3-mode, where HtA alone barely helps) —
is the reproduction target.

Run as ``python -m repro.experiments.speedup [--scale S]``.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.core import contract
from repro.datasets import FIGURE4_DATASETS, make_case


@dataclass
class SpeedupRow:
    """Figure-4 bars for one case."""

    label: str
    spa_seconds: float
    coo_hta_seconds: float
    sparta_seconds: float

    @property
    def sparta_speedup(self) -> float:
        """HtY+HtA over COOY+SPA."""
        return self.spa_seconds / self.sparta_seconds

    @property
    def coo_hta_speedup(self) -> float:
        """COOY+HtA over COOY+SPA."""
        return self.spa_seconds / self.coo_hta_seconds


def _timed(engine: str, case) -> float:
    kwargs = {"swap_larger_to_y": False} if engine == "sparta" else {}
    t0 = time.perf_counter()
    contract(case.x, case.y, case.cx, case.cy, method=engine, **kwargs)
    return time.perf_counter() - t0


def run(
    *,
    datasets: Sequence[str] = FIGURE4_DATASETS,
    modes: Sequence[int] = (1, 2, 3),
    scale: float = 0.5,
    seed: int = 0,
) -> List[SpeedupRow]:
    """Time the three engines on every (dataset, n-mode) case."""
    rows: List[SpeedupRow] = []
    for n in modes:
        for name in datasets:
            case = make_case(name, n, scale=scale, seed=seed)
            rows.append(
                SpeedupRow(
                    label=case.label,
                    spa_seconds=_timed("spa", case),
                    coo_hta_seconds=_timed("coo_hta", case),
                    sparta_seconds=_timed("sparta", case),
                )
            )
    return rows


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run(scale=args.scale, seed=args.seed)
    from repro.experiments.fmt import format_table

    table = format_table(
        [
            "case",
            "COOY+SPA (s)",
            "COOY+HtA (s)",
            "HtY+HtA (s)",
            "HtY+HtA speedup",
            "COOY+HtA speedup",
        ],
        [
            [
                r.label,
                r.spa_seconds,
                r.coo_hta_seconds,
                r.sparta_seconds,
                f"{r.sparta_speedup:.1f}x",
                f"{r.coo_hta_speedup:.1f}x",
            ]
            for r in rows
        ],
        title=f"Figure 4 — engine speedups over COOY+SPA (scale={args.scale})",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
