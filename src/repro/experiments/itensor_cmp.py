"""Figure 5 — element-wise Sparta vs. the block-sparse (ITensor) engine.

Ten Hubbard-2D-style SpTCs (Table 4). The paper reports a 7.1x average
speedup for element-wise Sparta: the block engine pays dense FLOPs on
every stored block element, while element-wise computes only the actual
non-zero pairs — quantum data below ~5% intra-block non-zero density (or
~35% like our generator; the cutoff removes a long value tail) wastes most
of the block engine's arithmetic.

Both engines are measured two ways:

* **work** — dense GEMM multiply-adds vs. element-wise products. The
  headline speedup is the work ratio under the equal-FLOP-throughput
  assumption (both sides are BLAS-class C code in the paper; our Python
  wall-clocks carry interpreter constants the paper's C doesn't);
* **wall-clock** — both engines' measured seconds, reported for
  transparency.

Run as ``python -m repro.experiments.itensor_cmp [--scale S]``.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines import block_contract, element_flops
from repro.core import contract
from repro.datasets import all_cases


@dataclass
class ITensorRow:
    """Figure-5 numbers for one SpTC."""

    label: str
    block_flops: int
    element_products: int
    block_seconds: float
    element_seconds: float
    results_match: bool

    @property
    def work_speedup(self) -> float:
        """Block-engine FLOPs over element-engine FLOPs (the Fig-5 bar)."""
        eflops = element_flops(self.element_products)
        return self.block_flops / eflops if eflops else float("inf")


def run(*, scale: float = 1.0, seed: int = 0) -> List[ITensorRow]:
    """Contract all ten Table-4 cases with both engines."""
    rows: List[ITensorRow] = []
    for case in all_cases(scale=scale, seed=seed):
        block_res = block_contract(case.x, case.y, case.cx, case.cy)
        x_el = case.x.to_coo()
        y_el = case.y.to_coo()
        t0 = time.perf_counter()
        el_res = contract(
            x_el, y_el, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )
        el_seconds = time.perf_counter() - t0
        match = el_res.tensor.allclose(
            block_res.tensor.to_coo().coalesce().prune(1e-12),
            rtol=1e-8,
            atol=1e-10,
        )
        rows.append(
            ITensorRow(
                label=case.label,
                block_flops=block_res.flops,
                element_products=el_res.profile.counters.get("products", 0),
                block_seconds=block_res.seconds,
                element_seconds=el_seconds,
                results_match=bool(match),
            )
        )
    return rows


def main(argv: Sequence[str] | None = None) -> str:
    """CLI entry point; returns (and prints) the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run(scale=args.scale, seed=args.seed)
    from repro.experiments.fmt import format_table

    table = format_table(
        [
            "case",
            "block MFLOPs",
            "element Mproducts",
            "work speedup",
            "block (s)",
            "element (s)",
            "match",
        ],
        [
            [
                r.label,
                r.block_flops / 1e6,
                r.element_products / 1e6,
                f"{r.work_speedup:.1f}x",
                r.block_seconds,
                r.element_seconds,
                "yes" if r.results_match else "NO",
            ]
            for r in rows
        ],
        title="Figure 5 — Sparta vs block-sparse engine (Hubbard-2D)",
    )
    mean = sum(r.work_speedup for r in rows) / len(rows)
    print(table)
    print(f"average work speedup: {mean:.1f}x (paper: 7.1x)")
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
