"""Cross-engine validation sweep (the artifact's ``test_run.sh`` role).

Runs every registry dataset at every mode count through all four sparse
engines plus the parallel executor, checking each against the others.
Exit code 0 only when every case agrees.

Run: ``python -m repro.experiments.validate [--scale S]``
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import List, Sequence

from repro.core import contract
from repro.datasets import SPECS, dataset_names, make_case
from repro.parallel import parallel_sparta

ENGINES = ("spa", "coo_hta", "sparta", "vectorized")


@dataclass
class ValidationRow:
    """Agreement record for one case."""

    label: str
    nnz_z: int
    agree: bool
    detail: str = ""


def run(*, scale: float = 0.05, seed: int = 0) -> List[ValidationRow]:
    """Validate every (dataset, n-mode) case."""
    rows: List[ValidationRow] = []
    for name in dataset_names():
        order = len(SPECS[name].dims)
        for n in range(1, order):
            case = make_case(name, n, scale=scale, seed=seed)
            ref = contract(
                case.x, case.y, case.cx, case.cy, method="vectorized"
            )
            agree = True
            detail = ""
            for engine in ENGINES:
                if engine == "vectorized":
                    continue
                kwargs = (
                    {"swap_larger_to_y": False}
                    if engine == "sparta"
                    else {}
                )
                res = contract(
                    case.x, case.y, case.cx, case.cy,
                    method=engine, **kwargs,
                )
                if not res.tensor.allclose(ref.tensor):
                    agree = False
                    detail = f"{engine} disagrees"
                    break
            if agree:
                par = parallel_sparta(
                    case.x, case.y, case.cx, case.cy, threads=3
                )
                if not par.result.tensor.allclose(ref.tensor):
                    agree = False
                    detail = "parallel executor disagrees"
            rows.append(
                ValidationRow(case.label, ref.nnz, agree, detail)
            )
    return rows


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; exit code 0 iff all cases agree."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows = run(scale=args.scale, seed=args.seed)
    failures = [r for r in rows if not r.agree]
    for row in rows:
        status = "ok" if row.agree else f"FAIL ({row.detail})"
        print(f"{row.label:22s} nnz_z={row.nnz_z:8d}  {status}")
    print(
        f"\n{len(rows) - len(failures)}/{len(rows)} cases agree "
        "across all engines"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
