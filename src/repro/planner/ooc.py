"""Spill-aware planning: in-core vs. out-of-core and run sizing.

The out-of-core engine asks one question before stage 1: *would the
in-core pipeline's live working set fit the user's budget?* If yes,
spilling would only add disk traffic — run in core (this is what keeps
budgeted execution within the wall-time gate when the working set
fits). If no, size the pipeline's partitions from the budget:

* Y spans: the stage-1 partial builds are spilled per span, so a span's
  grouped arrays must fit a share of the budget;
* fused chunks: stages 3-4 bound their in-flight product temporaries by
  ``chunk_pairs`` (the same knob the kernels already have), sized so a
  chunk's gather/sort working set fits a share of the budget;
* the streaming merge windows are bounded separately by
  :data:`repro.ooc.merge.DEFAULT_BLOCK_ROWS`.

Everything derives from the planner's O(1)
:class:`~repro.planner.stats.ContractionStats` plus the §4.2 size
estimators — no operand pass is made.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.kernels import DEFAULT_CHUNK_PAIRS
from repro.hashtable.chaining import default_num_buckets
from repro.memory.estimate import hty_size
from repro.planner.stats import ContractionStats

__all__ = ["OocDecision", "plan_ooc"]

#: bytes of in-flight temporaries per materialized partial product in a
#: fused chunk (value, fy key, segment id, lexsort permutation, ~6 x 8 B)
_BYTES_PER_PRODUCT = 48

#: bytes per grouped Y non-zero in a stage-1 partial (free_ln + value +
#: group key/ptr amortized)
_BYTES_PER_Y_ROW = 32

#: spill throughput assumed for cost estimates (page-cache-buffered
#: sequential writes; deliberately conservative)
_SPILL_BYTES_PER_SEC = 500e6

_MIN_CHUNK_PAIRS = 1 << 16


@dataclass(frozen=True)
class OocDecision:
    """How (and whether) one contraction should execute out of core."""

    out_of_core: bool
    est_in_core_peak_bytes: int
    budget_bytes: int
    num_y_spans: int
    num_chunks: int
    chunk_pairs: int
    est_spill_bytes: int
    est_spill_seconds: float
    reason: str

    def counters(self) -> dict:
        """Profile-counter snapshot of the decision."""
        return {
            "ooc_plan_out_of_core": int(self.out_of_core),
            "ooc_plan_est_peak_bytes": int(self.est_in_core_peak_bytes),
            "ooc_plan_num_y_spans": int(self.num_y_spans),
            "ooc_plan_num_chunks": int(self.num_chunks),
            "ooc_plan_chunk_pairs": int(self.chunk_pairs),
        }


def estimate_in_core_peak(
    stats: ContractionStats, *, workers: int = 1
) -> int:
    """Rough peak live bytes of the in-core fused pipeline.

    Prepared X + HtY (Eq. 5) + the pre-sort fused output and its sorted
    copy + one chunk's product temporaries per worker. An estimate for
    *routing*, not accounting — the measured peak lands in the
    ``ooc_budget_peak_bytes`` counter.
    """
    order_x = len(stats.x_shape)
    order_y = len(stats.y_shape)
    px_bytes = stats.nnz_x * (8 * order_x + 16)
    hty_bytes = hty_size(
        max(stats.nnz_y, 1),
        max(order_y, 1),
        default_num_buckets(max(stats.nnz_y, 1)),
    )
    out_order = stats.nfx + stats.nfy
    created = stats.est_created
    # fused triple + assembled COO + sort working copy
    z_bytes = created * (24 + 2 * (8 * out_order + 8))
    chunk_bytes = (
        min(stats.est_products, DEFAULT_CHUNK_PAIRS)
        * _BYTES_PER_PRODUCT
        * max(int(workers), 1)
    )
    return int(px_bytes + hty_bytes + z_bytes + chunk_bytes)


def plan_ooc(
    stats: ContractionStats,
    budget_bytes: int,
    *,
    workers: int = 1,
    force_spill: bool = False,
) -> OocDecision:
    """Decide in-core vs. spill and size the spill partitions."""
    budget = int(budget_bytes)
    est_peak = estimate_in_core_peak(stats, workers=workers)
    out_of_core = bool(force_spill) or est_peak > budget

    # Partition sizing: give stages 3-4's product temporaries a quarter
    # of the budget (per worker), stage 1's partials another quarter.
    workers = max(int(workers), 1)
    chunk_budget = max(budget // 4 // workers, 1)
    chunk_pairs = min(
        max(chunk_budget // _BYTES_PER_PRODUCT, _MIN_CHUNK_PAIRS),
        DEFAULT_CHUNK_PAIRS,
    )
    num_chunks = max(
        math.ceil(max(stats.est_products, 1) / chunk_pairs), 1
    )
    span_budget = max(budget // 4, 1)
    num_y_spans = max(
        math.ceil(stats.nnz_y * _BYTES_PER_Y_ROW / span_budget), 1
    )

    created = stats.est_created
    est_spill = int(
        created * 24 + stats.nnz_y * _BYTES_PER_Y_ROW
        if out_of_core
        else 0
    )
    if force_spill:
        reason = "forced"
    elif out_of_core:
        reason = (
            f"estimated peak {est_peak} B exceeds budget {budget} B"
        )
    else:
        reason = f"working set {est_peak} B fits budget {budget} B"
    return OocDecision(
        out_of_core=out_of_core,
        est_in_core_peak_bytes=est_peak,
        budget_bytes=budget,
        num_y_spans=num_y_spans,
        num_chunks=num_chunks,
        chunk_pairs=int(chunk_pairs),
        est_spill_bytes=est_spill,
        est_spill_seconds=est_spill / _SPILL_BYTES_PER_SEC,
        reason=reason,
    )
