"""Schedule enumeration and choice — the planner's decision layer.

:func:`enumerate_plans` spans the discrete schedule space the engines
expose: engine (fused serial / thread / process) and worker count,
stage-1 HtY build strategy (whole vs. partitioned partials), stage-5
output strategy (merge vs. full sort), predicted accumulator (hash vs.
dense workspace, using the codegen gate), and the §3.3 operand-swap
mode permutation. :func:`choose_plan` scores every candidate with the
:class:`~repro.planner.cost_model.CostModel` and returns an
explainable :class:`PlanDecision` — the chosen knobs plus the full
per-candidate cost table.

Swap candidates are scored but *ineligible* by default: swapping X and
Y permutes the operands' Table-2 roles, so a swapped run's traffic
cells differ byte-wise from the unswapped ones. The planner's contract
(pinned by the differential suite) is that ``plan="auto"`` may only
change *which engine runs, never what it computes or charges* — so the
swap column exists for explainability and stays ineligible unless the
caller opts in with ``allow_swap=True``.

Decisions are cached in an :class:`~repro.core.htycache.LRUCache`
beside the HtY/plan/kernel caches, keyed by the statistics fingerprint,
the search context and the calibration digest; stats surface through
``MetricsRegistry.record_caches()`` as ``cache.planner.*``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.htycache import CacheStats, LRUCache
from repro.core.kernels import (
    DEFAULT_DENSE_THRESHOLD,
    DEFAULT_WORKSPACE_CAP,
)
from repro.errors import ContractionError
from repro.planner.calibration import CALIBRATION_VERSION
from repro.planner.cost_model import CostEstimate, CostModel
from repro.planner.stats import ContractionStats, contraction_stats

__all__ = [
    "PlanCandidate",
    "ScoredCandidate",
    "PlanDecision",
    "enumerate_plans",
    "choose_plan",
    "plan_contraction",
    "default_planner_cache",
    "planner_cache_stats",
    "predicted_accumulator",
]

ENGINES = ("serial", "thread", "process")

#: default worker-count axis (bounded by ``max_workers``)
_WORKER_STEPS = (2, 4, 8)


@dataclass(frozen=True)
class PlanCandidate:
    """One point of the discrete schedule space."""

    engine: str                 # "serial" | "thread" | "process"
    workers: int = 1
    parallel_stage1: bool = True
    merge_output: bool = True
    #: accumulation strategy the fused kernel is predicted to use
    accumulator: str = "hash"   # "hash" | "dense"
    #: §3.3 operand swap (mode permutation of the free/contract split)
    swap: bool = False

    @property
    def label(self) -> str:
        parts = [self.engine]
        if self.engine != "serial":
            parts.append(f"x{self.workers}")
            if not self.parallel_stage1:
                parts.append("serial-s1")
            if not self.merge_output:
                parts.append("sort-s5")
        if self.accumulator != "hash":
            parts.append(self.accumulator)
        if self.swap:
            parts.append("swap")
        return "+".join(parts)

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "workers": self.workers,
            "parallel_stage1": self.parallel_stage1,
            "merge_output": self.merge_output,
            "accumulator": self.accumulator,
            "swap": self.swap,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "PlanCandidate":
        return cls(
            engine=str(d["engine"]),
            workers=int(d["workers"]),
            parallel_stage1=bool(d["parallel_stage1"]),
            merge_output=bool(d["merge_output"]),
            accumulator=str(d["accumulator"]),
            swap=bool(d["swap"]),
        )


@dataclass(frozen=True)
class ScoredCandidate:
    """One table row: a candidate, its predicted cost, its eligibility."""

    candidate: PlanCandidate
    seconds: float
    eligible: bool
    #: why the candidate cannot be chosen ("" when eligible)
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "candidate": self.candidate.to_dict(),
            "seconds": self.seconds,
            "eligible": self.eligible,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "ScoredCandidate":
        return cls(
            candidate=PlanCandidate.from_dict(d["candidate"]),
            seconds=float(d["seconds"]),
            eligible=bool(d["eligible"]),
            reason=str(d.get("reason", "")),
        )


@dataclass(frozen=True)
class PlanDecision:
    """The chosen schedule plus the full scored candidate table."""

    chosen: PlanCandidate
    seconds: float
    table: Tuple[ScoredCandidate, ...]
    stats: ContractionStats
    model_version: int = CALIBRATION_VERSION
    #: whether this decision came from the process-wide LRU
    cached: bool = False

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless plain-JSON form (golden-snapshot format)."""
        return {
            "chosen": self.chosen.to_dict(),
            "seconds": self.seconds,
            "table": [row.to_dict() for row in self.table],
            "stats": self.stats.to_dict(),
            "model_version": self.model_version,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "PlanDecision":
        return cls(
            chosen=PlanCandidate.from_dict(d["chosen"]),
            seconds=float(d["seconds"]),
            table=tuple(
                ScoredCandidate.from_dict(row) for row in d["table"]
            ),
            stats=ContractionStats.from_dict(d["stats"]),
            model_version=int(d["model_version"]),
        )

    def span_args(self) -> dict:
        """Compact decision summary for the tracer's ``plan`` span."""
        return {
            "engine": self.chosen.engine,
            "workers": self.chosen.workers,
            "accumulator": self.chosen.accumulator,
            "est_seconds": round(self.seconds, 9),
            "candidates": len(self.table),
            "cached": self.cached,
            "model_version": self.model_version,
        }

    def explain(self) -> str:
        """Human-readable cost table (``ttt --explain-plan`` output)."""
        lines = [
            f"planner decision (model v{self.model_version}, "
            f"{'cache hit' if self.cached else 'fresh'}):",
            f"  stats: nnz_x={self.stats.nnz_x} nnz_y={self.stats.nnz_y} "
            f"groups={self.stats.groups} "
            f"est_products={self.stats.est_products} "
            f"est_created={self.stats.est_created}",
            f"  {'candidate':24s} {'est seconds':>12s}  verdict",
        ]
        for row in self.table:
            mark = "chosen" if row.candidate == self.chosen else (
                "" if row.eligible else f"ineligible: {row.reason}"
            )
            lines.append(
                f"  {row.candidate.label:24s} {row.seconds:12.6f}  {mark}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
def predicted_accumulator(stats: ContractionStats) -> str:
    """Which accumulation strategy codegen's gate would pick.

    Mirrors the generated kernel's dense-workspace condition
    (``wspace <= workspace_cap and n >= dense_threshold * wspace``) on
    the estimated per-chunk product count, and respects the
    ``REPRO_NO_CODEGEN`` kill-switch (the generic path is hash-only).
    """
    from repro.core.codegen import codegen_enabled

    if not codegen_enabled():
        return "hash"
    wspace = stats.fy_capacity
    if 0 < wspace <= DEFAULT_WORKSPACE_CAP and (
        stats.est_products >= DEFAULT_DENSE_THRESHOLD * wspace
    ):
        return "dense"
    return "hash"


def enumerate_plans(
    stats: ContractionStats,
    *,
    max_workers: Optional[int] = None,
) -> List[PlanCandidate]:
    """The candidate schedules scored for one contraction signature.

    Serial fused (with the codegen-predicted accumulator), its swapped
    mode permutation, and thread/process engines over a small
    worker-count ladder bounded by *max_workers* (default: CPU count).
    Deterministic order — ties in :func:`choose_plan` resolve to the
    earliest candidate, and serial comes first.
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    max_workers = max(int(max_workers), 1)
    acc = predicted_accumulator(stats)
    cands = [
        PlanCandidate(engine="serial", workers=1, accumulator=acc),
        PlanCandidate(
            engine="serial", workers=1, accumulator=acc, swap=True
        ),
    ]
    ladder = sorted(
        {w for w in (*_WORKER_STEPS, max_workers) if 2 <= w <= max_workers}
    )
    for engine in ("thread", "process"):
        for w in ladder:
            cands.append(
                PlanCandidate(
                    engine=engine,
                    workers=w,
                    parallel_stage1=True,
                    merge_output=True,
                    accumulator=acc,
                )
            )
    return cands


def _eligibility(candidate: PlanCandidate) -> Tuple[bool, str]:
    """Whether *candidate* may be chosen, and why not if not."""
    if candidate.swap:
        return False, "swap changes Table-2 operand roles"
    return True, ""


# ----------------------------------------------------------------------
# choice + decision cache
# ----------------------------------------------------------------------
_PLANNER_CACHE = LRUCache(maxsize=256)


def default_planner_cache() -> LRUCache:
    """The shared process-wide decision cache."""
    return _PLANNER_CACHE


def planner_cache_stats() -> CacheStats:
    """Statistics of the shared decision cache."""
    return _PLANNER_CACHE.stats


#: sentinel distinguishing "missing" from a cached falsy value
_MISSING = object()


def choose_plan(
    stats: ContractionStats,
    *,
    model: Optional[CostModel] = None,
    max_workers: Optional[int] = None,
    sort_output: bool = True,
    cache: Optional[LRUCache] = _PLANNER_CACHE,
) -> PlanDecision:
    """Score the schedule space for *stats* and pick the cheapest.

    Every candidate from :func:`enumerate_plans` is costed with the
    model; the cheapest *eligible* one wins (ties resolve to the
    earliest, so serial beats an equal-cost parallel run). The full
    scored table rides on the returned decision for explainability.
    Pass ``cache=None`` to bypass the process-wide decision LRU.
    """
    if model is None:
        model = CostModel()
    key = None
    if cache is not None:
        key = (
            stats.fingerprint(),
            None if max_workers is None else int(max_workers),
            bool(sort_output),
            model.calibration.digest(),
        )
        hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
    table: List[ScoredCandidate] = []
    best: Optional[ScoredCandidate] = None
    for cand in enumerate_plans(stats, max_workers=max_workers):
        est: CostEstimate = model.estimate(
            stats,
            engine=cand.engine,
            workers=cand.workers,
            parallel_stage1=cand.parallel_stage1,
            merge_output=cand.merge_output,
            accumulator=cand.accumulator,
            sort_output=sort_output,
        )
        eligible, reason = _eligibility(cand)
        row = ScoredCandidate(
            candidate=cand,
            seconds=est.seconds,
            eligible=eligible,
            reason=reason,
        )
        table.append(row)
        if eligible and (best is None or row.seconds < best.seconds):
            best = row
    if best is None:  # pragma: no cover - serial is always eligible
        raise ContractionError("no eligible schedule candidate")
    decision = PlanDecision(
        chosen=best.candidate,
        seconds=best.seconds,
        table=tuple(table),
        stats=stats,
        model_version=model.calibration.version,
    )
    if cache is not None:
        # store the hit-marked variant up front so cache hits are a
        # bare lookup on the planner's hot path
        cache.put(key, replace(decision, cached=True))
    return decision


def plan_contraction(
    x,
    y,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    model: Optional[CostModel] = None,
    max_workers: Optional[int] = None,
    sort_output: bool = True,
    exact: bool = False,
) -> PlanDecision:
    """Statistics + choice in one call, from live operands."""
    from repro.core.htycache import cached_plan

    plan = cached_plan(x, y, cx, cy)
    stats = contraction_stats(x, y, plan, exact=exact)
    return choose_plan(
        stats,
        model=model,
        max_workers=max_workers,
        sort_output=sort_output,
    )
