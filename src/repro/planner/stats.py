"""O(1) operand statistics the cost model scores schedules from.

The planner must be far cheaper than the work it routes, so everything
here derives from quantities a :class:`~repro.tensor.coo.SparseTensor`
already knows in O(1): non-zero counts, mode extents and the linearized
capacities of the contract/free index spaces. The only estimate is the
partial-product count, which models Y's groups as uniformly spread over
the contract key space LN(C) — the same estimate the PR 6 planner-lite
guard used, now kept as one field of a frozen statistics record.

:func:`contraction_stats` with ``exact=True`` replaces the group
estimate with the true distinct-contract-key count (one O(nnz_Y) pass
via :func:`repro.tensor.linearize.linearize`); the calibration fitter
uses it, the hot path never does.

The record is a frozen dataclass with a lossless ``to_dict`` /
``from_dict`` round trip so the decision-regression corpus can freeze
operand statistics as plain JSON fixtures without materializing
tensors.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.core.plan import ContractionPlan
from repro.errors import LinearizationOverflowError
from repro.tensor.coo import SparseTensor
from repro.tensor.linearize import linearize, ln_capacity

__all__ = ["ContractionStats", "contraction_stats"]


def _capacity(dims: Sequence[int], clamp: int) -> int:
    """|LN(dims)|, clamped to *clamp* when the product overflows int64."""
    try:
        return int(ln_capacity(tuple(dims)))
    except LinearizationOverflowError:
        return int(clamp)


@dataclass(frozen=True)
class ContractionStats:
    """Frozen O(1) characterization of one contraction signature."""

    nnz_x: int
    nnz_y: int
    x_shape: Tuple[int, ...]
    y_shape: Tuple[int, ...]
    cx: Tuple[int, ...]
    cy: Tuple[int, ...]
    #: |LN(C)| — size of the contracted index space (clamped at overflow)
    contract_capacity: int
    #: |LN(Fy)| — the dense-workspace extent codegen would allocate
    fy_capacity: int
    #: |LN(Fx)| (clamped) — bounds the distinct output sub-tensors
    fx_capacity: int
    #: distinct contract keys of Y (estimated, or exact when measured)
    groups: int
    #: whether ``groups`` was measured (one O(nnz_Y) pass) or estimated
    exact_groups: bool = False

    # ------------------------------------------------------------------
    @property
    def nfx(self) -> int:
        return len(self.x_shape) - len(self.cx)

    @property
    def nfy(self) -> int:
        return len(self.y_shape) - len(self.cy)

    @property
    def contract_density(self) -> float:
        """Occupancy of the contracted index space by Y's groups."""
        return self.groups / self.contract_capacity if self.contract_capacity else 0.0

    @property
    def est_products(self) -> int:
        """Expected partial products: every X non-zero probes HtY once;
        a hit streams the matched group's ``nnz_y / groups`` fiber."""
        return self.nnz_x * self.nnz_y // max(self.groups, 1)

    @property
    def est_created(self) -> int:
        """Expected Z_local entries: products, capped by the output key
        space (each distinct (Fx, Fy) key is created at most once)."""
        out_capacity = self.fx_capacity * self.fy_capacity
        if out_capacity <= 0:  # overflowed clamps multiplied
            return self.est_products
        return min(self.est_products, out_capacity)

    @property
    def sort_x_units(self) -> float:
        """n·log2(n) units of the stage-1 X sort."""
        n = self.nnz_x
        return n * math.log2(n) if n > 1 else 0.0

    @property
    def sort_z_units(self) -> float:
        """n·log2(n) units of the stage-5 output sort."""
        n = self.est_created
        return n * math.log2(n) if n > 1 else 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (lossless; see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping) -> "ContractionStats":
        """Rebuild from :meth:`to_dict` output (tuples from lists)."""
        return cls(
            nnz_x=int(d["nnz_x"]),
            nnz_y=int(d["nnz_y"]),
            x_shape=tuple(int(v) for v in d["x_shape"]),
            y_shape=tuple(int(v) for v in d["y_shape"]),
            cx=tuple(int(v) for v in d["cx"]),
            cy=tuple(int(v) for v in d["cy"]),
            contract_capacity=int(d["contract_capacity"]),
            fy_capacity=int(d["fy_capacity"]),
            fx_capacity=int(d["fx_capacity"]),
            groups=int(d["groups"]),
            exact_groups=bool(d.get("exact_groups", False)),
        )

    def fingerprint(self) -> Tuple:
        """Hashable identity for the decision cache."""
        return (
            self.nnz_x, self.nnz_y, self.x_shape, self.y_shape,
            self.cx, self.cy, self.groups, self.exact_groups,
        )


def contraction_stats(
    x: SparseTensor,
    y: SparseTensor,
    plan: ContractionPlan,
    *,
    exact: bool = False,
) -> ContractionStats:
    """Statistics of ``Z = X ×_{cx}^{cy} Y`` for the cost model.

    The default is pure O(1) arithmetic on counts and extents. With
    ``exact=True`` the distinct-contract-key count of Y is measured
    (one linearize + ``np.unique`` pass — what
    ``scripts/calibrate_planner.py`` feeds the fitter); the planner's
    hot path never pays that.
    """
    contract_capacity = _capacity(plan.contract_dims, y.nnz)
    if exact and y.nnz:
        keys = linearize(y.indices[:, list(plan.cy)], plan.contract_dims)
        groups = int(np.unique(keys).shape[0])
    else:
        groups = max(min(int(y.nnz), contract_capacity), 1)
    return ContractionStats(
        nnz_x=int(x.nnz),
        nnz_y=int(y.nnz),
        x_shape=tuple(x.shape),
        y_shape=tuple(y.shape),
        cx=plan.cx,
        cy=plan.cy,
        contract_capacity=contract_capacity,
        fy_capacity=_capacity(plan.fy_dims, y.nnz),
        fx_capacity=_capacity(plan.fx_dims, x.nnz),
        groups=max(groups, 1) if y.nnz else 0,
        exact_groups=bool(exact and y.nnz),
    )
