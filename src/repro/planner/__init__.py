"""Cost-model-driven contraction planner (auto-scheduler).

Per contraction signature, the planner derives O(1) operand statistics
(:mod:`repro.planner.stats`), predicts stage-level seconds and
Table-2-style traffic with offline-calibrated coefficients
(:mod:`repro.planner.cost_model`, :mod:`repro.planner.calibration`),
scores the discrete schedule space and returns an explainable
:class:`PlanDecision` (:mod:`repro.planner.decision`). Decisions cache
in an LRU beside the HtY/plan/kernel caches and surface through the
tracer (a ``plan`` span) and ``MetricsRegistry`` (``planner.*``
metrics, ``cache.planner.*``).

Entry points: ``contract(plan="auto")``, ``parallel_sparta`` (the
``REPRO_PLANNER`` env contract), ``ContractionSequence.run(plan=...)``
with greedy pairwise path search (:mod:`repro.planner.path`), and
``ttt --plan auto --explain-plan``.
"""

from repro.planner.calibration import (
    CALIBRATION_VERSION,
    COEFFICIENT_NAMES,
    CalibrationProfile,
    builtin_calibration,
    default_calibration,
)
from repro.planner.cost_model import CostEstimate, CostModel
from repro.planner.decision import (
    PlanCandidate,
    PlanDecision,
    ScoredCandidate,
    choose_plan,
    default_planner_cache,
    enumerate_plans,
    plan_contraction,
    planner_cache_stats,
    predicted_accumulator,
)
from repro.planner.ooc import OocDecision, estimate_in_core_peak, plan_ooc
from repro.planner.stats import ContractionStats, contraction_stats

__all__ = [
    "CALIBRATION_VERSION",
    "COEFFICIENT_NAMES",
    "CalibrationProfile",
    "ContractionStats",
    "CostEstimate",
    "CostModel",
    "OocDecision",
    "PlanCandidate",
    "PlanDecision",
    "ScoredCandidate",
    "builtin_calibration",
    "choose_plan",
    "contraction_stats",
    "default_calibration",
    "default_planner_cache",
    "enumerate_plans",
    "estimate_in_core_peak",
    "plan_contraction",
    "plan_ooc",
    "planner_cache_stats",
    "predicted_accumulator",
]
