"""Versioned calibration profiles for the planner's cost model.

The cost model is linear in operand statistics: each stage's predicted
seconds is a sum of ``coefficient x count`` terms (seconds per sorted
element, per probe, per partial product, ...), plus per-backend pool
overheads and parallel-efficiency factors. The coefficients are
machine-dependent, so they are fitted offline
(``scripts/calibrate_planner.py``) against measured stage seconds and
persisted here as a versioned JSON document committed next to the code
(``calibration.json``).

Versioning: ``CALIBRATION_VERSION`` bumps whenever the coefficient set
or the formulas consuming it change shape; a loaded profile with a
different version is rejected rather than silently misread. The
decision-regression corpus (``tests/planner/test_decisions.py``) pins
the *decisions* the committed profile produces, so re-fitting on a new
machine that flips a decision fails loudly and must update the
snapshots deliberately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping

from repro.errors import ContractionError

__all__ = [
    "CALIBRATION_VERSION",
    "COEFFICIENT_NAMES",
    "CalibrationProfile",
    "default_calibration",
    "builtin_calibration",
]

#: bump when coefficient names or consuming formulas change shape
CALIBRATION_VERSION = 1

#: committed fitted profile, loaded by :func:`default_calibration`
CALIBRATION_PATH = Path(__file__).with_name("calibration.json")

#: analytically chosen fallbacks (seconds per unit; ratios matter more
#: than absolute values — decisions compare candidates on one machine)
_BUILTIN_COEFFICIENTS: Dict[str, float] = {
    # serial per-element work
    "sort_unit": 1.2e-8,        # per n*log2(n) sort unit (stages 1/5)
    "hty_build": 1.0e-7,        # per Y non-zero (COO -> HtY)
    "probe": 2.0e-8,            # per X probe (stage 2 batched lookup)
    "product_hash": 6.0e-9,     # per partial product, hash accumulation
    "product_dense": 3.0e-9,    # per partial product, dense workspace
    "writeback": 2.5e-8,        # per created output non-zero (stage 4)
    "merge_unit": 8.0e-9,       # per output nnz of the stage-5 merge
    # parallel overheads (seconds)
    "thread_pool": 2.0e-4,      # ThreadPoolExecutor start-up
    "thread_worker": 1.0e-4,    # per thread
    "process_pool": 8.0e-3,     # SpartaProcessPool start-up
    "process_worker": 7.0e-3,   # per worker process (spawn + shm map)
    # effective parallel fraction of the ideal (workers-1) speedup
    "thread_efficiency": 0.35,  # GIL-bound; numpy releases it partially
    "process_efficiency": 0.70,
}

COEFFICIENT_NAMES = tuple(sorted(_BUILTIN_COEFFICIENTS))


@dataclass(frozen=True)
class CalibrationProfile:
    """One fitted coefficient set, with provenance."""

    version: int
    coefficients: Mapping[str, float]
    #: free-form provenance ("builtin", "fitted on <host> at <time>")
    fitted_on: str = "builtin"
    #: fit quality per fitted coefficient group (informational)
    fit_info: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.version != CALIBRATION_VERSION:
            raise ContractionError(
                f"calibration version {self.version} != supported "
                f"{CALIBRATION_VERSION}; re-run "
                "scripts/calibrate_planner.py"
            )
        missing = [n for n in COEFFICIENT_NAMES
                   if n not in self.coefficients]
        if missing:
            raise ContractionError(
                f"calibration profile missing coefficients: {missing}"
            )
        bad = {
            n: v for n, v in self.coefficients.items()
            if not (isinstance(v, (int, float)) and v > 0.0)
        }
        if bad:
            raise ContractionError(
                f"calibration coefficients must be positive: {bad}"
            )
        for name in ("thread_efficiency", "process_efficiency"):
            if not self.coefficients[name] <= 1.0:
                raise ContractionError(
                    f"{name} must be in (0, 1], got "
                    f"{self.coefficients[name]}"
                )

    def __getitem__(self, name: str) -> float:
        return float(self.coefficients[name])

    # ------------------------------------------------------------------
    def to_json(self, *, indent: int = 2) -> str:
        doc = {
            "version": self.version,
            "fitted_on": self.fitted_on,
            "coefficients": {
                n: float(self.coefficients[n]) for n in COEFFICIENT_NAMES
            },
            "fit_info": {k: float(v) for k, v in self.fit_info.items()},
        }
        return json.dumps(doc, indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CalibrationProfile":
        doc = json.loads(text)
        return cls(
            version=int(doc["version"]),
            coefficients={
                str(k): float(v)
                for k, v in doc["coefficients"].items()
            },
            fitted_on=str(doc.get("fitted_on", "unknown")),
            fit_info={
                str(k): float(v)
                for k, v in doc.get("fit_info", {}).items()
            },
        )

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "CalibrationProfile":
        return cls.from_json(Path(path).read_text())

    def digest(self) -> tuple:
        """Hashable identity (part of the decision-cache key)."""
        return (self.version,) + tuple(
            (n, float(self.coefficients[n])) for n in COEFFICIENT_NAMES
        )


def builtin_calibration() -> CalibrationProfile:
    """The analytic fallback profile (no fitted file needed)."""
    return CalibrationProfile(
        version=CALIBRATION_VERSION,
        coefficients=dict(_BUILTIN_COEFFICIENTS),
        fitted_on="builtin",
    )


_DEFAULT: CalibrationProfile | None = None


def default_calibration() -> CalibrationProfile:
    """The committed fitted profile, falling back to the builtin.

    Loaded once per process; ``scripts/calibrate_planner.py`` rewrites
    the JSON and the next process picks it up.
    """
    global _DEFAULT
    if _DEFAULT is None:
        if CALIBRATION_PATH.exists():
            _DEFAULT = CalibrationProfile.load(CALIBRATION_PATH)
        else:  # pragma: no cover - repo always ships the file
            _DEFAULT = builtin_calibration()
    return _DEFAULT
