"""Stage-level cost model: statistics + calibration -> predicted seconds.

Two predictions come out of one :class:`ContractionStats` record:

* :meth:`CostModel.predict_traffic` — Table-2-style per-stage byte
  totals, mirroring the accounting formulas in
  :mod:`repro.core.kernels` / :mod:`repro.core.common` with estimated
  counts substituted for measured ones. Machine-independent; the
  property suite checks its per-stage *ranks* against measured traffic
  on the seed workloads.
* :meth:`CostModel.estimate` — wall seconds for one concrete schedule
  candidate, as calibrated linear combinations of the same counts plus
  per-backend pool overheads and an efficiency-discounted parallel
  speedup. Candidates are only ever compared against each other, so
  consistent relative coefficients matter more than absolute accuracy.

Both are monotone in the inputs: every term is ``positive coefficient x
count``, so predicted cost never decreases when ``nnz``, the product
count or the contracted-space occupancy grows (pinned by
``tests/planner/test_cost_model.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.common import HT_ENTRY_BYTES, coo_row_bytes
from repro.core.kernels import HTA_CACHE_HIT
from repro.core.stages import Stage
from repro.planner.calibration import (
    CalibrationProfile,
    default_calibration,
)
from repro.planner.stats import ContractionStats

__all__ = ["CostEstimate", "CostModel"]

#: stage-name keys of the estimate dictionaries, in pipeline order
STAGE_KEYS = tuple(s.value for s in Stage)


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one (statistics, candidate) pairing."""

    #: predicted wall seconds per stage (serial work already divided by
    #: the candidate's effective parallelism where it applies)
    stage_seconds: Tuple[Tuple[str, float], ...]
    #: pool start-up + per-worker overhead seconds (zero for serial)
    overhead_seconds: float

    @property
    def seconds(self) -> float:
        """Total predicted wall seconds (the comparison key)."""
        return sum(s for _, s in self.stage_seconds) + self.overhead_seconds

    def to_dict(self) -> dict:
        return {
            "stage_seconds": {k: v for k, v in self.stage_seconds},
            "overhead_seconds": self.overhead_seconds,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class CostModel:
    """Calibrated stage-cost and traffic predictor."""

    calibration: CalibrationProfile = field(
        default_factory=default_calibration
    )

    # ------------------------------------------------------------------
    def predict_traffic(self, stats: ContractionStats) -> Dict[str, int]:
        """Per-stage predicted Table-2 byte totals (serial schedule).

        Mirrors ``prepare_x``/``record_hty_build``/
        ``record_computation_traffic``/``assemble_output`` with
        estimated counts: probes ~ ``nnz_x`` chain entries, products and
        created entries from the uniform-fiber model.
        """
        rowb_x = coo_row_bytes(len(stats.x_shape))
        rowb_y = coo_row_bytes(len(stats.y_shape))
        rowb_z = coo_row_bytes(stats.nfx + stats.nfy)
        products = stats.est_products
        created = stats.est_created
        miss = 1.0 - HTA_CACHE_HIT
        input_processing = (
            2 * stats.nnz_x * rowb_x              # X sort (read + write)
            + stats.nnz_y * rowb_y                # Y streamed once
            + stats.nnz_y * HT_ENTRY_BYTES        # HtY entries written
            + stats.groups * 8                    # bucket heads touched
        )
        index_search = (
            stats.nnz_x * rowb_x                  # X streamed once
            + stats.nnz_x * 8                     # bucket-head reads
            + stats.nnz_x * HT_ENTRY_BYTES        # ~1 chain entry/probe
            + products * 16                       # (LN(Fy), val) streams
        )
        accumulation = int(
            products * 16 * miss                  # HtA probe reads
            + (max(products - created, 0) * 8
               + created * HT_ENTRY_BYTES) * miss  # HtA updates/inserts
        ) + created * (8 * stats.nfx + 16)        # Z_local append
        writeback = 2 * created * rowb_z          # Z_local read, Z write
        output_sorting = 2 * created * rowb_z     # one sort pass
        return {
            Stage.INPUT_PROCESSING.value: int(input_processing),
            Stage.INDEX_SEARCH.value: int(index_search),
            Stage.ACCUMULATION.value: int(accumulation),
            Stage.WRITEBACK.value: int(writeback),
            Stage.OUTPUT_SORTING.value: int(output_sorting),
        }

    # ------------------------------------------------------------------
    def serial_stage_seconds(
        self,
        stats: ContractionStats,
        *,
        accumulator: str = "hash",
    ) -> Dict[str, float]:
        """Predicted serial seconds per stage (no pool overheads)."""
        c = self.calibration
        per_product = (
            c["product_dense"] if accumulator == "dense"
            else c["product_hash"]
        )
        return {
            Stage.INPUT_PROCESSING.value: (
                c["hty_build"] * stats.nnz_y
                + c["sort_unit"] * stats.sort_x_units
            ),
            Stage.INDEX_SEARCH.value: c["probe"] * stats.nnz_x,
            Stage.ACCUMULATION.value: per_product * stats.est_products,
            Stage.WRITEBACK.value: c["writeback"] * stats.est_created,
            Stage.OUTPUT_SORTING.value: c["sort_unit"] * stats.sort_z_units,
        }

    def estimate(
        self,
        stats: ContractionStats,
        *,
        engine: str = "serial",
        workers: int = 1,
        parallel_stage1: bool = True,
        merge_output: bool = True,
        accumulator: str = "hash",
        sort_output: bool = True,
    ) -> CostEstimate:
        """Predicted wall cost of running *stats* on one schedule.

        ``engine`` is ``"serial"``, ``"thread"`` or ``"process"``;
        parallel engines divide the parallelizable share of each stage
        by an efficiency-discounted speedup and add the backend's pool
        overheads. The division can only *shrink* per-stage seconds, so
        monotonicity in the statistics is preserved.
        """
        c = self.calibration
        serial = self.serial_stage_seconds(stats, accumulator=accumulator)
        overhead = 0.0
        if engine == "serial" or workers <= 1:
            stages = dict(serial)
        else:
            eff = c[f"{engine}_efficiency"]
            speedup = 1.0 + (workers - 1) * eff
            stages = dict(serial)
            # Stages 2-3 (and stage 1's HtY build under parallel_stage1)
            # run on the workers; X sort, writeback and the stage-5
            # merge/sort stay in the parent.
            stages[Stage.INDEX_SEARCH.value] /= speedup
            stages[Stage.ACCUMULATION.value] /= speedup
            if parallel_stage1:
                sort_x = c["sort_unit"] * stats.sort_x_units
                hty = c["hty_build"] * stats.nnz_y
                stages[Stage.INPUT_PROCESSING.value] = (
                    sort_x + hty / speedup
                )
            overhead = (
                c[f"{engine}_pool"] + c[f"{engine}_worker"] * workers
            )
        if engine != "serial" and merge_output:
            # Merge-based output sorting: each worker sorts its own run
            # of ~created/workers entries concurrently, then the parent
            # k-way-merges the presorted runs. The run sort shrinks
            # with workers while the merge grows with log2(workers), so
            # the model can prefer wider pools on sort-heavy outputs
            # and narrower ones when the merge would dominate.
            per_run = stats.est_created / max(workers, 1)
            run_sort = (
                c["sort_unit"] * per_run
                * math.log2(max(per_run, 2.0))
            )
            kway = (
                c["merge_unit"] * stats.est_created
                * max(math.log2(max(workers, 2)), 1.0)
            )
            stages[Stage.OUTPUT_SORTING.value] = min(
                stages[Stage.OUTPUT_SORTING.value],
                run_sort + kway,
            )
        if not sort_output:
            stages[Stage.OUTPUT_SORTING.value] = 0.0
        return CostEstimate(
            stage_seconds=tuple(
                (k, float(stages[k])) for k in STAGE_KEYS
            ),
            overhead_seconds=float(overhead),
        )
