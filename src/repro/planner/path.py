"""Greedy pairwise contraction-path search for sequences.

A :class:`~repro.core.sequence.ContractionSequence` names each step's
contract modes against the running tensor *as laid out by the original
step order*. Re-ordering steps is only meaningful when it cannot change
what is computed: every step must contract modes that originate from
the *initial* tensor (not modes appended by an earlier step). This
module tracks mode provenance through the chain, decides whether the
steps commute, re-resolves a step's contract modes against the running
tensor's current layout at execution time, and computes the final
permutation that restores the original-order mode layout — so a
re-ordered run returns a tensor with identical indices (values equal up
to floating-point re-association, which is why path search is opt-in).

The greedy search itself lives in ``ContractionSequence.run``: at each
point the planner costs every remaining runnable step against the
actual running tensor and executes the cheapest next.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ContractionError

__all__ = ["ModeTracker", "commuting_steps", "restore_permutation"]

#: provenance label: ("init", mode) or ("step", step_index, fy_position)
Label = Tuple


@dataclass
class ModeTracker:
    """Provenance labels of the running tensor's modes."""

    labels: List[Label]

    @classmethod
    def for_initial(cls, order: int) -> "ModeTracker":
        return cls([("init", m) for m in range(order)])

    def consume(
        self, cx: Sequence[int], step_index: int, operand_free: int
    ) -> List[Label]:
        """Apply one step: drop the contracted modes, append the
        operand's free modes. Returns the consumed labels in cx order
        (the pairing order against the operand's cy)."""
        consumed = [self.labels[m] for m in cx]
        keep = [
            lab for i, lab in enumerate(self.labels) if i not in set(cx)
        ]
        produced = [
            ("step", step_index, j) for j in range(operand_free)
        ]
        self.labels = keep + produced
        return consumed

    def locate(self, wanted: Sequence[Label]) -> Tuple[int, ...]:
        """Current positions of the given labels, in the given order."""
        positions = []
        for lab in wanted:
            try:
                positions.append(self.labels.index(lab))
            except ValueError:  # pragma: no cover - guarded by caller
                raise ContractionError(
                    f"mode {lab} no longer present in the running tensor"
                ) from None
        return tuple(positions)


def commuting_steps(
    initial_order: int, steps
) -> Optional[List[List[Label]]]:
    """Per-step consumed labels when every step commutes, else ``None``.

    Simulates the chain in its original order; a step that contracts a
    mode *produced* by an earlier step is order-dependent, and the whole
    chain falls back to the written order. Each ``steps[i]`` needs
    ``cx`` (modes of the running tensor) and ``operand`` (for its free
    mode count).
    """
    tracker = ModeTracker.for_initial(initial_order)
    consumed_per_step: List[List[Label]] = []
    for i, step in enumerate(steps):
        consumed = tracker.consume(
            step.cx, i, step.operand.order - len(step.cy)
        )
        consumed_per_step.append(consumed)
    for consumed in consumed_per_step:
        if any(lab[0] != "init" for lab in consumed):
            return None
    return consumed_per_step


def reference_labels(initial_order: int, steps) -> List[Label]:
    """Final mode labels of the chain run in its written order."""
    tracker = ModeTracker.for_initial(initial_order)
    for i, step in enumerate(steps):
        tracker.consume(step.cx, i, step.operand.order - len(step.cy))
    return tracker.labels


def restore_permutation(
    achieved: Sequence[Label], reference: Sequence[Label]
) -> Tuple[int, ...]:
    """Mode order mapping the achieved layout back to the reference one.

    ``t.permute(restore_permutation(a, r))`` relabels a tensor whose
    modes carry labels *a* so its modes carry labels *r* in order.
    """
    if sorted(achieved) != sorted(reference):  # pragma: no cover
        raise ContractionError(
            f"mode label sets differ: {achieved} vs {reference}"
        )
    index = {lab: i for i, lab in enumerate(achieved)}
    return tuple(index[lab] for lab in reference)
