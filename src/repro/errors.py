"""Exception hierarchy for the Sparta reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError, ValueError):
    """A tensor shape, mode list, or index array is inconsistent."""


class ContractionError(ReproError, ValueError):
    """A contraction plan is invalid (mismatched contract modes, etc.)."""


class LinearizationOverflowError(ReproError, OverflowError):
    """The large-number (LN) linearized index would not fit in int64."""


class FormatError(ReproError, ValueError):
    """A file or in-memory format is malformed."""


class ParallelError(ReproError, RuntimeError):
    """A parallel worker failed or a worker pool did not complete."""


class WorkerCrashError(ParallelError):
    """A parallel worker raised a Python exception.

    Exceptions are deterministic (re-running the same chunk would raise
    again), so the pool surfaces them immediately instead of burning
    retries; hard deaths, hangs and corrupt payloads go through the
    recovery path instead.
    """


class PoolDegradedError(ParallelError):
    """Worker-failure recovery exhausted its retry budget.

    Raised when chunks are still unfinished after ``max_retries``
    respawn rounds and ``on_failure="raise"``; with
    ``on_failure="serial"`` the missing chunks are recomputed serially
    in the parent instead (recorded on the run profile).
    """


class CapacityError(ReproError, RuntimeError):
    """A memory device cannot satisfy an allocation request."""


class MemoryBudgetError(ReproError, RuntimeError):
    """A strict memory budget was exceeded by a live allocation.

    Only raised when the :class:`~repro.ooc.MemoryBudget` was created
    with ``strict=True``; the default accountant records the overrun in
    its counters and lets the engine proceed (the out-of-core planner
    sizes runs so overruns mean a single unsplittable allocation, not a
    leak).
    """


class SpillError(ReproError, RuntimeError):
    """A spill run file is malformed, truncated, or failed integrity."""


class PlacementError(ReproError, ValueError):
    """A data-placement decision references unknown objects or devices."""


class ServeError(ReproError, RuntimeError):
    """The contraction service could not accept or complete a request."""


class ServiceOverloadedError(ServeError):
    """Admission control rejected a request or pin — try again later.

    Raised by :mod:`repro.serve` when a tenant's queue (or the global
    queue) is at its depth bound, or when a pin would exceed the
    tenant's share of the registry's memory budget. ``retry_after`` is
    the server's estimate, in seconds, of when capacity frees up
    (0.0 when the caller must first release resources itself, e.g.
    unpin an operand). ``tenant`` names the quota that was exhausted —
    backpressure is per-tenant, never collective.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 0.0,
        tenant: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.tenant = tenant


class UnknownHandleError(ServeError, KeyError):
    """A request referenced an operand handle the registry does not hold
    (never pinned, already unpinned, or evicted under memory pressure)."""
