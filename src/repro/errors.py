"""Exception hierarchy for the Sparta reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError, ValueError):
    """A tensor shape, mode list, or index array is inconsistent."""


class ContractionError(ReproError, ValueError):
    """A contraction plan is invalid (mismatched contract modes, etc.)."""


class LinearizationOverflowError(ReproError, OverflowError):
    """The large-number (LN) linearized index would not fit in int64."""


class FormatError(ReproError, ValueError):
    """A file or in-memory format is malformed."""


class ParallelError(ReproError, RuntimeError):
    """A parallel worker failed or a worker pool did not complete."""


class CapacityError(ReproError, RuntimeError):
    """A memory device cannot satisfy an allocation request."""


class PlacementError(ReproError, ValueError):
    """A data-placement decision references unknown objects or devices."""
