"""repro — a Python reproduction of Sparta (PPoPP 2021).

Sparta: High-Performance, Element-Wise Sparse Tensor Contraction on
Heterogeneous Memory (Liu, Ren, Gioiosa, Li, Li).

Public entry points:

* :func:`repro.contract` — run a sparse tensor contraction with any engine;
* :class:`repro.SparseTensor` — COO sparse tensors;
* :mod:`repro.memory` — the heterogeneous-memory placement simulator;
* :mod:`repro.experiments` — regenerate every figure/table of the paper.
"""

from repro.core import (
    ContractionPlan,
    ContractionResult,
    ContractionSequence,
    RunProfile,
    Stage,
    contract,
    einsum,
    engines,
)
from repro.tensor import (
    BlockSparseTensor,
    CSFTensor,
    SparseTensor,
    random_tensor,
    random_tensor_fibered,
    read_tns,
    write_tns,
)

__version__ = "1.0.0"

__all__ = [
    "BlockSparseTensor",
    "CSFTensor",
    "ContractionPlan",
    "ContractionResult",
    "RunProfile",
    "SparseTensor",
    "Stage",
    "__version__",
    "ContractionSequence",
    "contract",
    "einsum",
    "engines",
    "random_tensor",
    "random_tensor_fibered",
    "read_tns",
    "write_tns",
]
