"""Analytic thread-scalability model (paper §5.4, Figure 6).

This host has one physical core, so multi-core wall-clock cannot be
measured; the paper's thread scaling comes from the *structure* of the
algorithm, which we model per stage:

* the computation stages parallelize over sub-tensors with thread-private
  accumulators — near-linear, limited by a small serial fraction and by
  load imbalance across the sub-tensor partition;
* input processing (task-parallel quicksort; lock-protected HtY build)
  and output sorting have larger serial fractions;
* HtY construction uses per-bucket locks — contention grows with the
  thread count over the bucket distribution.

Per-stage serial fractions are calibrated so a 12-thread prediction
matches the paper's reported per-stage speedups (§5.4: index search
10.4x, accumulation 10.9x, writeback 9.5x, input processing 6.8x, output
sorting 6.2x, HtY build 7.8x); the *combination* uses this repository's
own measured stage breakdown per workload, so different SpTCs produce
different end-to-end curves exactly as in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.profile import RunProfile
from repro.core.stages import STAGE_ORDER, Stage
from repro.errors import ShapeError


def _serial_fraction(target_speedup: float, threads: int = 12) -> float:
    """Invert Amdahl's law: the serial fraction giving *target_speedup*."""
    return (threads / target_speedup - 1.0) / (threads - 1.0)


#: serial fractions calibrated to §5.4's 12-thread per-stage speedups
CALIBRATED_SERIAL_FRACTIONS: Dict[Stage, float] = {
    Stage.INPUT_PROCESSING: _serial_fraction(6.8),
    Stage.INDEX_SEARCH: _serial_fraction(10.4),
    Stage.ACCUMULATION: _serial_fraction(10.9),
    Stage.WRITEBACK: _serial_fraction(9.5),
    Stage.OUTPUT_SORTING: _serial_fraction(6.2),
}

#: lock-contention coefficient for the HtY build: the paper reports 7.8x
#: at 12 threads for the lock-protected parallel insertion
HTY_BUILD_SPEEDUP_12T = 7.8


@dataclass
class ScalabilityModel:
    """Predict stage and end-to-end speedups for a thread count."""

    serial_fractions: Mapping[Stage, float] = None  # type: ignore[assignment]
    #: multiplicative load-imbalance penalty on computation stages
    #: (1.0 = perfectly balanced; measured partitions are typically <1.1)
    load_imbalance: float = 1.0

    def __post_init__(self) -> None:
        if self.serial_fractions is None:
            self.serial_fractions = dict(CALIBRATED_SERIAL_FRACTIONS)
        if self.load_imbalance < 1.0:
            raise ShapeError(
                f"load_imbalance must be >= 1, got {self.load_imbalance}"
            )

    def stage_speedup(self, stage: Stage, threads: int) -> float:
        """Amdahl speedup of one stage at *threads* threads."""
        if threads <= 0:
            raise ShapeError(f"threads must be positive, got {threads}")
        if threads == 1:
            return 1.0
        s = self.serial_fractions[stage]
        speedup = threads / (1.0 + s * (threads - 1.0))
        if stage in (Stage.INDEX_SEARCH, Stage.ACCUMULATION, Stage.WRITEBACK):
            speedup /= self.load_imbalance
        return max(speedup, 1.0)

    def predict(
        self, profile: RunProfile, threads: int
    ) -> "ScalabilityPrediction":
        """End-to-end speedup for a measured 1-thread stage breakdown."""
        total = profile.total_seconds
        if total <= 0:
            raise ShapeError("profile has no recorded stage times")
        stage_times = {
            stage: profile.stage_seconds.get(stage, 0.0)
            for stage in STAGE_ORDER
        }
        parallel_times = {
            stage: t / self.stage_speedup(stage, threads)
            for stage, t in stage_times.items()
        }
        return ScalabilityPrediction(
            threads=threads,
            serial_seconds=total,
            parallel_seconds=sum(parallel_times.values()),
            stage_speedups={
                stage: self.stage_speedup(stage, threads)
                for stage in STAGE_ORDER
            },
        )

    @staticmethod
    def hty_build_speedup(threads: int) -> float:
        """Lock-protected HtY build speedup (per-bucket lock contention).

        Modeled as Amdahl with the serial fraction calibrated to the
        paper's 7.8x at 12 threads.
        """
        if threads <= 1:
            return 1.0
        s = _serial_fraction(HTY_BUILD_SPEEDUP_12T)
        return threads / (1.0 + s * (threads - 1.0))


@dataclass
class ScalabilityPrediction:
    """Model output for one (profile, thread count) pair."""

    threads: int
    serial_seconds: float
    parallel_seconds: float
    stage_speedups: Dict[Stage, float]

    @property
    def speedup(self) -> float:
        """End-to-end predicted speedup over one thread."""
        if self.parallel_seconds <= 0:
            return 1.0
        return self.serial_seconds / self.parallel_seconds
