"""Parallel execution layer: partitioning, thread pool, scalability model."""

from repro.parallel.executor import (
    ParallelResult,
    ThreadStats,
    parallel_sparta,
)
from repro.parallel.model import (
    CALIBRATED_SERIAL_FRACTIONS,
    ScalabilityModel,
    ScalabilityPrediction,
)
from repro.parallel.partition import partition_imbalance, partition_subtensors

__all__ = [
    "CALIBRATED_SERIAL_FRACTIONS",
    "ParallelResult",
    "ScalabilityModel",
    "ScalabilityPrediction",
    "ThreadStats",
    "parallel_sparta",
    "partition_imbalance",
    "partition_subtensors",
]
