"""Parallel execution layer: partitioning, thread/process backends,
scalability model."""

from repro.parallel.executor import (
    BACKENDS,
    ParallelResult,
    ThreadStats,
    parallel_sparta,
)
from repro.parallel.model import (
    CALIBRATED_SERIAL_FRACTIONS,
    ScalabilityModel,
    ScalabilityPrediction,
)
from repro.parallel.partition import partition_imbalance, partition_subtensors
from repro.parallel.procpool import (
    DEFAULT_CHUNKS_PER_WORKER,
    SharedOperandSpec,
    attach_operands,
    contract_chunks_in_processes,
    export_operands,
    resolve_start_method,
)

__all__ = [
    "BACKENDS",
    "CALIBRATED_SERIAL_FRACTIONS",
    "DEFAULT_CHUNKS_PER_WORKER",
    "ParallelResult",
    "ScalabilityModel",
    "ScalabilityPrediction",
    "SharedOperandSpec",
    "ThreadStats",
    "attach_operands",
    "contract_chunks_in_processes",
    "export_operands",
    "parallel_sparta",
    "partition_imbalance",
    "partition_subtensors",
    "resolve_start_method",
]
