"""Parallel execution layer: partitioning, thread/process backends,
scalability model."""

from repro.parallel.executor import (
    BACKENDS,
    CHUNKINGS,
    ParallelResult,
    ThreadStats,
    parallel_sparta,
)
from repro.parallel.merge import (
    merge_fused_runs,
    merge_sorted_runs,
    run_is_sorted,
    runs_strictly_ordered,
)
from repro.parallel.model import (
    CALIBRATED_SERIAL_FRACTIONS,
    ScalabilityModel,
    ScalabilityPrediction,
)
from repro.parallel.partition import (
    partition_by_count,
    partition_imbalance,
    partition_subtensors,
    select_units,
    tag_units,
)
from repro.parallel.procpool import (
    DEFAULT_CHUNKS_PER_WORKER,
    RecoveryLog,
    RecoveryPolicy,
    SharedOperandSpec,
    SharedYSpec,
    SpartaProcessPool,
    attach_operands,
    contract_chunks_in_processes,
    export_operands,
    export_y,
    resolve_start_method,
)

__all__ = [
    "BACKENDS",
    "CALIBRATED_SERIAL_FRACTIONS",
    "CHUNKINGS",
    "DEFAULT_CHUNKS_PER_WORKER",
    "ParallelResult",
    "RecoveryLog",
    "RecoveryPolicy",
    "ScalabilityModel",
    "ScalabilityPrediction",
    "SharedOperandSpec",
    "SharedYSpec",
    "SpartaProcessPool",
    "ThreadStats",
    "attach_operands",
    "contract_chunks_in_processes",
    "export_operands",
    "export_y",
    "merge_fused_runs",
    "merge_sorted_runs",
    "parallel_sparta",
    "partition_by_count",
    "partition_imbalance",
    "partition_subtensors",
    "resolve_start_method",
    "run_is_sorted",
    "runs_strictly_ordered",
    "select_units",
    "tag_units",
]
