"""Merge-based output sorting (parallel stage 5, paper §3.5/Figure 2).

The serial engine ends with a full lexicographic sort of Z. In the
parallel executor each worker range already leaves stage 4 with its
output in ``(fgrp, fy)`` order — ``fused_compute`` emits one segment per
sub-tensor in ascending order with the free keys sorted inside each
segment — and the gather concatenates ranges in ascending sub-tensor
order. So globally sorting Z again is redundant work on the critical
path: stage 5 only needs to *merge* the per-range sorted runs.

:func:`merge_fused_runs` does that with three escalating strategies:

* ``concat`` — ranges cover disjoint ascending sub-tensor spans (the
  executor's normal case), so their runs are already globally ordered:
  verify the O(k) run boundaries and concatenate;
* ``kway`` — runs are individually sorted but overlap: a pairwise
  ``np.searchsorted`` merge tree combines them in ``log2(k)`` vector
  rounds with no Python per-row loop;
* ``lexsort`` — packed 64-bit keys would overflow (astronomical free
  space) or a run is not internally sorted: fall back to the full sort.

All three give output byte-identical to ``z.sort()`` on the
concatenated runs: every (fgrp, fy) key maps monotonically to Z's
lexicographic row order, the merges are stable, and ``np.lexsort`` on
already-sorted unique keys is the identity permutation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def run_is_sorted(keys: np.ndarray) -> bool:
    """True when one key run is internally non-decreasing."""
    return keys.shape[0] < 2 or bool(np.all(keys[1:] >= keys[:-1]))


def runs_strictly_ordered(keys: Sequence[np.ndarray]) -> bool:
    """True when consecutive runs are already globally ordered.

    Holds for the executor's normal gather (disjoint ascending
    sub-tensor spans concatenated in span order) — and must keep
    holding after fault recovery, because reassigned chunks are
    recomputed over their *original* boundaries and gathered by chunk
    id (pinned by the fault-injection suite).
    """
    return all(
        int(keys[i][-1]) <= int(keys[i + 1][0])
        for i in range(len(keys) - 1)
    )


def _merge_two(
    keys_a: np.ndarray,
    idx_a: np.ndarray,
    keys_b: np.ndarray,
    idx_b: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable two-way merge of sorted key runs (a's ties come first)."""
    pos = np.searchsorted(keys_a, keys_b, side="right")
    n = keys_a.shape[0] + keys_b.shape[0]
    where_b = pos + np.arange(keys_b.shape[0], dtype=np.int64)
    mask = np.zeros(n, dtype=bool)
    mask[where_b] = True
    keys = np.empty(n, dtype=keys_a.dtype)
    idx = np.empty(n, dtype=idx_a.dtype)
    keys[mask] = keys_b
    idx[mask] = idx_b
    keys[~mask] = keys_a
    idx[~mask] = idx_a
    return keys, idx


def merge_sorted_runs(
    runs: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """k-way merge of sorted key runs → ``(merged_keys, gather)``.

    ``gather`` indexes the concatenation of *runs* such that
    ``np.concatenate(runs)[gather] == merged_keys``; apply it to any
    payload arrays concatenated in the same run order. The merge is
    stable (ties keep run order, then within-run order), i.e. equivalent
    to a stable sort of the concatenation, and runs as a pairwise
    ``np.searchsorted`` merge tree: ``log2(k)`` rounds of O(n) vector
    work, no Python per-row loop.
    """
    runs = [np.asarray(r) for r in runs]
    if not runs:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    offsets = np.concatenate(
        ([0], np.cumsum([r.shape[0] for r in runs])[:-1])
    )
    pairs = [
        (r, off + np.arange(r.shape[0], dtype=np.int64))
        for r, off in zip(runs, offsets)
    ]
    while len(pairs) > 1:
        nxt = []
        for i in range(0, len(pairs) - 1, 2):
            ka, ia = pairs[i]
            kb, ib = pairs[i + 1]
            nxt.append(_merge_two(ka, ia, kb, ib))
        if len(pairs) % 2:
            nxt.append(pairs[-1])
        pairs = nxt
    return pairs[0]


def merge_fused_runs(
    fused: Sequence,
    fy_dims: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, bool, str]:
    """Combine per-range fused outputs into globally sorted Z arrays.

    *fused* holds :class:`~repro.core.kernels.FusedRange` objects (or
    anything with ``out_fgrp``/``out_fy``/``out_vals``); *fy_dims* are
    the free-mode dims of Y, bounding ``out_fy`` so the pair packs into
    one int64 key. Returns ``(fgrp, fy, vals, presorted, path)``:
    ``presorted=True`` means the arrays are already in the exact order
    ``z.sort()`` would produce, so the caller can skip the final lexsort
    byte-identically; ``path`` names the strategy taken (``empty`` /
    ``concat`` / ``kway`` / ``lexsort``) for the profile counters.
    """
    runs = [fr for fr in fused if fr.out_fgrp.shape[0]]
    if not runs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty.astype(np.float64), True, "empty"

    fy_span = 1
    for d in fy_dims:
        fy_span *= int(d)
    fy_span = max(fy_span, 1)

    def concat() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.concatenate([fr.out_fgrp for fr in runs]),
            np.concatenate([fr.out_fy for fr in runs]),
            np.concatenate([fr.out_vals for fr in runs]),
        )

    max_fgrp = max(int(fr.out_fgrp.max()) for fr in runs)
    # Python-int check: the packed (fgrp, fy) key must fit in int64.
    if (max_fgrp + 1) * fy_span > 2**63 - 1:
        fgrp, fy, vals = concat()
        return fgrp, fy, vals, False, "lexsort"

    span = np.int64(fy_span)
    keys = [
        fr.out_fgrp.astype(np.int64) * span
        + fr.out_fy.astype(np.int64)
        for fr in runs
    ]
    if not all(run_is_sorted(k) for k in keys):
        fgrp, fy, vals = concat()
        return fgrp, fy, vals, False, "lexsort"
    if runs_strictly_ordered(keys):
        fgrp, fy, vals = concat()
        return fgrp, fy, vals, True, "concat"
    _, gather = merge_sorted_runs(keys)
    fgrp, fy, vals = concat()
    return fgrp[gather], fy[gather], vals[gather], True, "kway"


__all__: List[str] = [
    "merge_fused_runs",
    "merge_sorted_runs",
    "run_is_sorted",
    "runs_strictly_ordered",
]
