"""Thread-parallel Sparta (paper §3.5).

The outer loop over X's mode-F sub-tensors is embarrassingly parallel once
each thread owns a private accumulator and Z_local buffer; HtY is built
once and shared read-only. This module runs that structure on a real
``ThreadPoolExecutor``:

* correctness is exercised with any thread count (results are gathered
  exactly as Algorithm 2 line 17 describes);
* per-thread work statistics (non-zeros, products, seconds) feed the
  scalability model, since a single-core host cannot measure true
  multi-core wall-clock scaling.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.common import (
    LocalOutput,
    assemble_output,
    expand_ranges,
    prepare_x,
)
from repro.core.plan import ContractionPlan
from repro.core.profile import RunProfile
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.errors import ShapeError
from repro.hashtable.accumulator import HashAccumulator
from repro.hashtable.tensor_table import HashTensor
from repro.parallel.partition import partition_imbalance, partition_subtensors
from repro.tensor.coo import SparseTensor

ENGINE_NAME = "sparta_parallel"


@dataclass
class ThreadStats:
    """Work done by one worker thread."""

    worker: int
    subtensors: int
    nnz_x: int
    products: int
    output_nnz: int
    seconds: float


@dataclass
class ParallelResult:
    """Contraction result plus per-thread accounting."""

    result: ContractionResult
    threads: int
    thread_stats: List[ThreadStats] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """max worker products / mean worker products."""
        loads = [s.products for s in self.thread_stats] or [0]
        mean = sum(loads) / len(loads)
        return (max(loads) / mean) if mean else 1.0


def parallel_sparta(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    threads: int = 4,
    sort_output: bool = True,
    num_buckets: Optional[int] = None,
) -> ParallelResult:
    """Run Sparta with *threads* workers over the sub-tensor loop."""
    if threads <= 0:
        raise ShapeError(f"threads must be positive, got {threads}")
    plan = ContractionPlan.create(x, y, cx, cy)
    profile = RunProfile(ENGINE_NAME)
    clock = time.perf_counter

    t0 = clock()
    px = prepare_x(x, plan, profile)
    hty = HashTensor.from_coo(y, plan.cy, num_buckets=num_buckets)
    profile.add_time(Stage.INPUT_PROCESSING, clock() - t0)
    profile.counters["nnz_y"] = y.nnz
    profile.counters["hty_groups"] = hty.num_groups

    ranges = partition_subtensors(px.ptr, threads)
    profile.counters["partition_ranges"] = len(ranges)

    def worker(args: Tuple[int, int, int]) -> Tuple[LocalOutput, ThreadStats]:
        wid, lo, hi = args
        t_start = clock()
        local = LocalOutput()
        products = 0
        nnz_seen = 0
        for f in range(lo, hi):
            s, e = int(px.ptr[f]), int(px.ptr[f + 1])
            nnz_seen += e - s
            keys = px.cx_ln[s:e]
            gids = hty.lookup_many(keys)
            rows = np.flatnonzero(gids >= 0)
            if rows.size == 0:
                continue
            grp = gids[rows]
            starts = hty.group_ptr[grp]
            lens = (hty.group_ptr[grp + 1] - starts).astype(np.int64)
            gather = expand_ranges(starts, lens)
            acc = HashAccumulator(capacity_hint=int(gather.shape[0]) or 16)
            acc.add_many(
                hty.free_ln[gather],
                np.repeat(px.values[s + rows], lens) * hty.values[gather],
            )
            k, v = acc.export()
            local.append(px.fx_rows[f], k, v)
            products += int(gather.shape[0])
        return local, ThreadStats(
            worker=wid,
            subtensors=hi - lo,
            nnz_x=nnz_seen,
            products=products,
            output_nnz=local.nnz,
            seconds=clock() - t_start,
        )

    t0 = clock()
    tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(ranges)]
    if threads == 1 or len(tasks) <= 1:
        outputs = [worker(t) for t in tasks]
    else:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            outputs = list(pool.map(worker, tasks))
    compute_seconds = clock() - t0
    # Python threads share one interpreter; wall time on this host is not
    # the multi-core time. Split measured compute across the search and
    # accumulation stages proportionally to the serial engines' typical
    # split, and let the scalability model handle thread counts.
    profile.add_time(Stage.INDEX_SEARCH, compute_seconds * 0.3)
    profile.add_time(Stage.ACCUMULATION, compute_seconds * 0.7)
    profile.bump("products", sum(s.products for _, s in outputs))

    t0 = clock()
    locals_ = [loc for loc, _ in outputs]
    z = assemble_output(locals_, plan, profile, sort_output=False)
    profile.add_time(Stage.WRITEBACK, clock() - t0)
    if sort_output:
        t0 = clock()
        z = z.sort()
        profile.add_time(Stage.OUTPUT_SORTING, clock() - t0)
    profile.counters["load_imbalance_x1000"] = int(
        partition_imbalance(px.ptr, ranges) * 1000
    )
    return ParallelResult(
        result=ContractionResult(z, profile, plan),
        threads=threads,
        thread_stats=[s for _, s in outputs],
    )
