"""Parallel Sparta (paper §3.5) — thread and process backends.

The outer loop over X's mode-F sub-tensors is embarrassingly parallel
once each worker owns a private accumulator and Z_local buffer; HtY is
built once and shared read-only. Two backends run that structure:

* ``backend="thread"`` — a ``ThreadPoolExecutor`` over static balanced
  ranges. Python threads share one interpreter, so this backend models
  the parallel structure (per-worker statistics feed the scalability
  model) but cannot measure true multi-core wall-clock scaling;
* ``backend="process"`` — :mod:`repro.parallel.procpool`: operands are
  exported to shared memory, persistent worker processes claim
  sub-tensor chunks through a shared counter (work stealing), and the
  parent gathers per-chunk outputs in deterministic chunk order. This
  backend measures *real* wall-clock scaling on multi-core hosts
  (:attr:`ParallelResult.wall_seconds`).

Both backends execute the fused flat-batch kernel
(:func:`repro.core.kernels.fused_compute`) per worker range — one
batched search and one segmented accumulation per range — and both are
bit-identical to the serial fused engine: ranges/chunks cut at
sub-tensor boundaries, so every output key is reduced inside a single
range in X-row order, and the gather concatenates ranges in ascending
sub-tensor order exactly as Algorithm 2 line 17 describes.

The profile charges the same Table-2 traffic set as the serial engine —
HtY build, HtY probe reads, HtA accumulation and Z_local/Z writeback —
via the shared accounting helpers in :mod:`repro.core.kernels`, so the
memory simulator sees identical ``DataObject`` coverage for parallel
runs with any backend or worker count (pinned by
``tests/parallel/test_traffic_conservation.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.common import _sort_passes, coo_row_bytes, prepare_x
from repro.core.htycache import HtYCache, cached_plan
from repro.core.kernels import (
    FusedRange,
    assemble_fused,
    fused_compute,
    hta_model_nbytes,
    record_computation_traffic,
    record_hty_build,
)
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.errors import ContractionError, ShapeError
from repro.hashtable.tensor_table import HashTensor
from repro.parallel.partition import partition_imbalance, partition_subtensors
from repro.parallel.procpool import (
    DEFAULT_CHUNKS_PER_WORKER,
    contract_chunks_in_processes,
)
from repro.tensor.coo import SparseTensor

ENGINE_NAME = "sparta_parallel"

BACKENDS = ("thread", "process")


@dataclass
class ThreadStats:
    """Work done by one worker (thread or process)."""

    worker: int
    subtensors: int
    nnz_x: int
    products: int
    output_nnz: int
    seconds: float


@dataclass
class ParallelResult:
    """Contraction result plus per-worker accounting."""

    result: ContractionResult
    threads: int
    thread_stats: List[ThreadStats] = field(default_factory=list)
    #: which executor ran the workers ("thread" or "process")
    backend: str = "thread"
    #: measured end-to-end wall-clock seconds of the parallel_sparta call
    #: (the real multi-core number on the process backend)
    wall_seconds: float = 0.0

    @property
    def load_imbalance(self) -> float:
        """max worker products / mean worker products."""
        loads = [s.products for s in self.thread_stats] or [0]
        mean = sum(loads) / len(loads)
        return (max(loads) / mean) if mean else 1.0


def parallel_sparta(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    threads: int = 4,
    backend: str = "thread",
    sort_output: bool = True,
    num_buckets: Optional[int] = None,
    hty_cache: Optional[HtYCache] = None,
    start_method: Optional[str] = None,
    chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
) -> ParallelResult:
    """Run Sparta with *threads* workers over the sub-tensor loop.

    ``backend="process"`` runs the workers as separate processes over
    shared-memory operands (see :mod:`repro.parallel.procpool`);
    ``start_method`` ("fork"/"spawn"/"forkserver") and
    ``chunks_per_worker`` (work-stealing granularity) apply only there.
    Output is bit-identical across backends and worker counts.
    """
    if threads <= 0:
        raise ShapeError(f"threads must be positive, got {threads}")
    if backend not in BACKENDS:
        raise ContractionError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    plan = cached_plan(x, y, cx, cy)
    profile = RunProfile(ENGINE_NAME)
    clock = time.perf_counter
    wall0 = clock()

    t0 = clock()
    px = prepare_x(x, plan, profile)
    if hty_cache is not None:
        hty, cached = hty_cache.get_or_build(
            y, plan.cy, num_buckets=num_buckets
        )
        if not cached:
            profile.bump("hty_cache_misses")
    else:
        hty = HashTensor.from_coo(y, plan.cy, num_buckets=num_buckets)
        cached = False
    record_hty_build(y, hty, profile, cached=cached)
    profile.add_time(Stage.INPUT_PROCESSING, clock() - t0)
    profile.bump("num_subtensors", px.num_subtensors)

    if backend == "thread":
        fused, stats, counter_dicts, hash_probes, imbalance = _run_threads(
            px, hty, threads, profile, clock
        )
    else:
        fused, stats, counter_dicts, hash_probes, imbalance = _run_processes(
            px,
            hty,
            threads,
            profile,
            chunks_per_worker=chunks_per_worker,
            start_method=start_method,
        )

    for fr in fused:
        profile.add_time(Stage.INDEX_SEARCH, fr.search_seconds)
        profile.add_time(Stage.ACCUMULATION, fr.accum_seconds)
    for counters in counter_dicts:
        for counter, value in counters.items():
            profile.bump(counter, value)
    products = sum(fr.products for fr in fused)
    profile.bump("products", products)
    profile.bump("accum_probes", sum(fr.accum_probes for fr in fused))

    # Ranges/chunks are contiguous ascending sub-tensor spans gathered in
    # span order, so simple concatenation preserves the global
    # (fgrp, fy) order the serial fused path produces — gathering is
    # Algorithm 2 line 17.
    t0 = clock()
    nfx = len(plan.fx)
    zlocal_peak = max(
        (fr.nnz * (8 * nfx + 16) for fr in fused), default=0
    )
    empty = np.empty(0, dtype=np.int64)
    z = assemble_fused(
        np.concatenate([fr.out_fgrp for fr in fused] or [empty]),
        np.concatenate([fr.out_fy for fr in fused] or [empty]),
        np.concatenate([fr.out_vals for fr in fused] or [empty]),
        px.fx_rows,
        plan,
        profile,
        zlocal_peak_bytes=zlocal_peak,
    )
    profile.add_time(Stage.WRITEBACK, clock() - t0)
    if sort_output:
        t0 = clock()
        z = z.sort()
        profile.add_time(Stage.OUTPUT_SORTING, clock() - t0)
        rowb = coo_row_bytes(plan.out_order)
        passes = _sort_passes(z.nnz)
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.READ,
            AccessPattern.RANDOM, int(z.nnz * rowb * passes),
        )
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.WRITE,
            AccessPattern.RANDOM, int(z.nnz * rowb * passes),
        )
    profile.counters["hash_probes"] = hash_probes
    record_computation_traffic(
        plan,
        profile,
        x,
        uses_hty=True,
        products=products,
        hta_peak_bytes=hta_model_nbytes(
            max((fr.max_group_output for fr in fused), default=0)
        ),
        created=z.nnz,
    )
    profile.counters["load_imbalance_x1000"] = int(imbalance * 1000)
    return ParallelResult(
        result=ContractionResult(z, profile, plan),
        threads=threads,
        thread_stats=stats,
        backend=backend,
        wall_seconds=clock() - wall0,
    )


def _run_threads(
    px, hty, threads: int, profile: RunProfile, clock
) -> Tuple[
    List[FusedRange], List[ThreadStats], List[Dict[str, int]], int, float
]:
    """Static balanced ranges on a ThreadPoolExecutor (shared HtY)."""
    hty_probes0 = hty.table.probes
    ranges = partition_subtensors(px.ptr, threads)
    profile.counters["partition_ranges"] = len(ranges)

    def worker(
        args: Tuple[int, int, int]
    ) -> Tuple[FusedRange, RunProfile, ThreadStats]:
        wid, lo, hi = args
        t_start = clock()
        wprofile = RunProfile(f"{ENGINE_NAME}-w{wid}")
        fr = fused_compute(
            px,
            hty,
            y_structure="hash",
            accumulator="hash",
            profile=wprofile,
            lo=lo,
            hi=hi,
            clock=clock,
        )
        return fr, wprofile, ThreadStats(
            worker=wid,
            subtensors=hi - lo,
            nnz_x=int(px.ptr[hi] - px.ptr[lo]),
            products=fr.products,
            output_nnz=fr.nnz,
            seconds=clock() - t_start,
        )

    tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(ranges)]
    if threads == 1 or len(tasks) <= 1:
        outputs = [worker(t) for t in tasks]
    else:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            outputs = list(pool.map(worker, tasks))
    # Python threads share one interpreter, so per-stage seconds summed
    # across workers approximate the single-core serialized time; the
    # scalability model divides by the thread count.
    fused = [fr for fr, _, _ in outputs]
    counter_dicts = [dict(wp.counters) for _, wp, _ in outputs]
    stats = [s for _, _, s in outputs]
    hash_probes = hty.table.probes - hty_probes0
    imbalance = partition_imbalance(px.ptr, ranges)
    return fused, stats, counter_dicts, hash_probes, imbalance


def _run_processes(
    px,
    hty,
    workers: int,
    profile: RunProfile,
    *,
    chunks_per_worker: int,
    start_method: Optional[str],
) -> Tuple[
    List[FusedRange], List[ThreadStats], List[Dict[str, int]], int, float
]:
    """Work-stealing chunks on shared-memory worker processes."""
    chunks = partition_subtensors(
        px.ptr, max(workers * max(chunks_per_worker, 1), 1)
    )
    profile.counters["partition_ranges"] = len(chunks)
    wchunks = contract_chunks_in_processes(
        px, hty, chunks, workers=workers, start_method=start_method
    ) if chunks else []

    # Per-worker aggregation over the chunks each one actually claimed;
    # workers that stole nothing still get a zero row.
    stats = [
        ThreadStats(
            worker=wid, subtensors=0, nnz_x=0, products=0,
            output_nnz=0, seconds=0.0,
        )
        for wid in range(workers)
    ]
    for wc in wchunks:
        lo, hi = chunks[wc.chunk]
        s = stats[wc.worker]
        s.subtensors += hi - lo
        s.nnz_x += int(px.ptr[hi] - px.ptr[lo])
        s.products += wc.fused.products
        s.output_nnz += wc.fused.nnz
        s.seconds += wc.seconds
    loads = [s.nnz_x for s in stats] or [0]
    mean = sum(loads) / len(loads)
    imbalance = (max(loads) / mean) if mean else 1.0
    return (
        [wc.fused for wc in wchunks],
        stats,
        [wc.counters for wc in wchunks],
        sum(wc.hash_probes for wc in wchunks),
        imbalance,
    )
