"""Thread-parallel Sparta (paper §3.5).

The outer loop over X's mode-F sub-tensors is embarrassingly parallel once
each thread owns a private accumulator and Z_local buffer; HtY is built
once and shared read-only. This module runs that structure on a real
``ThreadPoolExecutor``:

* each worker executes its sub-tensor range through the fused flat-batch
  kernel (:func:`repro.core.kernels.fused_compute`) — one batched search
  and one segmented accumulation per worker, not one Python iteration per
  sub-tensor;
* correctness is exercised with any thread count (results are gathered
  exactly as Algorithm 2 line 17 describes);
* per-thread work statistics (non-zeros, products, seconds) feed the
  scalability model, since a single-core host cannot measure true
  multi-core wall-clock scaling.

The profile charges the same Table-2 traffic set as the serial engine —
HtY build, HtY probe reads, HtA accumulation and Z_local/Z writeback —
via the shared accounting helpers in :mod:`repro.core.kernels`, so the
memory simulator sees identical ``DataObject`` coverage for parallel runs.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.common import _sort_passes, coo_row_bytes, prepare_x
from repro.core.htycache import HtYCache, cached_plan
from repro.core.kernels import (
    FusedRange,
    assemble_fused,
    fused_compute,
    hta_model_nbytes,
    record_computation_traffic,
    record_hty_build,
)
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.errors import ShapeError
from repro.hashtable.tensor_table import HashTensor
from repro.parallel.partition import partition_imbalance, partition_subtensors
from repro.tensor.coo import SparseTensor

ENGINE_NAME = "sparta_parallel"


@dataclass
class ThreadStats:
    """Work done by one worker thread."""

    worker: int
    subtensors: int
    nnz_x: int
    products: int
    output_nnz: int
    seconds: float


@dataclass
class ParallelResult:
    """Contraction result plus per-thread accounting."""

    result: ContractionResult
    threads: int
    thread_stats: List[ThreadStats] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """max worker products / mean worker products."""
        loads = [s.products for s in self.thread_stats] or [0]
        mean = sum(loads) / len(loads)
        return (max(loads) / mean) if mean else 1.0


def parallel_sparta(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    threads: int = 4,
    sort_output: bool = True,
    num_buckets: Optional[int] = None,
    hty_cache: Optional[HtYCache] = None,
) -> ParallelResult:
    """Run Sparta with *threads* workers over the sub-tensor loop."""
    if threads <= 0:
        raise ShapeError(f"threads must be positive, got {threads}")
    plan = cached_plan(x, y, cx, cy)
    profile = RunProfile(ENGINE_NAME)
    clock = time.perf_counter

    t0 = clock()
    px = prepare_x(x, plan, profile)
    if hty_cache is not None:
        hty, cached = hty_cache.get_or_build(
            y, plan.cy, num_buckets=num_buckets
        )
        if not cached:
            profile.bump("hty_cache_misses")
    else:
        hty = HashTensor.from_coo(y, plan.cy, num_buckets=num_buckets)
        cached = False
    record_hty_build(y, hty, profile, cached=cached)
    hty_probes0 = hty.table.probes
    profile.add_time(Stage.INPUT_PROCESSING, clock() - t0)
    profile.bump("num_subtensors", px.num_subtensors)

    ranges = partition_subtensors(px.ptr, threads)
    profile.counters["partition_ranges"] = len(ranges)

    def worker(
        args: Tuple[int, int, int]
    ) -> Tuple[FusedRange, RunProfile, ThreadStats]:
        wid, lo, hi = args
        t_start = clock()
        wprofile = RunProfile(f"{ENGINE_NAME}-w{wid}")
        fr = fused_compute(
            px,
            hty,
            y_structure="hash",
            accumulator="hash",
            profile=wprofile,
            lo=lo,
            hi=hi,
            clock=clock,
        )
        return fr, wprofile, ThreadStats(
            worker=wid,
            subtensors=hi - lo,
            nnz_x=int(px.ptr[hi] - px.ptr[lo]),
            products=fr.products,
            output_nnz=fr.nnz,
            seconds=clock() - t_start,
        )

    tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(ranges)]
    if threads == 1 or len(tasks) <= 1:
        outputs = [worker(t) for t in tasks]
    else:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            outputs = list(pool.map(worker, tasks))
    # Python threads share one interpreter, so per-stage seconds summed
    # across workers approximate the single-core serialized time; the
    # scalability model divides by the thread count.
    for fr, wprofile, _ in outputs:
        profile.add_time(Stage.INDEX_SEARCH, fr.search_seconds)
        profile.add_time(Stage.ACCUMULATION, fr.accum_seconds)
        for counter, value in wprofile.counters.items():
            profile.bump(counter, value)
    fused = [fr for fr, _, _ in outputs]
    products = sum(fr.products for fr in fused)
    profile.bump("products", products)
    profile.bump("accum_probes", sum(fr.accum_probes for fr in fused))

    # Worker ranges are contiguous ascending sub-tensor spans, so simple
    # concatenation preserves the global (fgrp, fy) order the serial
    # fused path produces — gathering is Algorithm 2 line 17.
    t0 = clock()
    nfx = len(plan.fx)
    zlocal_peak = max(
        (fr.nnz * (8 * nfx + 16) for fr in fused), default=0
    )
    empty = np.empty(0, dtype=np.int64)
    z = assemble_fused(
        np.concatenate([fr.out_fgrp for fr in fused] or [empty]),
        np.concatenate([fr.out_fy for fr in fused] or [empty]),
        np.concatenate([fr.out_vals for fr in fused] or [empty]),
        px.fx_rows,
        plan,
        profile,
        zlocal_peak_bytes=zlocal_peak,
    )
    profile.add_time(Stage.WRITEBACK, clock() - t0)
    if sort_output:
        t0 = clock()
        z = z.sort()
        profile.add_time(Stage.OUTPUT_SORTING, clock() - t0)
        rowb = coo_row_bytes(plan.out_order)
        passes = _sort_passes(z.nnz)
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.READ,
            AccessPattern.RANDOM, int(z.nnz * rowb * passes),
        )
        profile.record_traffic(
            DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.WRITE,
            AccessPattern.RANDOM, int(z.nnz * rowb * passes),
        )
    profile.counters["hash_probes"] = hty.table.probes - hty_probes0
    record_computation_traffic(
        plan,
        profile,
        x,
        uses_hty=True,
        products=products,
        hta_peak_bytes=hta_model_nbytes(
            max((fr.max_group_output for fr in fused), default=0)
        ),
        created=z.nnz,
    )
    profile.counters["load_imbalance_x1000"] = int(
        partition_imbalance(px.ptr, ranges) * 1000
    )
    return ParallelResult(
        result=ContractionResult(z, profile, plan),
        threads=threads,
        thread_stats=[s for _, _, s in outputs],
    )
