"""Parallel Sparta (paper §3.5) — thread and process backends, all stages.

The outer loop over X's mode-F sub-tensors is embarrassingly parallel
once each worker owns a private accumulator and Z_local buffer. The
serial stages around it are parallelized too: stage 1 partitions Y's
non-zeros into per-worker spans whose partial groupings merge
deterministically into the exact HtY ``from_coo`` would build
(``parallel_stage1``), and stage 5 k-way merges the workers' presorted
chunk outputs instead of re-sorting Z (``merge_output``,
:mod:`repro.parallel.merge`) — so no stage leaves a serial Amdahl cap.
Two backends run that structure:

* ``backend="thread"`` — a ``ThreadPoolExecutor`` over static balanced
  ranges. Python threads share one interpreter, so this backend models
  the parallel structure (per-worker statistics feed the scalability
  model) but cannot measure true multi-core wall-clock scaling;
* ``backend="process"`` — :mod:`repro.parallel.procpool`: operands are
  exported to shared memory, persistent worker processes claim
  sub-tensor chunks through a shared counter (work stealing), and the
  parent gathers per-chunk outputs in deterministic chunk order. With
  ``parallel_stage1`` one :class:`~repro.parallel.procpool.SpartaProcessPool`
  covers the whole run: workers stream HtY partials back while the
  parent sorts X, then claim fused chunks — one pool start-up for all
  five stages. This backend measures *real* wall-clock scaling on
  multi-core hosts (:attr:`ParallelResult.wall_seconds`).

Both backends execute the fused flat-batch kernel
(:func:`repro.core.kernels.fused_compute`) per worker range — one
batched search and one segmented accumulation per range — and every
flag combination is bit-identical to the serial fused engine:
ranges/chunks cut at sub-tensor boundaries, so every output key is
reduced inside a single range in X-row order, the stage-1 merge
reorders whole groups without touching within-group row order, and the
stage-5 merge provably equals the stable lexsort it replaces, exactly
as Algorithm 2 line 17 describes.

The profile charges the same Table-2 traffic set as the serial engine —
HtY build, HtY probe reads, HtA accumulation and Z_local/Z writeback —
via the shared accounting helpers in :mod:`repro.core.kernels`, so the
memory simulator sees identical ``DataObject`` coverage for parallel
runs with any backend or worker count (pinned by
``tests/parallel/test_traffic_conservation.py``).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.common import _sort_passes, coo_row_bytes, prepare_x
from repro.core.htycache import HtYCache, cached_plan
from repro.core.kernels import (
    FusedRange,
    assemble_fused,
    fused_compute,
    hta_model_nbytes,
    record_computation_traffic,
    record_hty_build,
)
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.result import ContractionResult
from repro.core.stages import Stage
from repro.core.looped import looped_contract
from repro.errors import (
    ContractionError,
    PoolDegradedError,
    ShapeError,
)
from repro.faults import (
    ANY,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    payload_digest,
)
from repro.hashtable.tensor_table import (
    HashTensor,
    build_partial_groups,
    split_contract_modes,
)
from repro.obs.tracer import (
    CAT_CONTRACTION,
    CAT_MERGE,
    CAT_WORKER,
    NULL_TRACER,
    Tracer,
)
from repro.parallel.merge import merge_fused_runs
from repro.parallel.partition import (
    partition_by_count,
    partition_imbalance,
    partition_subtensors,
)
from repro.parallel.procpool import (
    DEFAULT_CHUNKS_PER_WORKER,
    RecoveryLog,
    RecoveryPolicy,
    SpartaProcessPool,
    contract_chunks_in_processes,
)
from repro.tensor.coo import SparseTensor

ENGINE_NAME = "sparta_parallel"

BACKENDS = ("thread", "process")

CHUNKINGS = ("nnz", "count")

PLANNERS = ("auto", "off")

#: environment override for the default planner mode
PLANNER_ENV = "REPRO_PLANNER"


def _route_serial(
    stats,
    *,
    backend: str,
    threads: int,
    parallel_stage1: bool,
    merge_output: bool,
    sort_output: bool,
) -> bool:
    """Cost-model verdict: does serial beat the *requested* config?

    The in-executor planner never changes the caller's backend or
    worker count — full schedule search belongs to
    ``contract(plan="auto")``. It only answers whether the requested
    parallel run would lose to the serial fused engine (pool start-up,
    merge and per-range overheads unamortized), in which case the run
    is routed to :func:`_run_serial_small`. Ties go to serial — equal
    predicted cost means the parallel machinery buys nothing.
    """
    from repro.planner import CostModel, predicted_accumulator

    model = CostModel()
    acc = predicted_accumulator(stats)
    serial = model.estimate(
        stats, engine="serial", accumulator=acc, sort_output=sort_output
    )
    requested = model.estimate(
        stats,
        engine=backend,
        workers=threads,
        parallel_stage1=parallel_stage1,
        merge_output=merge_output,
        accumulator=acc,
        sort_output=sort_output,
    )
    return serial.seconds <= requested.seconds


@dataclass
class ThreadStats:
    """Work done by one worker (thread or process)."""

    worker: int
    subtensors: int
    nnz_x: int
    products: int
    output_nnz: int
    seconds: float
    #: stage-1 partial-build seconds (0.0 when stage 1 ran serially)
    stage1_seconds: float = 0.0


@dataclass
class ParallelResult:
    """Contraction result plus per-worker accounting."""

    result: ContractionResult
    threads: int
    thread_stats: List[ThreadStats] = field(default_factory=list)
    #: which executor ran the workers ("thread" or "process"; the
    #: planner-lite serial route reports "serial")
    backend: str = "thread"
    #: measured end-to-end wall-clock seconds of the parallel_sparta call
    #: (the real multi-core number on the process backend)
    wall_seconds: float = 0.0

    @property
    def load_imbalance(self) -> float:
        """max worker products / mean worker products."""
        loads = [s.products for s in self.thread_stats] or [0]
        mean = sum(loads) / len(loads)
        return (max(loads) / mean) if mean else 1.0


def parallel_sparta(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    threads: int = 4,
    backend: str = "thread",
    sort_output: bool = True,
    num_buckets: Optional[int] = None,
    hty_cache: Optional[HtYCache] = None,
    start_method: Optional[str] = None,
    chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
    parallel_stage1: bool = True,
    merge_output: bool = True,
    chunking: str = "nnz",
    fault_plan: Optional[FaultPlan] = None,
    max_retries: int = 2,
    on_failure: str = "raise",
    unit_timeout: Optional[float] = None,
    timeout: Optional[float] = None,
    codegen: Optional[bool] = None,
    planner: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    memory_budget=None,
    spill_root: Optional[str] = None,
    force_spill: bool = False,
) -> ParallelResult:
    """Budget-aware front door for :func:`_parallel_sparta_impl`.

    Without ``memory_budget`` this is exactly the classic parallel
    engine. With one (bytes, a ``"64M"``-style string, or a shared
    :class:`repro.ooc.MemoryBudget`), :func:`repro.planner.ooc.plan_ooc`
    decides in-core vs. out-of-core: a working set that fits runs the
    unmodified pipeline (``flags["ooc"] = "in_core"``); otherwise
    workers spill their fused chunk outputs to per-worker run files
    under one :class:`~repro.ooc.SpillManager` directory and stage 5
    becomes a streaming merge of those files
    (``flags["ooc"] = "spill"``). Results and Table-2 traffic stay
    bit/byte-identical to the in-core engines on every backend.
    ``force_spill`` pins the spill path for tests; ``spill_root``
    overrides the spill directory's parent (default: the system temp
    dir).
    """
    if memory_budget is None:
        return _parallel_sparta_impl(
            x, y, cx, cy,
            threads=threads, backend=backend, sort_output=sort_output,
            num_buckets=num_buckets, hty_cache=hty_cache,
            start_method=start_method,
            chunks_per_worker=chunks_per_worker,
            parallel_stage1=parallel_stage1, merge_output=merge_output,
            chunking=chunking, fault_plan=fault_plan,
            max_retries=max_retries, on_failure=on_failure,
            unit_timeout=unit_timeout, timeout=timeout, codegen=codegen,
            planner=planner, tracer=tracer,
        )
    # Imported lazily: repro.ooc imports repro.parallel.merge, so a
    # top-level import here would cycle through repro.parallel.__init__.
    from repro.ooc.budget import MemoryBudget
    from repro.ooc.spill import SpillManager
    from repro.planner.ooc import plan_ooc
    from repro.planner.stats import contraction_stats

    budget = (
        memory_budget
        if isinstance(memory_budget, MemoryBudget)
        else MemoryBudget(memory_budget)
    )
    plan = cached_plan(x, y, cx, cy)
    decision = plan_ooc(
        contraction_stats(x, y, plan),
        budget.cap,
        workers=threads,
        force_spill=force_spill,
    )
    spill = SpillManager(spill_root) if decision.out_of_core else None
    try:
        pres = _parallel_sparta_impl(
            x, y, cx, cy,
            threads=threads, backend=backend, sort_output=sort_output,
            num_buckets=num_buckets, hty_cache=hty_cache,
            start_method=start_method,
            chunks_per_worker=chunks_per_worker,
            parallel_stage1=parallel_stage1, merge_output=merge_output,
            chunking=chunking, fault_plan=fault_plan,
            max_retries=max_retries, on_failure=on_failure,
            unit_timeout=unit_timeout, timeout=timeout, codegen=codegen,
            planner=planner, tracer=tracer,
            _ooc=(budget, decision, spill),
        )
        prof = pres.result.profile
        prof.set_flag(
            "ooc", "spill" if decision.out_of_core else "in_core"
        )
        prof.counters.update(decision.counters())
        if spill is not None:
            prof.counters.update(spill.counters())
        prof.counters.update(budget.counters())
        return pres
    finally:
        if spill is not None:
            spill.close()


def _parallel_sparta_impl(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    threads: int = 4,
    backend: str = "thread",
    sort_output: bool = True,
    num_buckets: Optional[int] = None,
    hty_cache: Optional[HtYCache] = None,
    start_method: Optional[str] = None,
    chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER,
    parallel_stage1: bool = True,
    merge_output: bool = True,
    chunking: str = "nnz",
    fault_plan: Optional[FaultPlan] = None,
    max_retries: int = 2,
    on_failure: str = "raise",
    unit_timeout: Optional[float] = None,
    timeout: Optional[float] = None,
    codegen: Optional[bool] = None,
    planner: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    _ooc=None,
) -> ParallelResult:
    """Run Sparta with *threads* workers over the sub-tensor loop.

    ``backend="process"`` runs the workers as separate processes over
    shared-memory operands (see :mod:`repro.parallel.procpool`);
    ``start_method`` ("fork"/"spawn"/"forkserver") and
    ``chunks_per_worker`` (work-stealing granularity) apply only there.

    ``parallel_stage1`` builds HtY from per-worker partial groupings
    merged in the parent (stage 1 parallel; skipped when an
    ``hty_cache`` serves the build, or when an operand is empty);
    ``merge_output`` replaces the final full lexsort of Z with a merge
    of the per-range sorted runs (stage 5 parallel);
    ``chunking`` picks the work decomposition: ``"nnz"`` balances
    cumulative non-zeros (default), ``"count"`` is the naive equal
    sub-tensor-count baseline. Output is bit-identical across backends,
    worker counts and all of these switches.

    Fault tolerance: worker failures (hard death, hang past
    ``unit_timeout``, corrupt payload) lose only the failed worker's
    chunks, which are reassigned and recomputed — up to ``max_retries``
    respawn rounds, after which ``on_failure="serial"`` recomputes the
    missing chunks with the serial fused kernel in the parent (setting
    ``profile.flags["degraded"]``) while the default ``"raise"`` raises
    :class:`~repro.errors.PoolDegradedError`. ``timeout`` bounds each
    parallel phase end to end (not recoverable — raises
    :class:`~repro.errors.ParallelError` naming the pending chunks).
    Recovered runs stay bit-identical to serial, including the Table-2
    traffic accounting. ``fault_plan`` injects deterministic faults for
    testing (see :mod:`repro.faults`); when omitted, the
    ``REPRO_FAULTS`` environment variable is consulted so faults can be
    activated without touching call sites.

    ``codegen`` controls the per-signature generated kernels of the
    fused path (see :func:`repro.core.kernels.fused_compute`). The
    thread backend and the serial planner route honor the per-call
    value; process-pool workers resolve it from the inherited
    ``REPRO_NO_CODEGEN`` environment instead (code objects never cross
    a pipe — workers compile from the shipped operands' signature).

    ``planner`` (``"auto"``/``"off"``, default from the
    ``REPRO_PLANNER`` environment variable, else ``"auto"``) enables
    cost-model routing (:mod:`repro.planner`): when the calibrated
    stage-cost model predicts the requested parallel configuration
    loses to the serial fused engine (pool start-up, merge and
    per-range overheads unamortized), the run is routed serial — same
    bit-identical output and Table-2 traffic. The routing never changes
    the caller's backend or worker count; full schedule search is
    ``contract(plan="auto")``. ``profile.flags["planner"]`` always
    records the decision: ``"off"`` (disabled, or a ``fault_plan`` is
    active — fault-injection tests target the parallel machinery
    itself), ``"serial_small"`` (routed serial) or ``"auto:<backend>"``
    (stayed parallel).

    ``tracer`` (a :class:`repro.obs.Tracer`) records the five stage
    spans on the parent track plus per-worker timelines — spawn/claim
    instants, per-chunk compute spans, fault and recovery events —
    merged from the workers' own records (process backend: shipped back
    over the result pipes). ``None`` records nothing and adds no
    measurable overhead.
    """
    if threads <= 0:
        raise ShapeError(f"threads must be positive, got {threads}")
    if backend not in BACKENDS:
        raise ContractionError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if chunking not in CHUNKINGS:
        raise ContractionError(
            f"unknown chunking {chunking!r}; choose from {CHUNKINGS}"
        )
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    policy = RecoveryPolicy(
        max_retries=max_retries,
        on_failure=on_failure,
        unit_timeout=unit_timeout,
        timeout=timeout,
    )
    rlog = RecoveryLog(tracer=tracer)
    tr = NULL_TRACER if tracer is None else tracer
    injector = (
        FaultInjector(fault_plan, kill_mode="raise", tracer=tracer)
        if backend == "thread" and fault_plan
        else None
    )
    planner_mode = planner
    if planner_mode is None:
        planner_mode = os.environ.get(PLANNER_ENV, "") or "auto"
    if planner_mode not in PLANNERS:
        raise ContractionError(
            f"unknown planner {planner_mode!r}; choose from {PLANNERS}"
        )
    plan = cached_plan(x, y, cx, cy)
    clock = time.perf_counter
    ooc_budget = ooc_decision = ooc_spill = None
    if _ooc is not None:
        ooc_budget, ooc_decision, ooc_spill = _ooc
    ooc_spilling = ooc_decision is not None and ooc_decision.out_of_core
    est: Optional[int] = None
    planner_flag = "off"
    # The serial-small route would ignore the spill plan; skip it when
    # the budget decision says the working set must go out of core.
    if planner_mode == "auto" and not fault_plan and not ooc_spilling:
        from repro.planner import contraction_stats

        stats = contraction_stats(x, y, plan)
        est = stats.est_products
        if _route_serial(
            stats,
            backend=backend,
            threads=threads,
            parallel_stage1=parallel_stage1,
            merge_output=merge_output,
            sort_output=sort_output,
        ):
            return _run_serial_small(
                x, y, cx, cy,
                est=est,
                sort_output=sort_output,
                num_buckets=num_buckets,
                hty_cache=hty_cache,
                codegen=codegen,
                tracer=tracer,
                clock=clock,
            )
        planner_flag = f"auto:{backend}"
    profile = RunProfile(ENGINE_NAME)
    # The flag is always present: "off" (disabled or fault plan active),
    # "serial_small" (routed), or "auto:<backend>" (stayed parallel).
    profile.set_flag("planner", planner_flag)
    if est is not None:
        profile.counters["planner_est_products"] = int(est)
    wall0 = clock()

    pool: Optional[SpartaProcessPool] = None
    use_pool = (
        backend == "process"
        and parallel_stage1
        and hty_cache is None
        and y.nnz > 0
        and x.nnz > 0
    )
    try:
        t0 = clock()
        if use_pool:
            # Start the workers on Y spans *before* preparing X so the
            # parent's sort of X overlaps the partial builds.
            cmodes, fmodes, cdims, fdims = split_contract_modes(
                y.order, y.shape, plan.cy
            )
            pool = SpartaProcessPool(
                y.indices,
                y.values,
                cmodes,
                fmodes,
                cdims,
                fdims,
                _even_spans(y.nnz, threads),
                workers=threads,
                start_method=start_method,
                policy=policy,
                fault_plan=fault_plan,
                recovery_log=rlog,
                spill_dir=ooc_spill.root if ooc_spilling else None,
            )
            px = prepare_x(x, plan, profile)
            partials, stage1_secs = pool.drain_partials()
            hty = HashTensor.merge_partials(
                partials, fdims, cdims, num_buckets=num_buckets
            )
            cached = False
        else:
            px = prepare_x(x, plan, profile)
            stage1_secs = None
            if hty_cache is not None:
                hty, cached = hty_cache.get_or_build(
                    y, plan.cy, num_buckets=num_buckets
                )
                if not cached:
                    profile.bump("hty_cache_misses")
            elif (
                parallel_stage1
                and backend == "thread"
                and threads > 1
                and y.nnz > 0
            ):
                hty = _build_hty_threads(
                    y,
                    plan.cy,
                    threads,
                    num_buckets,
                    injector=injector,
                    policy=policy,
                    log=rlog,
                )
                cached = False
            else:
                hty = HashTensor.from_coo(
                    y, plan.cy, num_buckets=num_buckets
                )
                cached = False
        record_hty_build(y, hty, profile, cached=cached)
        t1 = clock()
        profile.add_time(Stage.INPUT_PROCESSING, t1 - t0)
        tr.add_span(Stage.INPUT_PROCESSING.value, start=t0, end=t1)
        profile.bump("num_subtensors", px.num_subtensors)
        px_nbytes = hty_nbytes = 0
        if ooc_budget is not None:
            px_nbytes = int(
                px.ptr.nbytes + px.fx_rows.nbytes + px.cx_ln.nbytes
                + px.values.nbytes
            )
            hty_nbytes = int(hty.nbytes)
            ooc_budget.charge("prepared_x", px_nbytes)
            ooc_budget.charge("hty", hty_nbytes)

        tc0 = clock()
        ooc_min_chunks = (
            ooc_decision.num_chunks if ooc_spilling else None
        )
        if use_pool:
            fused, stats, counter_dicts, hash_probes, imbalance = (
                _run_pool_chunks(
                    pool,
                    px,
                    hty,
                    threads,
                    profile,
                    chunks_per_worker=chunks_per_worker,
                    chunking=chunking,
                    stage1_secs=stage1_secs,
                    min_chunks=ooc_min_chunks,
                )
            )
        elif backend == "thread":
            fused, stats, counter_dicts, hash_probes, imbalance = (
                _run_threads(
                    px,
                    hty,
                    threads,
                    profile,
                    clock,
                    chunking,
                    injector=injector,
                    policy=policy,
                    log=rlog,
                    codegen=codegen,
                    tracer=tracer,
                    num_ranges=(
                        max(threads, ooc_min_chunks)
                        if ooc_spilling
                        else None
                    ),
                    spill_fn=(
                        _thread_spill_fn(ooc_spill, ooc_budget)
                        if ooc_spilling
                        else None
                    ),
                )
            )
        else:
            fused, stats, counter_dicts, hash_probes, imbalance = (
                _run_processes(
                    px,
                    hty,
                    threads,
                    profile,
                    chunks_per_worker=chunks_per_worker,
                    start_method=start_method,
                    chunking=chunking,
                    policy=policy,
                    fault_plan=fault_plan,
                    log=rlog,
                    spill_dir=ooc_spill.root if ooc_spilling else None,
                    min_chunks=ooc_min_chunks,
                )
            )
        tc1 = clock()
    finally:
        if pool is not None:
            pool.close()

    # Per-stage seconds must be *parent wall-clock*: the workers' stage
    # timers overlap in real time, so summing them would charge N
    # workers' concurrent seconds to one run (and make the stage
    # breakdown exceed the wall time by ~threads×). Apportion the
    # measured compute-phase wall between search and accumulation by
    # the workers' relative busy time instead.
    compute_wall = tc1 - tc0
    search_sum = sum(fr.search_seconds for fr in fused)
    accum_sum = sum(fr.accum_seconds for fr in fused)
    busy = search_sum + accum_sum
    fsearch = (search_sum / busy) if busy > 0 else 0.5
    profile.add_time(Stage.INDEX_SEARCH, compute_wall * fsearch)
    profile.add_time(Stage.ACCUMULATION, compute_wall * (1.0 - fsearch))
    if tr.enabled:
        mid = tc0 + compute_wall * fsearch
        tr.add_span(Stage.INDEX_SEARCH.value, start=tc0, end=mid,
                    measured="apportioned")
        tr.add_span(Stage.ACCUMULATION.value, start=mid, end=tc1,
                    measured="apportioned")
    for counters in counter_dicts:
        profile.bump_many(counters)
    products = sum(fr.products for fr in fused)
    profile.bump("products", products)
    profile.bump("accum_probes", sum(fr.accum_probes for fr in fused))

    nfx = len(plan.fx)
    zlocal_peak = max(
        (fr.nnz * (8 * nfx + 16) for fr in fused), default=0
    )
    if ooc_spilling:
        # Account the run files the workers wrote directly (the thread
        # backend's spill_fn and the process workers' per-worker files
        # bypass spill.writer()); unsealed leftovers of a killed worker
        # are skipped — spill.close() removes them regardless.
        for fn in sorted(os.listdir(ooc_spill.root)):
            if fn.endswith(".run"):
                try:
                    ooc_spill.account_file(
                        os.path.join(ooc_spill.root, fn)
                    ).close()
                except Exception:
                    pass
        from repro.ooc.engine import stream_finalize

        # Chunks cover disjoint ascending sub-tensor spans gathered in
        # chunk order, so the streaming merge's ordered fast path is a
        # straight concatenation — the same bit-identity argument as
        # the in-core gather below.
        runs = [
            {"fgrp": fr.out_fgrp, "fy": fr.out_fy, "vals": fr.out_vals}
            for fr in fused
        ]
        z = stream_finalize(
            runs,
            px.fx_rows,
            plan,
            profile,
            ooc_spill,
            sort_output=sort_output,
            clock=clock,
            tracer=tracer,
            zlocal_peak_bytes=zlocal_peak,
        )
        if sort_output:
            profile.bump("output_merge_stream")
    else:
        # Ranges/chunks are contiguous ascending sub-tensor spans
        # gathered in span order, so simple concatenation preserves the
        # global (fgrp, fy) order the serial fused path produces —
        # gathering is Algorithm 2 line 17.
        if sort_output and merge_output:
            t0 = clock()
            fgrp, fy, vals, presorted, merge_path = merge_fused_runs(
                fused, plan.fy_dims
            )
            merge_seconds = clock() - t0
            tr.add_span(
                "merge_output", start=t0, end=t0 + merge_seconds,
                cat=CAT_MERGE,
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            fgrp = np.concatenate(
                [fr.out_fgrp for fr in fused] or [empty]
            )
            fy = np.concatenate([fr.out_fy for fr in fused] or [empty])
            vals = np.concatenate(
                [fr.out_vals for fr in fused] or [empty]
            )
            presorted, merge_path, merge_seconds = False, "off", 0.0
        t0 = clock()
        z = assemble_fused(
            fgrp,
            fy,
            vals,
            px.fx_rows,
            plan,
            profile,
            zlocal_peak_bytes=zlocal_peak,
            codegen=codegen,
        )
        t1 = clock()
        profile.add_time(Stage.WRITEBACK, t1 - t0)
        tr.add_span(Stage.WRITEBACK.value, start=t0, end=t1)
        if sort_output:
            t0 = clock()
            if not presorted:
                # Fallback (merge disabled, overflowing key space or
                # unsorted runs): the full lexsort, exactly as before.
                z = z.sort()
            t1 = clock()
            profile.add_time(
                Stage.OUTPUT_SORTING, merge_seconds + (t1 - t0)
            )
            tr.add_span(
                Stage.OUTPUT_SORTING.value, start=t0, end=t1,
                merge_seconds=merge_seconds,
            )
            if merge_output:
                profile.bump(f"output_merge_{merge_path}")
            # The traffic model charges the sort's access signature
            # whether it ran as a lexsort or as a merge of sorted runs —
            # both move every output row once per pass, and Table-2
            # cells must stay byte-exact with the serial engine.
            rowb = coo_row_bytes(plan.out_order)
            passes = _sort_passes(z.nnz)
            profile.record_traffic(
                DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.READ,
                AccessPattern.RANDOM, int(z.nnz * rowb * passes),
            )
            profile.record_traffic(
                DataObject.Z, Stage.OUTPUT_SORTING, AccessKind.WRITE,
                AccessPattern.RANDOM, int(z.nnz * rowb * passes),
            )
    profile.counters["hash_probes"] = hash_probes
    record_computation_traffic(
        plan,
        profile,
        x,
        uses_hty=True,
        products=products,
        hta_peak_bytes=hta_model_nbytes(
            max((fr.max_group_output for fr in fused), default=0)
        ),
        created=z.nnz,
    )
    profile.counters["load_imbalance_x1000"] = int(imbalance * 1000)
    if rlog.counters:
        profile.bump_many(rlog.counters)
    if rlog.degraded:
        profile.set_flag("degraded", "serial")
    if ooc_budget is not None:
        # Shared accountants outlive this run: return its residents.
        ooc_budget.release("prepared_x", px_nbytes)
        ooc_budget.release("hty", hty_nbytes)
    wall = clock() - wall0
    tr.add_span(
        ENGINE_NAME,
        start=wall0,
        end=wall0 + wall,
        cat=CAT_CONTRACTION,
        engine=ENGINE_NAME,
        backend=backend,
        threads=threads,
        nnz_out=int(z.nnz),
    )
    return ParallelResult(
        result=ContractionResult(z, profile, plan),
        threads=threads,
        thread_stats=stats,
        backend=backend,
        wall_seconds=wall,
    )


def _run_serial_small(
    x: SparseTensor,
    y: SparseTensor,
    cx: Sequence[int],
    cy: Sequence[int],
    *,
    est: int,
    sort_output: bool,
    num_buckets: Optional[int],
    hty_cache: Optional[HtYCache],
    codegen: Optional[bool],
    tracer: Optional[Tracer],
    clock,
) -> ParallelResult:
    """Planner-lite serial route for contractions too small to farm out.

    Runs the serial fused engine under the parallel engine's name so
    downstream consumers (metrics, experiments) see one engine label,
    and synthesizes the single :class:`ThreadStats` row from the run's
    own counters — callers indexing per-worker statistics keep working.
    Output, profile counters and Table-2 traffic are exactly the serial
    fused engine's, which is the point: below the threshold the
    parallel run would produce the same bytes, slower.
    """
    wall0 = clock()
    res = looped_contract(
        x,
        y,
        cx,
        cy,
        engine_name=ENGINE_NAME,
        y_structure="hash",
        accumulator="hash",
        sort_output=sort_output,
        num_buckets=num_buckets,
        hty_cache=hty_cache,
        codegen=codegen,
        tracer=tracer,
    )
    wall = clock() - wall0
    profile = res.profile
    profile.set_flag("planner", "serial_small")
    profile.counters["planner_est_products"] = int(est)
    c = profile.counters
    stats = [
        ThreadStats(
            worker=0,
            subtensors=int(c.get("num_subtensors", 0)),
            nnz_x=int(x.nnz),
            products=int(c.get("products", 0)),
            output_nnz=int(res.tensor.nnz),
            seconds=profile.total_seconds,
        )
    ]
    return ParallelResult(
        result=res,
        threads=1,
        thread_stats=stats,
        backend="serial",
        wall_seconds=wall,
    )


def _even_spans(n: int, k: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ≤ *k* near-equal contiguous spans."""
    k = max(min(int(k), int(n)), 1)
    bounds = [(i * n) // k for i in range(k + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(k)
        if bounds[i + 1] > bounds[i]
    ]


def _partition_chunks(
    ptr: np.ndarray, num_chunks: int, chunking: str
) -> List[Tuple[int, int]]:
    """Cut sub-tensors into chunks by the selected cost model."""
    if chunking == "count":
        return partition_by_count(int(ptr.shape[0] - 1), num_chunks)
    return partition_subtensors(ptr, num_chunks)


def _private_hty_view(hty: HashTensor) -> HashTensor:
    """Zero-copy HtY view with a private probe counter.

    Retried thread-backend attempts probe the same table arrays through
    a fresh view, so only the *accepted* attempt's probes fold into the
    profile — keeping ``hash_probes`` byte-exact with serial even when
    a fault forced recomputation.
    """
    table = hty.table
    return HashTensor.from_shared_buffers(
        heads=table.heads,
        keys=table.keys[: table.size],
        nxt=table.nxt[: table.size],
        group_ptr=hty.group_ptr,
        free_ln=hty.free_ln,
        values=hty.values,
        free_dims=hty.free_dims,
        contract_dims=hty.contract_dims,
    )


def _fault_retry(
    unit: int,
    policy: RecoveryPolicy,
    log: RecoveryLog,
    attempt,
    serial_attempt,
    what: str,
):
    """In-process analogue of the pool's reassign/respawn loop.

    Thread-backend faults surface as :class:`~repro.faults.InjectedFault`
    (a hard kill makes no sense in-process); each retry re-runs the same
    unit. Pinned-worker specs are one-shot in the shared injector, so a
    single fault recovers on the first retry; ``worker=ANY`` specs
    refire every attempt and exhaust the budget — then *serial_attempt*
    (injection disabled) runs under ``on_failure="serial"`` or
    :class:`~repro.errors.PoolDegradedError` propagates. Mirrors the
    process backend's failure semantics so tests can fuzz both.
    """
    tries = 0
    while True:
        try:
            return attempt()
        except InjectedFault as exc:
            tries += 1
            log.bump("ft_worker_failures")
            log.failures.append(f"thread {what} {unit}: {exc}")
            if tries > policy.max_retries:
                if policy.on_failure == "serial":
                    log.degraded = True
                    log.bump("ft_degraded_serial")
                    return serial_attempt()
                raise PoolDegradedError(
                    f"thread {what} {unit} still failing after "
                    f"{policy.max_retries} retry round(s): {exc}"
                ) from exc
            log.bump("ft_recovery_rounds")
            log.bump("ft_reassigned_units")
            time.sleep(policy.backoff(tries))


def _build_hty_threads(
    y: SparseTensor,
    cy: Sequence[int],
    threads: int,
    num_buckets: Optional[int],
    *,
    injector: Optional[FaultInjector] = None,
    policy: Optional[RecoveryPolicy] = None,
    log: Optional[RecoveryLog] = None,
) -> HashTensor:
    """Parallel stage 1 on the thread backend: partial builds + merge.

    NumPy releases the GIL inside the argsorts that dominate the partial
    builds, so even Python threads overlap the heavy part; the merge is
    bit-identical to a serial :meth:`HashTensor.from_coo`.
    """
    cmodes, fmodes, cdims, fdims = split_contract_modes(
        y.order, y.shape, cy
    )
    spans = _even_spans(y.nnz, threads)

    def build_span(lo: int, hi: int):
        return build_partial_groups(
            y.indices, y.values, cmodes, fmodes, cdims, fdims, lo, hi
        )

    def build(args: Tuple[int, Tuple[int, int]]):
        wid, (lo, hi) = args
        if injector is None:
            return build_span(lo, hi)

        def attempt():
            injector.fire("input_processing", wid, worker=wid)
            pg = build_span(lo, hi)
            digest = payload_digest(
                pg.group_keys, pg.group_ptr, pg.free_ln, pg.values
            )
            if injector.maybe_corrupt(
                "input_processing", wid, (pg.values,), worker=wid
            ) and payload_digest(
                pg.group_keys, pg.group_ptr, pg.free_ln, pg.values
            ) != digest:
                log.bump("ft_corrupt_payloads")
                raise InjectedFault(
                    f"corrupt partial payload (span {wid})"
                )
            return pg

        return _fault_retry(
            wid, policy, log, attempt, lambda: build_span(lo, hi),
            "span",
        )

    tasks = list(enumerate(spans))
    if len(tasks) <= 1:
        partials = [build(t) for t in tasks]
    else:
        with ThreadPoolExecutor(max_workers=threads) as tpool:
            partials = list(tpool.map(build, tasks))
    return HashTensor.merge_partials(
        partials, fdims, cdims, num_buckets=num_buckets
    )


def _thread_spill_fn(spill, budget):
    """Per-range spill hook for the thread backend's OOC mode.

    Writes an *accepted* range output (post fault-retry, post digest
    check — injected corruption must never reach a read-only map) to
    its own run file and returns the mmapped view, so the in-memory
    arrays can be collected. The lock serializes the spill manager's
    name sequence and the budget accounting, which are not thread-safe.
    """
    from repro.ooc.runfile import load_fused_ref, spill_fused_range

    lock = threading.Lock()

    def spill_range(fr: FusedRange) -> FusedRange:
        nbytes = int(
            fr.out_fgrp.nbytes + fr.out_fy.nbytes + fr.out_vals.nbytes
        )
        with lock:
            path = spill.path("chunk.run")
            budget.charge("fused_chunk", nbytes)
        try:
            ref = spill_fused_range(fr, path)
        finally:
            with lock:
                budget.release("fused_chunk", nbytes)
        return load_fused_ref(ref)

    return spill_range


def _run_threads(
    px,
    hty,
    threads: int,
    profile: RunProfile,
    clock,
    chunking: str,
    *,
    injector: Optional[FaultInjector] = None,
    policy: Optional[RecoveryPolicy] = None,
    log: Optional[RecoveryLog] = None,
    codegen: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
    num_ranges: Optional[int] = None,
    spill_fn=None,
) -> Tuple[
    List[FusedRange], List[ThreadStats], List[Dict[str, int]], int, float
]:
    """Static balanced ranges on a ThreadPoolExecutor (shared HtY).

    Without an injector every worker probes the shared HtY directly and
    ``hash_probes`` is the global counter delta. With one, each attempt
    probes through a private zero-copy view (:func:`_private_hty_view`)
    and only accepted attempts contribute probes — a failed attempt's
    probes must not inflate the Table-2/Eq.(3) accounting.
    """
    hty_probes0 = hty.table.probes
    ranges = _partition_chunks(
        px.ptr, int(num_ranges) if num_ranges else threads, chunking
    )
    profile.counters["partition_ranges"] = len(ranges)

    def run_range(
        wid: int, lo: int, hi: int, table: HashTensor
    ) -> Tuple[FusedRange, RunProfile, ThreadStats]:
        t_start = clock()
        wprofile = RunProfile(f"{ENGINE_NAME}-w{wid}")
        fr = fused_compute(
            px,
            table,
            y_structure="hash",
            accumulator="hash",
            profile=wprofile,
            lo=lo,
            hi=hi,
            codegen=codegen,
            clock=clock,
        )
        t_end = clock()
        if tracer is not None:
            # list.append is atomic under the GIL, so worker threads
            # record straight onto the shared tracer.
            tracer.add_span(
                "chunk",
                start=t_start,
                end=t_end,
                cat=CAT_WORKER,
                tid=wid + 1,
                unit=wid,
                subtensors=int(hi - lo),
                products=int(fr.products),
            )
        return fr, wprofile, ThreadStats(
            worker=wid,
            subtensors=hi - lo,
            nnz_x=int(px.ptr[hi] - px.ptr[lo]),
            products=fr.products,
            output_nnz=fr.nnz,
            seconds=t_end - t_start,
        )

    def worker(args: Tuple[int, int, int]):
        wid, lo, hi = args
        if injector is None:
            out = run_range(wid, lo, hi, hty)
            out = out + (None,)
            if spill_fn is not None:
                out = (spill_fn(out[0]),) + out[1:]
            return out

        def attempt():
            injector.fire("index_search", wid, worker=wid)
            view = _private_hty_view(hty)
            out = run_range(wid, lo, hi, view)
            fr = out[0]
            injector.fire("accumulation", wid, worker=wid)
            digest = payload_digest(fr.out_fgrp, fr.out_fy, fr.out_vals)
            if injector.maybe_corrupt(
                "accumulation", wid, (fr.out_vals,), worker=wid
            ) and payload_digest(
                fr.out_fgrp, fr.out_fy, fr.out_vals
            ) != digest:
                log.bump("ft_corrupt_payloads")
                raise InjectedFault(
                    f"corrupt chunk payload (range {wid})"
                )
            injector.fire("writeback", wid, worker=wid)
            injector.fire("output_sorting", ANY, worker=wid)
            return out + (view.table.probes,)

        def serial_attempt():
            view = _private_hty_view(hty)
            out = run_range(wid, lo, hi, view)
            return out + (view.table.probes,)

        out = _fault_retry(
            wid, policy, log, attempt, serial_attempt, "range"
        )
        if spill_fn is not None:
            out = (spill_fn(out[0]),) + out[1:]
        return out

    tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(ranges)]
    if threads == 1 or len(tasks) <= 1:
        outputs = [worker(t) for t in tasks]
    else:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            outputs = list(pool.map(worker, tasks))
    # Per-worker stage timers overlap in wall-clock time; the caller
    # charges the profile's stage seconds from its own compute-phase
    # wall clock, apportioned by these timers' relative weight.
    fused = [fr for fr, _, _, _ in outputs]
    counter_dicts = [dict(wp.counters) for _, wp, _, _ in outputs]
    stats = [s for _, _, s, _ in outputs]
    if injector is None:
        hash_probes = hty.table.probes - hty_probes0
    else:
        hash_probes = sum(p for _, _, _, p in outputs)
    imbalance = partition_imbalance(px.ptr, ranges)
    return fused, stats, counter_dicts, hash_probes, imbalance


def _aggregate_worker_chunks(
    px,
    chunks: List[Tuple[int, int]],
    wchunks,
    workers: int,
    stage1_secs: Optional[Dict[int, float]] = None,
) -> Tuple[
    List[FusedRange], List[ThreadStats], List[Dict[str, int]], int, float
]:
    """Fold per-chunk process results into per-worker statistics.

    Workers that stole nothing still get a zero row (the scalability
    experiments index stats by worker id). Fault recovery can add rows
    beyond the original worker count: respawned workers carry fresh ids
    past it, and the parent's serial fallback reports as worker ``-1``;
    they are appended after the original rows (``-1`` last), so an
    undisturbed run's stats are exactly one row per requested worker.
    """
    stats_map: Dict[int, ThreadStats] = {}

    def row(wid: int) -> ThreadStats:
        s = stats_map.get(wid)
        if s is None:
            s = ThreadStats(
                worker=wid, subtensors=0, nnz_x=0, products=0,
                output_nnz=0, seconds=0.0,
            )
            stats_map[wid] = s
        return s

    for wid in range(workers):
        row(wid)
    if stage1_secs:
        for wid, secs in stage1_secs.items():
            row(wid).stage1_seconds = float(secs)
    for wc in wchunks:
        lo, hi = chunks[wc.chunk]
        s = row(wc.worker)
        s.subtensors += hi - lo
        s.nnz_x += int(px.ptr[hi] - px.ptr[lo])
        s.products += wc.fused.products
        s.output_nnz += wc.fused.nnz
        s.seconds += wc.seconds
    order = list(range(workers))
    order += sorted(w for w in stats_map if w >= workers)
    if -1 in stats_map:
        order.append(-1)
    stats = [stats_map[wid] for wid in order]
    loads = [s.nnz_x for s in stats] or [0]
    mean = sum(loads) / len(loads)
    imbalance = (max(loads) / mean) if mean else 1.0
    return (
        [wc.fused for wc in wchunks],
        stats,
        [wc.counters for wc in wchunks],
        sum(wc.hash_probes for wc in wchunks),
        imbalance,
    )


def _run_processes(
    px,
    hty,
    workers: int,
    profile: RunProfile,
    *,
    chunks_per_worker: int,
    start_method: Optional[str],
    chunking: str,
    policy: Optional[RecoveryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    log: Optional[RecoveryLog] = None,
    spill_dir: Optional[str] = None,
    min_chunks: Optional[int] = None,
) -> Tuple[
    List[FusedRange], List[ThreadStats], List[Dict[str, int]], int, float
]:
    """Work-stealing chunks on shared-memory worker processes."""
    chunks = _partition_chunks(
        px.ptr,
        max(
            workers * max(chunks_per_worker, 1), int(min_chunks or 0), 1
        ),
        chunking,
    )
    profile.counters["partition_ranges"] = len(chunks)
    wchunks = contract_chunks_in_processes(
        px,
        hty,
        chunks,
        workers=workers,
        start_method=start_method,
        policy=policy,
        fault_plan=fault_plan,
        recovery_log=log,
        spill_dir=spill_dir,
    ) if chunks else []
    return _aggregate_worker_chunks(px, chunks, wchunks, workers)


def _run_pool_chunks(
    pool: SpartaProcessPool,
    px,
    hty,
    workers: int,
    profile: RunProfile,
    *,
    chunks_per_worker: int,
    chunking: str,
    stage1_secs: Optional[Dict[int, float]],
    min_chunks: Optional[int] = None,
) -> Tuple[
    List[FusedRange], List[ThreadStats], List[Dict[str, int]], int, float
]:
    """Stages 2–4 on an already-running two-phase pool."""
    chunks = _partition_chunks(
        px.ptr,
        max(
            workers * max(chunks_per_worker, 1), int(min_chunks or 0), 1
        ),
        chunking,
    )
    profile.counters["partition_ranges"] = len(chunks)
    wchunks = pool.run_chunks(px, hty, chunks)
    return _aggregate_worker_chunks(
        px, chunks, wchunks, workers, stage1_secs
    )
