"""Process-parallel Sparta backend over shared-memory operands (§3.5).

The thread executor in :mod:`repro.parallel.executor` shares one
interpreter across its workers, so it can only *model* multi-core
scaling. This module runs the same fused sub-tensor decomposition on
genuinely concurrent ``multiprocessing`` workers:

* the prepared X arrays (``ptr``, ``fx_rows``, ``cx_ln``, values) and
  HtY's backing arrays (bucket heads, chain links, table keys, group
  pointer, free keys, values) are copied once into
  :mod:`multiprocessing.shared_memory` blocks; workers attach zero-copy
  views through :meth:`~repro.hashtable.tensor_table.HashTensor.
  from_shared_buffers`, so per-worker memory stays O(its output);
* sub-tensor chunks (several per worker) are claimed dynamically
  through a shared index counter — work stealing, which beats static
  per-worker ranges when fiber sizes are skewed
  (``partition_imbalance``);
* each chunk's :class:`~repro.core.kernels.FusedRange` ships back
  tagged with its chunk id and the parent concatenates in chunk order,
  so the gathered output is bit-identical to the serial fused engine no
  matter which worker computed which chunk (chunks snap to sub-tensor
  boundaries, so no output key ever spans two chunks).

Lifetime rules: the **parent** owns the shared blocks — it creates them
before the workers start and closes *and unlinks* them after the pool
drains, including on error paths. Workers only attach and close. Under
the ``fork`` start method (the default where available) children
inherit the parent's address space and environment; under ``spawn``
they re-import :mod:`repro`, for which the parent temporarily extends
``PYTHONPATH`` with its own package root. Worker failures — exceptions
*and* hard deaths — surface as :class:`~repro.errors.ParallelError`;
the parent polls worker liveness while draining results, so a dead
worker can never hang the pool.
"""

from __future__ import annotations

import os
import queue
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from repro.core.common import PreparedX
from repro.core.kernels import FusedRange, fused_compute
from repro.core.profile import RunProfile
from repro.errors import ParallelError
from repro.hashtable.tensor_table import (
    HashTensor,
    PartialGroups,
    build_partial_groups,
)

#: chunks per worker claimed through the shared counter; >1 so a worker
#: that drew a light chunk steals more work instead of idling
DEFAULT_CHUNKS_PER_WORKER = 4

#: seconds between liveness checks while waiting on the result queue
_POLL_SECONDS = 0.25

#: absolute path of the directory containing the ``repro`` package,
#: prepended to PYTHONPATH for spawn-mode children
_PACKAGE_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


# ----------------------------------------------------------------------
# shared-memory export / attach
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArraySpec:
    """Where one operand array lives: shm block name, shape, dtype."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedOperandSpec:
    """Everything a worker needs to reattach the operands.

    ``arrays`` maps logical names (``ptr``, ``cx_ln``, ``x_values``,
    ``fx_rows``, ``ht_heads``, ``ht_keys``, ``ht_nxt``, ``group_ptr``,
    ``free_ln``, ``y_values``) to their shared blocks; the scalars are
    what the zero-copy constructors cannot infer from the arrays.
    """

    arrays: Dict[str, SharedArraySpec]
    free_dims: Tuple[int, ...]
    contract_dims: Tuple[int, ...]


def _export_array(
    arr: np.ndarray, blocks: List[shared_memory.SharedMemory]
) -> SharedArraySpec:
    """Copy *arr* into a fresh shared block owned by the caller."""
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    blocks.append(shm)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return SharedArraySpec(shm.name, tuple(arr.shape), arr.dtype.str)


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without taking ownership.

    Python 3.13+ supports ``track=False`` so the attach never touches
    the resource tracker. On older versions the attach re-registers the
    name, which is harmless here: ``multiprocessing`` children share
    the parent's tracker process (its fd is inherited under fork and
    passed through spawn preparation data) and registration is
    idempotent per name, so the parent's single ``unlink()`` still
    cleans the entry exactly once.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _attach_array(
    spec: SharedArraySpec, blocks: List[shared_memory.SharedMemory]
) -> np.ndarray:
    shm = _attach_block(spec.shm_name)
    blocks.append(shm)
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)


@dataclass(frozen=True)
class SharedYSpec:
    """Raw Y operand plus mode split for worker-side partial builds.

    Stage-1 workers group spans of Y's COO rows without materializing a
    :class:`~repro.tensor.coo.SparseTensor`; the mode split is computed
    once in the parent (same validation as the serial build).
    """

    indices: SharedArraySpec
    values: SharedArraySpec
    contract_modes: Tuple[int, ...]
    free_modes: Tuple[int, ...]
    contract_dims: Tuple[int, ...]
    free_dims: Tuple[int, ...]


def export_y(
    y_indices: np.ndarray,
    y_values: np.ndarray,
    contract_modes: Sequence[int],
    free_modes: Sequence[int],
    contract_dims: Sequence[int],
    free_dims: Sequence[int],
    blocks: List[shared_memory.SharedMemory],
) -> SharedYSpec:
    """Copy Y's COO arrays into shared blocks for stage-1 workers."""
    return SharedYSpec(
        indices=_export_array(y_indices, blocks),
        values=_export_array(y_values, blocks),
        contract_modes=tuple(int(m) for m in contract_modes),
        free_modes=tuple(int(m) for m in free_modes),
        contract_dims=tuple(int(d) for d in contract_dims),
        free_dims=tuple(int(d) for d in free_dims),
    )


def export_operands(
    px: PreparedX,
    hty: HashTensor,
    blocks: List[shared_memory.SharedMemory],
) -> SharedOperandSpec:
    """Place the prepared X and HtY backing arrays into shared memory.

    The HtY arrays are *copied* into fresh blocks — the source HtY (which
    may live in an :class:`~repro.core.htycache.HtYCache`) is never
    rebound to shared buffers, so cached entries stay valid after the
    pool unlinks its blocks.
    """
    table = hty.table
    arrays = {
        "ptr": _export_array(px.ptr, blocks),
        "fx_rows": _export_array(px.fx_rows, blocks),
        "cx_ln": _export_array(px.cx_ln, blocks),
        "x_values": _export_array(px.values, blocks),
        "ht_heads": _export_array(table.heads, blocks),
        "ht_keys": _export_array(table.keys[: table.size], blocks),
        "ht_nxt": _export_array(table.nxt[: table.size], blocks),
        "group_ptr": _export_array(hty.group_ptr, blocks),
        "free_ln": _export_array(hty.free_ln, blocks),
        "y_values": _export_array(hty.values, blocks),
    }
    return SharedOperandSpec(
        arrays=arrays,
        free_dims=tuple(hty.free_dims),
        contract_dims=tuple(hty.contract_dims),
    )


def attach_operands(
    spec: SharedOperandSpec, blocks: List[shared_memory.SharedMemory]
) -> Tuple[PreparedX, HashTensor]:
    """Worker-side inverse of :func:`export_operands` (zero-copy)."""
    arrs = {
        name: _attach_array(aspec, blocks)
        for name, aspec in spec.arrays.items()
    }
    px = PreparedX(
        arrs["ptr"], arrs["fx_rows"], arrs["cx_ln"], arrs["x_values"]
    )
    hty = HashTensor.from_shared_buffers(
        heads=arrs["ht_heads"],
        keys=arrs["ht_keys"],
        nxt=arrs["ht_nxt"],
        group_ptr=arrs["group_ptr"],
        free_ln=arrs["free_ln"],
        values=arrs["y_values"],
        free_dims=spec.free_dims,
        contract_dims=spec.contract_dims,
    )
    return px, hty


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
def _worker_main(
    wid: int,
    spec: SharedOperandSpec,
    chunks: Sequence[Tuple[int, int]],
    counter,
    result_q,
) -> None:
    """Claim chunks from the shared counter until none remain."""
    blocks: List[shared_memory.SharedMemory] = []
    try:
        px, hty = attach_operands(spec, blocks)
        clock = time.perf_counter
        while True:
            with counter.get_lock():
                idx = int(counter.value)
                counter.value = idx + 1
            if idx >= len(chunks):
                break
            lo, hi = chunks[idx]
            t0 = clock()
            probes0 = hty.table.probes
            wprofile = RunProfile(f"sparta_parallel-p{wid}")
            fr = fused_compute(
                px,
                hty,
                y_structure="hash",
                accumulator="hash",
                profile=wprofile,
                lo=lo,
                hi=hi,
                clock=clock,
            )
            result_q.put(
                (
                    "chunk",
                    wid,
                    idx,
                    fr,
                    dict(wprofile.counters),
                    hty.table.probes - probes0,
                    clock() - t0,
                )
            )
        result_q.put(("done", wid))
    except BaseException:
        result_q.put(("error", wid, traceback.format_exc()))
    finally:
        for shm in blocks:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass


def _pool_worker_main(
    wid: int,
    yspec: SharedYSpec,
    spans: Sequence[Tuple[int, int]],
    counter_a,
    counter_b,
    task_q,
    result_q,
) -> None:
    """Two-phase worker: build stage-1 partials, then compute chunks.

    Phase A claims Y spans through ``counter_a`` and ships each span's
    :class:`~repro.hashtable.tensor_table.PartialGroups` back to the
    parent (which merges them into HtY while this worker idles on
    ``task_q``). Phase B starts when the parent broadcasts the exported
    operands and chunk list; it is the same claim loop as
    :func:`_worker_main`.
    """
    blocks: List[shared_memory.SharedMemory] = []
    try:
        clock = time.perf_counter
        y_idx = _attach_array(yspec.indices, blocks)
        y_val = _attach_array(yspec.values, blocks)
        while True:
            with counter_a.get_lock():
                idx = int(counter_a.value)
                counter_a.value = idx + 1
            if idx >= len(spans):
                break
            lo, hi = spans[idx]
            t0 = clock()
            pg = build_partial_groups(
                y_idx,
                y_val,
                yspec.contract_modes,
                yspec.free_modes,
                yspec.contract_dims,
                yspec.free_dims,
                lo,
                hi,
            )
            result_q.put(("partial", wid, idx, pg, clock() - t0))
        result_q.put(("phase_done", wid))

        task = task_q.get()
        if task[0] == "chunks":
            _, spec, chunks = task
            if spec is not None and chunks:
                px, hty = attach_operands(spec, blocks)
                while True:
                    with counter_b.get_lock():
                        idx = int(counter_b.value)
                        counter_b.value = idx + 1
                    if idx >= len(chunks):
                        break
                    lo, hi = chunks[idx]
                    t0 = clock()
                    probes0 = hty.table.probes
                    wprofile = RunProfile(f"sparta_parallel-p{wid}")
                    fr = fused_compute(
                        px,
                        hty,
                        y_structure="hash",
                        accumulator="hash",
                        profile=wprofile,
                        lo=lo,
                        hi=hi,
                        clock=clock,
                    )
                    result_q.put(
                        (
                            "chunk",
                            wid,
                            idx,
                            fr,
                            dict(wprofile.counters),
                            hty.table.probes - probes0,
                            clock() - t0,
                        )
                    )
        result_q.put(("done", wid))
    except BaseException:
        result_q.put(("error", wid, traceback.format_exc()))
    finally:
        for shm in blocks:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass


# ----------------------------------------------------------------------
# parent-side pool driver
# ----------------------------------------------------------------------
@dataclass
class WorkerChunk:
    """One chunk's result, tagged with who computed it."""

    worker: int
    chunk: int
    fused: FusedRange
    counters: Dict[str, int]
    hash_probes: int
    seconds: float


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """``fork`` where available (cheap, inherits state), else ``spawn``."""
    if start_method is not None:
        if start_method not in mp.get_all_start_methods():
            raise ParallelError(
                f"start method {start_method!r} unavailable on this "
                f"platform; choose from {mp.get_all_start_methods()}"
            )
        return start_method
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _dispatch(msg, handle, pending, done_tag: str) -> None:
    if msg[0] == done_tag:
        pending.discard(msg[1])
    elif msg[0] == "error":
        raise ParallelError(f"parallel worker {msg[1]} failed:\n{msg[2]}")
    else:
        handle(msg)


def _drain_results(
    procs,
    result_q,
    pending,
    handle,
    done_tag: str,
    *,
    deadline: Optional[float] = None,
    timeout: Optional[float] = None,
) -> None:
    """Consume the result queue until every pending worker sent *done_tag*.

    Polls worker liveness between queue reads so a dead worker can never
    hang the parent; ``error`` messages and hard deaths both raise
    :class:`~repro.errors.ParallelError`. Shared by the single-phase
    chunk driver and both phases of :class:`SpartaProcessPool`.
    """
    while pending:
        if deadline is not None and time.monotonic() > deadline:
            raise ParallelError(
                f"parallel pool timed out after {timeout:.1f}s with "
                f"workers {sorted(pending)} still running"
            )
        try:
            _dispatch(
                result_q.get(timeout=_POLL_SECONDS), handle, pending, done_tag
            )
            continue
        except queue.Empty:
            pass
        dead = [
            wid for wid in pending if procs[wid].exitcode is not None
        ]
        if not dead:
            continue
        # A worker exited; drain anything it managed to send (its
        # done message may still be in flight) before declaring it lost.
        while True:
            try:
                _dispatch(
                    result_q.get_nowait(), handle, pending, done_tag
                )
            except queue.Empty:
                break
        dead = [
            wid for wid in pending if procs[wid].exitcode is not None
        ]
        if dead:
            codes = {wid: procs[wid].exitcode for wid in dead}
            raise ParallelError(
                f"parallel worker(s) died without finishing: "
                f"{codes} (exit codes); partial results discarded"
            )


class SpartaProcessPool:
    """Persistent two-phase worker pool for the all-parallel pipeline.

    Construction exports Y's COO arrays to shared memory and starts the
    workers, which immediately begin claiming stage-1 spans — so the
    parent overlaps its own X preparation with the partial builds. The
    parent then calls :meth:`drain_partials` (collect and merge inputs
    for HtY), :meth:`run_chunks` (broadcast the exported operands, run
    stages 2–4, gather in chunk order) and :meth:`close` (always, in a
    ``finally``). One pool start-up cost covers all five stages.
    """

    def __init__(
        self,
        y_indices: np.ndarray,
        y_values: np.ndarray,
        contract_modes: Sequence[int],
        free_modes: Sequence[int],
        contract_dims: Sequence[int],
        free_dims: Sequence[int],
        spans: Sequence[Tuple[int, int]],
        *,
        workers: int,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = int(workers)
        self._blocks: List[shared_memory.SharedMemory] = []
        self._procs: Dict[int, mp.process.BaseProcess] = {}
        self._result_q = None
        self._task_q = None
        self._spans = [(int(lo), int(hi)) for lo, hi in spans]
        method = resolve_start_method(start_method)
        ctx = mp.get_context(method)
        try:
            self._result_q = ctx.Queue()
            self._task_q = ctx.Queue()
            yspec = export_y(
                y_indices,
                y_values,
                contract_modes,
                free_modes,
                contract_dims,
                free_dims,
                self._blocks,
            )
            # Both counters must stay referenced for the pool's lifetime:
            # spawn/forkserver children unpickle their args *after*
            # __init__ returns, and a collected Value unlinks its
            # semaphore out from under them.
            self._counter_a = counter_a = ctx.Value("q", 0)
            self._counter_b = ctx.Value("q", 0)
            old_pythonpath = os.environ.get("PYTHONPATH")
            if method == "spawn":
                os.environ["PYTHONPATH"] = _PACKAGE_ROOT + (
                    os.pathsep + old_pythonpath if old_pythonpath else ""
                )
            try:
                for wid in range(self.workers):
                    p = ctx.Process(
                        target=_pool_worker_main,
                        args=(
                            wid,
                            yspec,
                            self._spans,
                            counter_a,
                            self._counter_b,
                            self._task_q,
                            self._result_q,
                        ),
                        daemon=True,
                    )
                    self._procs[wid] = p
                    p.start()
            finally:
                if method == "spawn":
                    if old_pythonpath is None:
                        os.environ.pop("PYTHONPATH", None)
                    else:
                        os.environ["PYTHONPATH"] = old_pythonpath
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def drain_partials(
        self, *, timeout: Optional[float] = None
    ) -> Tuple[List[PartialGroups], Dict[int, float]]:
        """Collect every span's partial grouping, in span order.

        Returns ``(partials, seconds)`` where ``seconds[wid]`` is the
        stage-1 compute time worker *wid* spent across its claimed
        spans.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        partials: Dict[int, PartialGroups] = {}
        seconds: Dict[int, float] = {wid: 0.0 for wid in self._procs}

        def handle(msg) -> None:
            _, wid, idx, pg, secs = msg
            partials[idx] = pg
            seconds[wid] += float(secs)

        pending = set(self._procs)
        _drain_results(
            self._procs,
            self._result_q,
            pending,
            handle,
            "phase_done",
            deadline=deadline,
            timeout=timeout,
        )
        missing = set(range(len(self._spans))) - set(partials)
        if missing:
            raise ParallelError(
                f"stage-1 drained but spans {sorted(missing)} were never "
                "reported — shared claim counter out of sync"
            )
        return [partials[i] for i in range(len(self._spans))], seconds

    # ------------------------------------------------------------------
    def run_chunks(
        self,
        px: PreparedX,
        hty: HashTensor,
        chunks: Sequence[Tuple[int, int]],
        *,
        timeout: Optional[float] = None,
    ) -> List[WorkerChunk]:
        """Broadcast operands, run stages 2–4, gather in chunk order.

        Must be called exactly once, after :meth:`drain_partials`; the
        workers exit when their claim loop drains. An empty *chunks*
        still releases the workers (they exit without computing).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        chunks = [(int(lo), int(hi)) for lo, hi in chunks]
        spec = (
            export_operands(px, hty, self._blocks) if chunks else None
        )
        for _ in range(self.workers):
            self._task_q.put(("chunks", spec, chunks))
        results: Dict[int, WorkerChunk] = {}

        def handle(msg) -> None:
            _, wid, idx, fr, counters, probes, secs = msg
            results[idx] = WorkerChunk(
                worker=wid,
                chunk=idx,
                fused=fr,
                counters=counters,
                hash_probes=int(probes),
                seconds=float(secs),
            )

        pending = set(self._procs)
        _drain_results(
            self._procs,
            self._result_q,
            pending,
            handle,
            "done",
            deadline=deadline,
            timeout=timeout,
        )
        missing = set(range(len(chunks))) - set(results)
        if missing:
            raise ParallelError(
                f"pool drained but chunks {sorted(missing)} were never "
                "reported — shared claim counter out of sync"
            )
        for p in self._procs.values():
            p.join(timeout=10.0)
        return [results[i] for i in range(len(chunks))]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down workers, queues and shared blocks (idempotent)."""
        for p in self._procs.values():
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for q_ in (self._result_q, self._task_q):
            if q_ is None:
                continue
            try:
                q_.close()
                q_.cancel_join_thread()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        for shm in self._blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._blocks = []


def contract_chunks_in_processes(
    px: PreparedX,
    hty: HashTensor,
    chunks: Sequence[Tuple[int, int]],
    *,
    workers: int,
    start_method: Optional[str] = None,
    timeout: Optional[float] = None,
) -> List[WorkerChunk]:
    """Run :func:`fused_compute` over *chunks* on *workers* processes.

    Returns one :class:`WorkerChunk` per input chunk, **in chunk
    order** — the deterministic gather that keeps process-parallel
    output bit-identical to the serial fused engine. Raises
    :class:`~repro.errors.ParallelError` if any worker raises or dies;
    the pool is torn down (never left hanging) and all shared blocks
    are closed and unlinked before returning or raising.
    """
    if not chunks:
        return []
    method = resolve_start_method(start_method)
    ctx = mp.get_context(method)
    blocks: List[shared_memory.SharedMemory] = []
    procs: Dict[int, mp.process.BaseProcess] = {}
    result_q = ctx.Queue()
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        spec = export_operands(px, hty, blocks)
        counter = ctx.Value("q", 0)
        chunks = [(int(lo), int(hi)) for lo, hi in chunks]
        old_pythonpath = os.environ.get("PYTHONPATH")
        if method == "spawn":
            # Spawned children re-import repro; make sure they can even
            # when the parent was launched with a relative PYTHONPATH
            # from another working directory.
            os.environ["PYTHONPATH"] = _PACKAGE_ROOT + (
                os.pathsep + old_pythonpath if old_pythonpath else ""
            )
        try:
            for wid in range(workers):
                p = ctx.Process(
                    target=_worker_main,
                    args=(wid, spec, chunks, counter, result_q),
                    daemon=True,
                )
                procs[wid] = p
                p.start()
        finally:
            if method == "spawn":
                if old_pythonpath is None:
                    os.environ.pop("PYTHONPATH", None)
                else:
                    os.environ["PYTHONPATH"] = old_pythonpath

        results: Dict[int, WorkerChunk] = {}
        pending = set(procs)

        def handle(msg) -> None:
            _, wid, idx, fr, counters, probes, secs = msg
            results[idx] = WorkerChunk(
                worker=wid,
                chunk=idx,
                fused=fr,
                counters=counters,
                hash_probes=int(probes),
                seconds=float(secs),
            )

        _drain_results(
            procs,
            result_q,
            pending,
            handle,
            "done",
            deadline=deadline,
            timeout=timeout,
        )

        missing = set(range(len(chunks))) - set(results)
        if missing:
            raise ParallelError(
                f"pool drained but chunks {sorted(missing)} were never "
                "reported — shared claim counter out of sync"
            )
        for p in procs.values():
            p.join(timeout=10.0)
        return [results[i] for i in range(len(chunks))]
    finally:
        for p in procs.values():
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        try:
            result_q.close()
            result_q.cancel_join_thread()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        for shm in blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
