"""Process-parallel Sparta backend over shared-memory operands (§3.5),
with fault-tolerant execution.

The thread executor in :mod:`repro.parallel.executor` shares one
interpreter across its workers, so it can only *model* multi-core
scaling. This module runs the same fused sub-tensor decomposition on
genuinely concurrent ``multiprocessing`` workers:

* the prepared X arrays (``ptr``, ``fx_rows``, ``cx_ln``, values) and
  HtY's backing arrays (bucket heads, chain links, table keys, group
  pointer, free keys, values) are copied once into
  :mod:`multiprocessing.shared_memory` blocks; workers attach zero-copy
  views through :meth:`~repro.hashtable.tensor_table.HashTensor.
  from_shared_buffers`, so per-worker memory stays O(its output);
* sub-tensor chunks (several per worker) are claimed dynamically
  through a shared index counter — work stealing, which beats static
  per-worker ranges when fiber sizes are skewed
  (``partition_imbalance``);
* each chunk's :class:`~repro.core.kernels.FusedRange` ships back
  tagged with its chunk id and the parent concatenates in chunk order,
  so the gathered output is bit-identical to the serial fused engine no
  matter which worker computed which chunk (chunks snap to sub-tensor
  boundaries, so no output key ever spans two chunks).

Fault tolerance (the recovery half of :mod:`repro.faults`): every
worker *announces* each claim on the result queue before computing it,
so the parent always knows which chunk a worker owns. Worker failures
split into three classes:

* a Python **exception** in a worker is deterministic — recomputing the
  chunk would raise again — so it surfaces immediately as
  :class:`~repro.errors.WorkerCrashError`;
* a **hard death** (killed process), a **hang** (no result within
  ``unit_timeout`` of a claim — the worker is force-killed) or a
  **corrupt payload** (the shipped digest does not match the received
  arrays) loses only the chunks that worker owned; the parent respawns
  up to ``max_retries`` rounds of replacement workers (fresh worker
  ids, exponential backoff) that recompute exactly the missing chunks
  over their original boundaries;
* if chunks are still missing after the retry budget, the pool is
  **irrecoverable**: ``on_failure="serial"`` recomputes them with the
  serial fused kernel in the parent (recording
  ``flags["degraded"]="serial"`` on the run profile), while the default
  ``on_failure="raise"`` raises
  :class:`~repro.errors.PoolDegradedError`.

Recovery preserves the bit-identical-to-serial guarantee and the
byte-exact Table-2 traffic accounting: chunk results are pure functions
of the shared operands and the chunk's original ``[lo, hi)`` bounds,
results are keyed by chunk id with first-accepted-wins dedup (a chunk
reported just before its worker died is never recomputed or
double-counted), and per-chunk counters/probes fold into the profile
exactly once.

Messaging uses one duplex :func:`multiprocessing.Pipe` per worker, not
a shared queue, and that choice is load-bearing for fault tolerance: a
shared ``mp.Queue`` holds its reader/writer locks *while a process is
blocked on it*, so force-killing one worker (hang, corrupt payload)
would leave the lock orphaned and deadlock every survivor on a futex.
With per-worker pipes each connection has exactly one reader and one
writer, a kill can only sever that worker's own channel (the parent
sees EOF after draining anything it managed to send), and the parent
multiplexes with :func:`multiprocessing.connection.wait`. The only
remaining shared primitive is the claim counter, held for two bytecode
ops per claim — injected kills always fire outside it, and the phase
``timeout`` backstops the astronomically narrow kill-during-claim race.

Lifetime rules: the **parent** owns the shared blocks — it creates them
before the workers start and closes *and unlinks* them after the pool
drains, including on error paths. Workers only attach and close. Under
the ``fork`` start method (the default where available) children
inherit the parent's address space and environment; under ``spawn``
they re-import :mod:`repro`, for which the parent temporarily extends
``PYTHONPATH`` with its own package root.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import multiprocessing as mp
from dataclasses import replace as _dc_replace
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory

import numpy as np

from repro.core.common import PreparedX
from repro.core.kernels import FusedRange, fused_compute
from repro.core.profile import RunProfile
from repro.errors import (
    ContractionError,
    ParallelError,
    PoolDegradedError,
    WorkerCrashError,
)
from repro.faults import ANY, FaultInjector, FaultPlan, payload_digest
from repro.obs.tracer import CAT_WORKER, Tracer
from repro.hashtable.tensor_table import (
    HashTensor,
    PartialGroups,
    build_partial_groups,
)
from repro.parallel.partition import select_units, tag_units

#: chunks per worker claimed through the shared counter; >1 so a worker
#: that drew a light chunk steals more work instead of idling
DEFAULT_CHUNKS_PER_WORKER = 4

#: seconds between liveness checks while waiting on worker pipes
_POLL_SECONDS = 0.25

#: absolute path of the directory containing the ``repro`` package,
#: prepended to PYTHONPATH for spawn-mode children
_PACKAGE_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

#: accepted values of :attr:`RecoveryPolicy.on_failure`
ON_FAILURE = ("raise", "serial")


# ----------------------------------------------------------------------
# recovery policy + log
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryPolicy:
    """How the pool reacts to worker failure.

    ``max_retries`` bounds respawn rounds (0 disables respawn);
    ``on_failure`` picks raise-vs-serial once retries are exhausted;
    ``unit_timeout`` is the per-claim hang detector (a worker that sits
    on one claimed unit longer than this is force-killed and its units
    reassigned); ``timeout`` is the whole-phase deadline, which is
    *not* recoverable — it raises :class:`~repro.errors.ParallelError`
    naming the still-pending chunk ids.
    """

    max_retries: int = 2
    on_failure: str = "raise"
    unit_timeout: Optional[float] = None
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.on_failure not in ON_FAILURE:
            raise ContractionError(
                f"unknown on_failure {self.on_failure!r}; "
                f"choose from {ON_FAILURE}"
            )
        if self.max_retries < 0:
            raise ContractionError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def backoff(self, round_index: int) -> float:
        """Exponential backoff before respawn round *round_index* (1-based)."""
        return min(
            self.backoff_base * (2.0 ** (round_index - 1)),
            self.backoff_cap,
        )


@dataclass
class RecoveryLog:
    """Observability record of one run's recovery activity.

    ``counters`` fold into the run profile (``ft_*`` names); ``failures``
    keeps human-readable reasons; ``degraded`` flips when the serial
    fallback ran (surfaced as ``profile.flags["degraded"]``).

    ``tracer`` (a :class:`repro.obs.Tracer`, attached by the executor
    when the caller asked for a trace) additionally receives recovery
    instant events and the span records workers ship back over their
    result pipes; it stays ``None`` — and everything here is a no-op —
    on untraced runs.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    degraded: bool = False
    tracer: Optional[object] = None

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def note_event(self, name: str, **args) -> None:
        """Record a recovery instant on the attached tracer, if any."""
        if self.tracer is not None:
            self.tracer.instant(name, cat="recovery", **args)

    def ingest_spans(self, records) -> None:
        """Fold worker-shipped trace records into the attached tracer."""
        if self.tracer is not None and records:
            self.tracer.ingest(records)


# ----------------------------------------------------------------------
# shared-memory export / attach
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArraySpec:
    """Where one operand array lives: shm block name, shape, dtype."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedOperandSpec:
    """Everything a worker needs to reattach the operands.

    ``arrays`` maps logical names (``ptr``, ``cx_ln``, ``x_values``,
    ``fx_rows``, ``ht_heads``, ``ht_keys``, ``ht_nxt``, ``group_ptr``,
    ``free_ln``, ``y_values``) to their shared blocks; the scalars are
    what the zero-copy constructors cannot infer from the arrays.
    """

    arrays: Dict[str, SharedArraySpec]
    free_dims: Tuple[int, ...]
    contract_dims: Tuple[int, ...]


def _export_array(
    arr: np.ndarray, blocks: List[shared_memory.SharedMemory]
) -> SharedArraySpec:
    """Copy *arr* into a fresh shared block owned by the caller."""
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    blocks.append(shm)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return SharedArraySpec(shm.name, tuple(arr.shape), arr.dtype.str)


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without taking ownership.

    Python 3.13+ supports ``track=False`` so the attach never touches
    the resource tracker. On older versions the attach re-registers the
    name, which is harmless here: ``multiprocessing`` children share
    the parent's tracker process (its fd is inherited under fork and
    passed through spawn preparation data) and registration is
    idempotent per name, so the parent's single ``unlink()`` still
    cleans the entry exactly once — even when a worker is killed
    between attach and detach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _attach_array(
    spec: SharedArraySpec, blocks: List[shared_memory.SharedMemory]
) -> np.ndarray:
    shm = _attach_block(spec.shm_name)
    blocks.append(shm)
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)


def _release_blocks(
    blocks: List[shared_memory.SharedMemory], *, unlink: bool
) -> None:
    """Close (and optionally unlink) blocks, leaking none on error.

    ``close`` and ``unlink`` are attempted independently per block: a
    failed ``close`` (e.g. exported buffer still referenced) must not
    skip the ``unlink`` that actually removes the segment from
    ``/dev/shm`` — that was the one teardown path that could leak.
    """
    for shm in blocks:
        try:
            shm.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:  # pragma: no cover - teardown best-effort
                pass


@dataclass(frozen=True)
class SharedYSpec:
    """Raw Y operand plus mode split for worker-side partial builds.

    Stage-1 workers group spans of Y's COO rows without materializing a
    :class:`~repro.tensor.coo.SparseTensor`; the mode split is computed
    once in the parent (same validation as the serial build).
    """

    indices: SharedArraySpec
    values: SharedArraySpec
    contract_modes: Tuple[int, ...]
    free_modes: Tuple[int, ...]
    contract_dims: Tuple[int, ...]
    free_dims: Tuple[int, ...]


def export_y(
    y_indices: np.ndarray,
    y_values: np.ndarray,
    contract_modes: Sequence[int],
    free_modes: Sequence[int],
    contract_dims: Sequence[int],
    free_dims: Sequence[int],
    blocks: List[shared_memory.SharedMemory],
) -> SharedYSpec:
    """Copy Y's COO arrays into shared blocks for stage-1 workers."""
    return SharedYSpec(
        indices=_export_array(y_indices, blocks),
        values=_export_array(y_values, blocks),
        contract_modes=tuple(int(m) for m in contract_modes),
        free_modes=tuple(int(m) for m in free_modes),
        contract_dims=tuple(int(d) for d in contract_dims),
        free_dims=tuple(int(d) for d in free_dims),
    )


def export_operands(
    px: PreparedX,
    hty: HashTensor,
    blocks: List[shared_memory.SharedMemory],
) -> SharedOperandSpec:
    """Place the prepared X and HtY backing arrays into shared memory.

    The HtY arrays are *copied* into fresh blocks — the source HtY (which
    may live in an :class:`~repro.core.htycache.HtYCache`) is never
    rebound to shared buffers, so cached entries stay valid after the
    pool unlinks its blocks.
    """
    table = hty.table
    arrays = {
        "ptr": _export_array(px.ptr, blocks),
        "fx_rows": _export_array(px.fx_rows, blocks),
        "cx_ln": _export_array(px.cx_ln, blocks),
        "x_values": _export_array(px.values, blocks),
        "ht_heads": _export_array(table.heads, blocks),
        "ht_keys": _export_array(table.keys[: table.size], blocks),
        "ht_nxt": _export_array(table.nxt[: table.size], blocks),
        "group_ptr": _export_array(hty.group_ptr, blocks),
        "free_ln": _export_array(hty.free_ln, blocks),
        "y_values": _export_array(hty.values, blocks),
    }
    return SharedOperandSpec(
        arrays=arrays,
        free_dims=tuple(hty.free_dims),
        contract_dims=tuple(hty.contract_dims),
    )


def attach_operands(
    spec: SharedOperandSpec, blocks: List[shared_memory.SharedMemory]
) -> Tuple[PreparedX, HashTensor]:
    """Worker-side inverse of :func:`export_operands` (zero-copy)."""
    arrs = {
        name: _attach_array(aspec, blocks)
        for name, aspec in spec.arrays.items()
    }
    px = PreparedX(
        arrs["ptr"], arrs["fx_rows"], arrs["cx_ln"], arrs["x_values"]
    )
    hty = HashTensor.from_shared_buffers(
        heads=arrs["ht_heads"],
        keys=arrs["ht_keys"],
        nxt=arrs["ht_nxt"],
        group_ptr=arrs["group_ptr"],
        free_ln=arrs["free_ln"],
        values=arrs["y_values"],
        free_dims=spec.free_dims,
        contract_dims=spec.contract_dims,
    )
    return px, hty


# ----------------------------------------------------------------------
# worker-side claim loops
# ----------------------------------------------------------------------
def _claim_next(counter) -> int:
    with counter.get_lock():
        idx = int(counter.value)
        counter.value = idx + 1
    return idx


def _send(conn, msg) -> None:
    """Ship one message to the parent; die quietly if it is gone."""
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError):  # parent exited mid-run
        os._exit(1)


def _run_span_units(
    wid: int,
    y_idx: np.ndarray,
    y_val: np.ndarray,
    yspec: SharedYSpec,
    units: Sequence[Tuple[int, int, int]],
    counter,
    conn,
    inj: FaultInjector,
    tracer: Optional[Tracer] = None,
) -> None:
    """Claim tagged Y spans and ship stage-1 partial groupings.

    With a *tracer*, each claim leaves an instant event and each build a
    ``stage1_partial`` span on this worker's track; the records ride the
    ``partial`` message (``tracer.drain()``) so the parent folds them
    into its own timeline as they arrive.
    """
    clock = time.perf_counter
    while True:
        idx = _claim_next(counter)
        if idx >= len(units):
            break
        unit, lo, hi = units[idx]
        _send(conn, ("claim", wid, unit))
        if tracer is not None:
            tracer.instant("claim", cat=CAT_WORKER, unit=int(unit))
        inj.fire("input_processing", unit)
        t0 = clock()
        pg = build_partial_groups(
            y_idx,
            y_val,
            yspec.contract_modes,
            yspec.free_modes,
            yspec.contract_dims,
            yspec.free_dims,
            lo,
            hi,
        )
        t1 = clock()
        digest = payload_digest(
            pg.group_keys, pg.group_ptr, pg.free_ln, pg.values
        )
        inj.maybe_corrupt("input_processing", unit, (pg.values,))
        spans = None
        if tracer is not None:
            tracer.add_span(
                "stage1_partial",
                start=t0,
                end=t1,
                cat=CAT_WORKER,
                unit=int(unit),
                nnz=int(hi - lo),
            )
            spans = tracer.drain()
        _send(
            conn, ("partial", wid, unit, pg, t1 - t0, digest, spans)
        )


def _run_chunk_units(
    wid: int,
    px: PreparedX,
    hty: HashTensor,
    units: Sequence[Tuple[int, int, int]],
    counter,
    conn,
    inj: FaultInjector,
    tracer: Optional[Tracer] = None,
    spill_dir: Optional[str] = None,
) -> None:
    """Claim tagged chunks, run the fused kernel, ship tagged results.

    With a *tracer*, each claim leaves an instant event and each fused
    computation a ``chunk`` span on this worker's track, shipped with
    the chunk result (``tracer.drain()``).

    With a *spill_dir* (out-of-core mode) the chunk's arrays are
    written to a per-worker run file there and only a
    :class:`~repro.ooc.runfile.FusedRunRef` crosses the pipe — the
    parent maps the arrays lazily. The spill happens *after* the digest
    is taken and after fault injection may have corrupted the arrays,
    so corruption lands in the file and the parent's digest check over
    the mapped arrays catches it exactly like the in-memory path; the
    file name carries the worker id, so a respawned worker never
    collides with a dead one's leftovers.
    """
    clock = time.perf_counter
    while True:
        idx = _claim_next(counter)
        if idx >= len(units):
            break
        unit, lo, hi = units[idx]
        _send(conn, ("claim", wid, unit))
        if tracer is not None:
            tracer.instant("claim", cat=CAT_WORKER, unit=int(unit))
        inj.fire("index_search", unit)
        t0 = clock()
        probes0 = hty.table.probes
        wprofile = RunProfile(f"sparta_parallel-p{wid}")
        fr = fused_compute(
            px,
            hty,
            y_structure="hash",
            accumulator="hash",
            profile=wprofile,
            lo=lo,
            hi=hi,
            clock=clock,
        )
        t1 = clock()
        inj.fire("accumulation", unit)
        digest = payload_digest(fr.out_fgrp, fr.out_fy, fr.out_vals)
        inj.maybe_corrupt("accumulation", unit, (fr.out_vals,))
        payload = fr
        if spill_dir is not None:
            from repro.ooc.runfile import spill_fused_range

            payload = spill_fused_range(
                fr,
                os.path.join(
                    spill_dir, f"chunk{int(unit):05d}_w{wid}.run"
                ),
            )
        spans = None
        if tracer is not None:
            tracer.add_span(
                "chunk",
                start=t0,
                end=t1,
                cat=CAT_WORKER,
                unit=int(unit),
                subtensors=int(hi - lo),
                products=int(fr.products),
            )
            spans = tracer.drain()
        _send(
            conn,
            (
                "chunk",
                wid,
                unit,
                payload,
                dict(wprofile.counters),
                hty.table.probes - probes0,
                t1 - t0,
                digest,
                spans,
            ),
        )
        inj.fire("writeback", unit)
    inj.fire("output_sorting", ANY)


def _worker_tracer(wid: int, trace: bool) -> Optional[Tracer]:
    """Per-worker tracer on track ``wid + 1``, with a spawn marker."""
    if not trace:
        return None
    tracer = Tracer(default_tid=wid + 1)
    tracer.instant("worker_start", cat=CAT_WORKER, worker=wid)
    return tracer


def _span_worker_main(
    wid: int,
    yspec: SharedYSpec,
    units: Sequence[Tuple[int, int, int]],
    counter,
    conn,
    fault_plan: Optional[FaultPlan] = None,
    trace: bool = False,
) -> None:
    """Standalone stage-1 worker (used by respawn rounds)."""
    blocks: List[shared_memory.SharedMemory] = []
    tracer = _worker_tracer(wid, trace)
    try:
        inj = FaultInjector(fault_plan, wid, tracer=tracer)
        y_idx = _attach_array(yspec.indices, blocks)
        y_val = _attach_array(yspec.values, blocks)
        _run_span_units(
            wid, y_idx, y_val, yspec, units, counter, conn, inj, tracer
        )
        _send(
            conn,
            ("done", wid, tracer.drain() if tracer else None),
        )
    except BaseException:
        _send(conn, ("error", wid, traceback.format_exc()))
    finally:
        _release_blocks(blocks, unlink=False)


def _chunk_worker_main(
    wid: int,
    spec: SharedOperandSpec,
    units: Sequence[Tuple[int, int, int]],
    counter,
    conn,
    fault_plan: Optional[FaultPlan] = None,
    trace: bool = False,
    spill_dir: Optional[str] = None,
) -> None:
    """Single-phase chunk worker: claim tagged chunks until none remain."""
    blocks: List[shared_memory.SharedMemory] = []
    tracer = _worker_tracer(wid, trace)
    try:
        inj = FaultInjector(fault_plan, wid, tracer=tracer)
        px, hty = attach_operands(spec, blocks)
        _run_chunk_units(
            wid, px, hty, units, counter, conn, inj, tracer, spill_dir
        )
        _send(
            conn,
            ("done", wid, tracer.drain() if tracer else None),
        )
    except BaseException:
        _send(conn, ("error", wid, traceback.format_exc()))
    finally:
        _release_blocks(blocks, unlink=False)


def _pool_worker_main(
    wid: int,
    yspec: SharedYSpec,
    units: Sequence[Tuple[int, int, int]],
    counter_a,
    counter_b,
    conn,
    fault_plan: Optional[FaultPlan] = None,
    trace: bool = False,
    spill_dir: Optional[str] = None,
) -> None:
    """Two-phase worker: build stage-1 partials, then compute chunks.

    Phase A claims tagged Y spans through ``counter_a`` and ships each
    span's :class:`~repro.hashtable.tensor_table.PartialGroups` back to
    the parent (which merges them into HtY while this worker idles on
    its pipe). Phase B starts when the parent sends this worker the
    exported operands and tagged chunk list over the same duplex pipe;
    it is the same claim loop as :func:`_chunk_worker_main`.
    """
    blocks: List[shared_memory.SharedMemory] = []
    tracer = _worker_tracer(wid, trace)
    try:
        inj = FaultInjector(fault_plan, wid, tracer=tracer)
        y_idx = _attach_array(yspec.indices, blocks)
        y_val = _attach_array(yspec.values, blocks)
        _run_span_units(
            wid, y_idx, y_val, yspec, units, counter_a, conn, inj, tracer
        )
        _send(
            conn,
            ("phase_done", wid, tracer.drain() if tracer else None),
        )

        try:
            task = conn.recv()
        except (EOFError, OSError):  # parent tore the pool down
            return
        if task[0] == "chunks":
            _, spec, chunk_units = task
            if spec is not None and chunk_units:
                px, hty = attach_operands(spec, blocks)
                _run_chunk_units(
                    wid, px, hty, chunk_units, counter_b, conn, inj,
                    tracer, spill_dir,
                )
        _send(
            conn,
            ("done", wid, tracer.drain() if tracer else None),
        )
    except BaseException:
        _send(conn, ("error", wid, traceback.format_exc()))
    finally:
        _release_blocks(blocks, unlink=False)


# ----------------------------------------------------------------------
# parent-side pool driver
# ----------------------------------------------------------------------
@dataclass
class WorkerChunk:
    """One chunk's result, tagged with who computed it."""

    worker: int
    chunk: int
    fused: FusedRange
    counters: Dict[str, int]
    hash_probes: int
    seconds: float


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """``fork`` where available (cheap, inherits state), else ``spawn``."""
    if start_method is not None:
        if start_method not in mp.get_all_start_methods():
            raise ParallelError(
                f"start method {start_method!r} unavailable on this "
                f"platform; choose from {mp.get_all_start_methods()}"
            )
        return start_method
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _start_worker(ctx, method: str, target, args) -> mp.process.BaseProcess:
    """Start a daemon worker, with the spawn-mode PYTHONPATH fix.

    Spawned children re-import :mod:`repro`; make sure they can even
    when the parent was launched with a relative PYTHONPATH from
    another working directory.
    """
    old_pythonpath = os.environ.get("PYTHONPATH")
    if method == "spawn":
        os.environ["PYTHONPATH"] = _PACKAGE_ROOT + (
            os.pathsep + old_pythonpath if old_pythonpath else ""
        )
    try:
        p = ctx.Process(target=target, args=args, daemon=True)
        p.start()
        return p
    finally:
        if method == "spawn":
            if old_pythonpath is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = old_pythonpath


def _start_piped_worker(
    ctx, method: str, target, pre_args, fault_plan, trace: bool = False,
    extra: tuple = (),
) -> Tuple[mp.process.BaseProcess, mp_connection.Connection]:
    """Start a worker with its own duplex pipe; return (proc, conn).

    The worker receives ``(*pre_args, child_end, fault_plan, trace,
    *extra)`` — *extra* carries trailing optional arguments such as the
    out-of-core spill directory. The parent closes its copy of the
    child end immediately after the start so that the worker's exit
    (clean or killed) severs the connection and the parent observes EOF
    instead of blocking forever.
    """
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    try:
        p = _start_worker(
            ctx,
            method,
            target,
            (*pre_args, child_conn, fault_plan, trace, *extra),
        )
    except BaseException:
        _close_conn(parent_conn)
        _close_conn(child_conn)
        raise
    _close_conn(child_conn)
    return p, parent_conn


def _close_conn(conn) -> None:
    if conn is None:
        return
    try:
        conn.close()
    except OSError:  # pragma: no cover - teardown best-effort
        pass


def _kill_worker(p: mp.process.BaseProcess) -> None:
    if p.is_alive():
        try:
            p.kill()
        except AttributeError:  # pragma: no cover - py<3.7 fallback
            p.terminate()
    p.join(timeout=5.0)


def _drain_phase(
    procs: Dict[int, mp.process.BaseProcess],
    conns: Dict[int, mp_connection.Connection],
    pending: Set[int],
    expected: Set[int],
    completed: Set[int],
    handle: Callable[[tuple], bool],
    payload_tag: str,
    done_tag: str,
    log: RecoveryLog,
    *,
    deadline: Optional[float] = None,
    timeout: Optional[float] = None,
    unit_timeout: Optional[float] = None,
) -> Dict[int, str]:
    """Consume the worker pipes until every pending worker resolved.

    Multiplexes the per-worker connections with
    :func:`multiprocessing.connection.wait`, tracks per-chunk ownership
    through the workers' ``claim`` messages, checks worker liveness
    between polls (a dead worker can never hang the parent — its pipe
    reports EOF once drained), force-kills workers that sit on one
    claim longer than *unit_timeout*, and verifies payload integrity
    through *handle* (which returns ``False`` on a digest mismatch,
    marking the sender faulty). Failed workers' connections are closed
    and removed from *conns*. Returns ``{wid: reason}`` for every
    worker that failed — their unreported claims are simply absent from
    *completed* and the caller reassigns them. Worker exceptions raise
    :class:`~repro.errors.WorkerCrashError` immediately; blowing the
    *deadline* raises :class:`~repro.errors.ParallelError` naming the
    still-pending chunk ids.
    """
    claims: Dict[int, Tuple[int, float]] = {}
    failures: Dict[int, str] = {}
    pending = set(pending)

    def fail(wid: int, reason: str) -> None:
        failures[wid] = reason
        pending.discard(wid)
        claims.pop(wid, None)
        _close_conn(conns.pop(wid, None))
        log.bump("ft_worker_failures")
        log.note_event("worker_failure", worker=int(wid), reason=reason)

    def process(msg) -> None:
        tag = msg[0]
        if tag == "claim":
            _, wid, unit = msg
            claims[wid] = (int(unit), time.monotonic())
        elif tag == done_tag:
            pending.discard(msg[1])
            claims.pop(msg[1], None)
            if len(msg) > 2:
                log.ingest_spans(msg[2])
        elif tag == "error":
            raise WorkerCrashError(
                f"parallel worker {msg[1]} failed:\n{msg[2]}"
            )
        elif tag == payload_tag:
            wid, unit = msg[1], int(msg[2])
            if handle(msg):
                completed.add(unit)
                if claims.get(wid, (None,))[0] == unit:
                    claims.pop(wid, None)
            else:
                log.bump("ft_corrupt_payloads")
                p = procs.get(wid)
                if p is not None:
                    _kill_worker(p)
                fail(
                    wid,
                    f"sent corrupt payload for {payload_tag} {unit}",
                )
        # other phases' stray done tags are ignored

    def drain_conn(wid: int) -> None:
        """Process whatever a (possibly dead) worker managed to send."""
        conn = conns.get(wid)
        if conn is None:
            return
        try:
            while conn.poll(0):
                process(conn.recv())
        except (EOFError, OSError):
            _close_conn(conns.pop(wid, None))

    while pending:
        if deadline is not None and time.monotonic() > deadline:
            missing = sorted(expected - completed)
            for wid in sorted(pending):
                _kill_worker(procs[wid])
            raise ParallelError(
                f"parallel pool timed out after {timeout:.1f}s with "
                f"workers {sorted(pending)} still running and "
                f"{payload_tag}s {missing} pending"
            )
        watch = {
            conns[wid]: wid for wid in pending if wid in conns
        }
        got_message = False
        if watch:
            for conn in mp_connection.wait(
                list(watch), timeout=_POLL_SECONDS
            ):
                wid = watch[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # Worker end gone; the exit-code check below turns
                    # this into a failure if it never reported done.
                    _close_conn(conns.pop(wid, None))
                    continue
                got_message = True
                process(msg)
        if got_message:
            continue
        now = time.monotonic()
        if unit_timeout is not None:
            for wid in list(pending):
                claim = claims.get(wid)
                if claim is not None and now - claim[1] > unit_timeout:
                    _kill_worker(procs[wid])
                    fail(
                        wid,
                        f"hung >{unit_timeout:.1f}s on "
                        f"{payload_tag} {claim[0]}",
                    )
                    log.bump("ft_hung_workers")
        dead = [
            wid for wid in pending if procs[wid].exitcode is not None
        ]
        for wid in dead:
            # The worker exited; drain anything still buffered in its
            # pipe (its done message may be in flight) before declaring
            # it lost.
            drain_conn(wid)
            if wid in pending and procs[wid].exitcode is not None:
                fail(
                    wid,
                    f"died (exit code {procs[wid].exitcode})",
                )
    return failures


def _recover_units(
    *,
    units: Sequence[Tuple[int, int, int]],
    completed: Set[int],
    handle: Callable[[tuple], bool],
    payload_tag: str,
    round0_procs: Dict[int, mp.process.BaseProcess],
    round0_conns: Dict[int, mp_connection.Connection],
    round0_done_tag: str,
    spawn_worker: Callable[
        [int, Sequence[Tuple[int, int, int]], object],
        Tuple[mp.process.BaseProcess, mp_connection.Connection],
    ],
    serial_unit: Callable[[int, int, int], None],
    policy: RecoveryPolicy,
    ctx,
    log: RecoveryLog,
    next_wid: Optional[int] = None,
) -> int:
    """Drive one phase to completion: drain, reassign, respawn, degrade.

    Round 0 drains *round0_procs* (already running, one pipe each in
    *round0_conns*). While units are missing and retries remain, a
    round of replacement workers (fresh ids starting at *next_wid*,
    exponential backoff) recomputes exactly the missing units over
    their original boundaries. Replacement ids never reuse any prior
    worker id — that is what makes pinned-worker fault specs one-shot
    across respawns. Exhausted retries either degrade to *serial_unit*
    in the parent (``on_failure="serial"``) or raise
    :class:`~repro.errors.PoolDegradedError`. Returns the next unused
    worker id, for callers running several phases.
    """
    deadline = (
        None
        if policy.timeout is None
        else time.monotonic() + policy.timeout
    )
    expected = {u[0] for u in units}
    failures: Dict[int, str] = {}
    failures.update(
        _drain_phase(
            round0_procs,
            round0_conns,
            set(round0_procs),
            expected,
            completed,
            handle,
            payload_tag,
            round0_done_tag,
            log,
            deadline=deadline,
            timeout=policy.timeout,
            unit_timeout=policy.unit_timeout,
        )
    )
    if next_wid is None:
        next_wid = max(round0_procs, default=-1) + 1
    spawned: Dict[int, mp.process.BaseProcess] = {}
    spawned_conns: List[mp_connection.Connection] = []
    try:
        rounds = 0
        while expected - completed and rounds < policy.max_retries:
            rounds += 1
            log.bump("ft_recovery_rounds")
            log.note_event(
                "respawn_round",
                round=rounds,
                missing=len(expected - completed),
            )
            time.sleep(policy.backoff(rounds))
            subset = select_units(units, expected - completed)
            log.bump("ft_reassigned_units", len(subset))
            counter = ctx.Value("q", 0)
            n_workers = max(
                1, min(len(round0_procs) or 1, len(subset))
            )
            procs: Dict[int, mp.process.BaseProcess] = {}
            conns: Dict[int, mp_connection.Connection] = {}
            for _ in range(n_workers):
                wid = next_wid
                next_wid += 1
                p, conn = spawn_worker(wid, subset, counter)
                procs[wid] = p
                spawned[wid] = p
                conns[wid] = conn
                spawned_conns.append(conn)
            log.bump("ft_respawned_workers", n_workers)
            failures.update(
                _drain_phase(
                    procs,
                    conns,
                    set(procs),
                    expected,
                    completed,
                    handle,
                    payload_tag,
                    "done",
                    log,
                    deadline=deadline,
                    timeout=policy.timeout,
                    unit_timeout=policy.unit_timeout,
                )
            )
            for p in procs.values():
                p.join(timeout=5.0)
    finally:
        for p in spawned.values():
            _kill_worker(p)
        for conn in spawned_conns:
            _close_conn(conn)
    log.failures.extend(
        f"worker {wid}: {reason}"
        for wid, reason in sorted(failures.items())
    )
    missing = expected - completed
    if not missing:
        return next_wid
    why = "; ".join(
        f"worker {wid}: {reason}"
        for wid, reason in sorted(failures.items())
    )
    if policy.on_failure == "serial":
        log.degraded = True
        log.bump("ft_degraded_serial")
        log.note_event(
            "serial_fallback", units=len(missing), tag=payload_tag
        )
        for unit, lo, hi in select_units(units, missing):
            serial_unit(unit, lo, hi)
            completed.add(unit)
        return next_wid
    raise PoolDegradedError(
        f"{payload_tag}s {sorted(missing)} still unfinished after "
        f"{policy.max_retries} retry round(s); worker failures: "
        f"{why or 'none recorded'}"
    )


def _make_chunk_handler(
    results: Dict[int, WorkerChunk], log: RecoveryLog
) -> Callable[[tuple], bool]:
    """Digest-checking, first-accepted-wins handler for chunk messages."""

    def handle(msg) -> bool:
        _, wid, unit, fr, counters, probes, secs, digest, spans = msg
        unit = int(unit)
        if unit in results:
            return True  # duplicate of an accepted chunk: ignore
        if not isinstance(fr, FusedRange):
            # Out-of-core mode: a FusedRunRef pointing at a per-worker
            # spill file. Map it; a truncated/unsealed file (worker
            # killed mid-write) counts as a corrupt payload and goes
            # through the same recovery as a digest mismatch.
            from repro.ooc.runfile import load_fused_ref

            try:
                fr = load_fused_ref(fr)
            except Exception:
                return False
        if payload_digest(fr.out_fgrp, fr.out_fy, fr.out_vals) != digest:
            return False
        results[unit] = WorkerChunk(
            worker=int(wid),
            chunk=unit,
            fused=fr,
            counters=counters,
            hash_probes=int(probes),
            seconds=float(secs),
        )
        log.ingest_spans(spans)
        return True

    return handle


class SpartaProcessPool:
    """Persistent two-phase worker pool for the all-parallel pipeline.

    Construction exports Y's COO arrays to shared memory and starts the
    workers, which immediately begin claiming stage-1 spans — so the
    parent overlaps its own X preparation with the partial builds. The
    parent then calls :meth:`drain_partials` (collect and merge inputs
    for HtY), :meth:`run_chunks` (broadcast the exported operands, run
    stages 2–4, gather in chunk order) and :meth:`close` (always, in a
    ``finally``). One pool start-up cost covers all five stages.

    *policy* governs failure recovery in both phases (see
    :class:`RecoveryPolicy`); *fault_plan* injects deterministic faults
    into the workers (see :mod:`repro.faults`); *recovery_log*
    accumulates the observability counters the executor folds into the
    run profile.
    """

    def __init__(
        self,
        y_indices: np.ndarray,
        y_values: np.ndarray,
        contract_modes: Sequence[int],
        free_modes: Sequence[int],
        contract_dims: Sequence[int],
        free_dims: Sequence[int],
        spans: Sequence[Tuple[int, int]],
        *,
        workers: int,
        start_method: Optional[str] = None,
        policy: Optional[RecoveryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        recovery_log: Optional[RecoveryLog] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        self.workers = int(workers)
        self.policy = policy or RecoveryPolicy()
        self.fault_plan = fault_plan
        #: out-of-core: chunk-phase workers spill their fused outputs
        #: here and ship FusedRunRefs instead of arrays
        self.spill_dir = spill_dir
        self.log = recovery_log or RecoveryLog()
        #: workers record + ship their own spans iff the attached log
        #: carries a tracer (the executor sets log.tracer)
        self._trace = getattr(self.log, "tracer", None) is not None
        self._blocks: List[shared_memory.SharedMemory] = []
        self._procs: Dict[int, mp.process.BaseProcess] = {}
        self._conns: Dict[int, mp_connection.Connection] = {}
        self._span_units = tag_units(spans)
        self._next_wid = self.workers
        # Kept for the serial stage-1 fallback (degraded mode rebuilds
        # missing spans in the parent from the original arrays).
        self._y_indices = y_indices
        self._y_values = y_values
        self._method = resolve_start_method(start_method)
        self._ctx = ctx = mp.get_context(self._method)
        try:
            self._yspec = yspec = export_y(
                y_indices,
                y_values,
                contract_modes,
                free_modes,
                contract_dims,
                free_dims,
                self._blocks,
            )
            # Both counters must stay referenced for the pool's lifetime:
            # spawn/forkserver children unpickle their args *after*
            # __init__ returns, and a collected Value unlinks its
            # semaphore out from under them.
            self._counter_a = ctx.Value("q", 0)
            self._counter_b = ctx.Value("q", 0)
            for wid in range(self.workers):
                p, conn = _start_piped_worker(
                    ctx,
                    self._method,
                    _pool_worker_main,
                    (
                        wid,
                        yspec,
                        self._span_units,
                        self._counter_a,
                        self._counter_b,
                    ),
                    self.fault_plan,
                    self._trace,
                    extra=(self.spill_dir,),
                )
                self._procs[wid] = p
                self._conns[wid] = conn
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _alive(self) -> Dict[int, mp.process.BaseProcess]:
        return {
            wid: p
            for wid, p in self._procs.items()
            if p.exitcode is None
        }

    # ------------------------------------------------------------------
    def drain_partials(
        self, *, timeout: Optional[float] = None
    ) -> Tuple[List[PartialGroups], Dict[int, float]]:
        """Collect every span's partial grouping, in span order.

        Returns ``(partials, seconds)`` where ``seconds[wid]`` is the
        stage-1 compute time worker *wid* spent across its claimed
        spans. Spans owned by failed workers are reassigned (respawned
        stage-1 workers, then — policy permitting — a serial rebuild in
        the parent); the merged HtY is bit-identical either way because
        partials are pure functions of their span bounds.
        """
        policy = self.policy
        if timeout is not None:
            policy = _dc_replace(policy, timeout=timeout)
        partials: Dict[int, PartialGroups] = {}
        seconds: Dict[int, float] = {wid: 0.0 for wid in self._procs}

        def handle(msg) -> bool:
            _, wid, unit, pg, secs, digest, spans = msg
            unit = int(unit)
            if unit in partials:
                return True
            if (
                payload_digest(
                    pg.group_keys, pg.group_ptr, pg.free_ln, pg.values
                )
                != digest
            ):
                return False
            partials[unit] = pg
            seconds[wid] = seconds.get(wid, 0.0) + float(secs)
            self.log.ingest_spans(spans)
            return True

        yspec = self._yspec

        def spawn(wid, subset, counter):
            return _start_piped_worker(
                self._ctx,
                self._method,
                _span_worker_main,
                (wid, yspec, subset, counter),
                self.fault_plan,
                self._trace,
            )

        def serial(unit, lo, hi):
            partials[unit] = build_partial_groups(
                self._y_indices,
                self._y_values,
                yspec.contract_modes,
                yspec.free_modes,
                yspec.contract_dims,
                yspec.free_dims,
                lo,
                hi,
            )

        self._next_wid = _recover_units(
            units=self._span_units,
            completed=set(partials),
            handle=handle,
            payload_tag="partial",
            round0_procs=dict(self._procs),
            round0_conns=self._conns,
            round0_done_tag="phase_done",
            spawn_worker=spawn,
            serial_unit=serial,
            policy=policy,
            ctx=self._ctx,
            log=self.log,
            next_wid=self._next_wid,
        )
        return (
            [partials[i] for i in range(len(self._span_units))],
            seconds,
        )

    # ------------------------------------------------------------------
    def run_chunks(
        self,
        px: PreparedX,
        hty: HashTensor,
        chunks: Sequence[Tuple[int, int]],
        *,
        timeout: Optional[float] = None,
    ) -> List[WorkerChunk]:
        """Broadcast operands, run stages 2–4, gather in chunk order.

        Must be called exactly once, after :meth:`drain_partials`; the
        workers exit when their claim loop drains. An empty *chunks*
        still releases the workers (they exit without computing).
        Chunks owned by failed workers are recomputed by respawned
        workers (or serially in the parent once retries exhaust, policy
        permitting) over their original boundaries — the gather by
        chunk id keeps the output bit-identical regardless of who
        computed what.
        """
        policy = self.policy
        if timeout is not None:
            policy = _dc_replace(policy, timeout=timeout)
        units = tag_units(chunks)
        spec = (
            export_operands(px, hty, self._blocks) if units else None
        )
        alive = self._alive()
        for wid in list(alive):
            conn = self._conns.get(wid)
            if conn is None:
                del alive[wid]  # failed earlier; pipe already closed
                continue
            try:
                conn.send(("chunks", spec, units))
            except (BrokenPipeError, OSError):
                pass  # exited since the liveness check; drain handles it
        results: Dict[int, WorkerChunk] = {}
        handle = _make_chunk_handler(results, self.log)
        clock = time.perf_counter

        def spawn(wid, subset, counter):
            return _start_piped_worker(
                self._ctx,
                self._method,
                _chunk_worker_main,
                (wid, spec, subset, counter),
                self.fault_plan,
                self._trace,
                extra=(self.spill_dir,),
            )

        def serial(unit, lo, hi):
            t0 = clock()
            probes0 = hty.table.probes
            wprofile = RunProfile("sparta_parallel-serial-fallback")
            fr = fused_compute(
                px,
                hty,
                y_structure="hash",
                accumulator="hash",
                profile=wprofile,
                lo=lo,
                hi=hi,
                clock=clock,
            )
            results[unit] = WorkerChunk(
                worker=-1,
                chunk=unit,
                fused=fr,
                counters=dict(wprofile.counters),
                hash_probes=hty.table.probes - probes0,
                seconds=clock() - t0,
            )

        self._next_wid = _recover_units(
            units=units,
            completed=set(results),
            handle=handle,
            payload_tag="chunk",
            round0_procs=alive,
            round0_conns=self._conns,
            round0_done_tag="done",
            spawn_worker=spawn,
            serial_unit=serial,
            policy=policy,
            ctx=self._ctx,
            log=self.log,
            next_wid=self._next_wid,
        )
        for p in self._procs.values():
            p.join(timeout=10.0)
        return [results[i] for i in range(len(units))]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down workers, pipes and shared blocks (idempotent)."""
        for p in self._procs.values():
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for conn in self._conns.values():
            _close_conn(conn)
        self._conns = {}
        _release_blocks(self._blocks, unlink=True)
        self._blocks = []


def contract_chunks_in_processes(
    px: PreparedX,
    hty: HashTensor,
    chunks: Sequence[Tuple[int, int]],
    *,
    workers: int,
    start_method: Optional[str] = None,
    timeout: Optional[float] = None,
    policy: Optional[RecoveryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    recovery_log: Optional[RecoveryLog] = None,
    spill_dir: Optional[str] = None,
) -> List[WorkerChunk]:
    """Run :func:`fused_compute` over *chunks* on *workers* processes.

    Returns one :class:`WorkerChunk` per input chunk, **in chunk
    order** — the deterministic gather that keeps process-parallel
    output bit-identical to the serial fused engine. Worker failures
    go through the :class:`RecoveryPolicy` machinery (reassignment,
    bounded respawn, serial degradation); worker exceptions raise
    :class:`~repro.errors.WorkerCrashError` and an irrecoverable pool
    raises :class:`~repro.errors.PoolDegradedError` (both subclasses of
    :class:`~repro.errors.ParallelError`). The pool is torn down (never
    left hanging) and all shared blocks are closed and unlinked before
    returning or raising.
    """
    if not chunks:
        return []
    policy = policy or RecoveryPolicy()
    if timeout is not None:
        policy = _dc_replace(policy, timeout=timeout)
    log = recovery_log if recovery_log is not None else RecoveryLog()
    trace = getattr(log, "tracer", None) is not None
    method = resolve_start_method(start_method)
    ctx = mp.get_context(method)
    blocks: List[shared_memory.SharedMemory] = []
    procs: Dict[int, mp.process.BaseProcess] = {}
    all_conns: List[mp_connection.Connection] = []
    clock = time.perf_counter
    try:
        spec = export_operands(px, hty, blocks)
        counter = ctx.Value("q", 0)
        units = tag_units(chunks)
        conns: Dict[int, mp_connection.Connection] = {}
        for wid in range(workers):
            p, conn = _start_piped_worker(
                ctx,
                method,
                _chunk_worker_main,
                (wid, spec, units, counter),
                fault_plan,
                trace,
                extra=(spill_dir,),
            )
            procs[wid] = p
            conns[wid] = conn
            all_conns.append(conn)

        results: Dict[int, WorkerChunk] = {}
        handle = _make_chunk_handler(results, log)

        def spawn(wid, subset, sub_counter):
            p, conn = _start_piped_worker(
                ctx,
                method,
                _chunk_worker_main,
                (wid, spec, subset, sub_counter),
                fault_plan,
                trace,
                extra=(spill_dir,),
            )
            all_conns.append(conn)
            return p, conn

        def serial(unit, lo, hi):
            t0 = clock()
            probes0 = hty.table.probes
            wprofile = RunProfile("sparta_parallel-serial-fallback")
            fr = fused_compute(
                px,
                hty,
                y_structure="hash",
                accumulator="hash",
                profile=wprofile,
                lo=lo,
                hi=hi,
                clock=clock,
            )
            results[unit] = WorkerChunk(
                worker=-1,
                chunk=unit,
                fused=fr,
                counters=dict(wprofile.counters),
                hash_probes=hty.table.probes - probes0,
                seconds=clock() - t0,
            )

        _recover_units(
            units=units,
            completed=set(results),
            handle=handle,
            payload_tag="chunk",
            round0_procs=dict(procs),
            round0_conns=conns,
            round0_done_tag="done",
            spawn_worker=spawn,
            serial_unit=serial,
            policy=policy,
            ctx=ctx,
            log=log,
        )
        for p in procs.values():
            p.join(timeout=10.0)
        return [results[i] for i in range(len(units))]
    finally:
        for p in procs.values():
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for conn in all_conns:
            _close_conn(conn)
        _release_blocks(blocks, unlink=True)
