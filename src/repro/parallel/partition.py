"""Work partitioning for the parallel outer loop (paper §3.5).

Sparta parallelizes over mode-F sub-tensors of X; each thread owns a
contiguous range of sub-tensors plus thread-private HtA and Z_local. Real
tensors have skewed fiber sizes, so the partitioner balances by non-zero
count rather than by sub-tensor count.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.errors import ShapeError


def tag_units(
    ranges: Iterable[Tuple[int, int]]
) -> List[Tuple[int, int, int]]:
    """Attach stable unit ids to partition ranges: ``(unit, lo, hi)``.

    The unit id is the range's position in the original partition and
    is what the fault-tolerant pool tracks ownership by — reassignment
    and respawn rounds recompute *by unit id over the original
    boundaries*, so a recovered run gathers the exact same per-chunk
    results (and Table-2 accounting) as an undisturbed one.
    """
    return [
        (i, int(lo), int(hi)) for i, (lo, hi) in enumerate(ranges)
    ]


def select_units(
    units: Iterable[Tuple[int, int, int]], ids: Iterable[int]
) -> List[Tuple[int, int, int]]:
    """Subset of tagged *units* whose unit id is in *ids* (order kept)."""
    wanted = set(int(i) for i in ids)
    return [u for u in units if u[0] in wanted]


def partition_subtensors(
    ptr: np.ndarray,
    num_workers: int,
    *,
    weights: np.ndarray | None = None,
) -> List[Tuple[int, int]]:
    """Split sub-tensors ``0..len(ptr)-2`` into ≤ *num_workers* ranges.

    ``ptr`` is the fiber-pointer array: sub-tensor *f* holds
    ``ptr[f+1] - ptr[f]`` non-zeros. Ranges are contiguous (preserving the
    sorted-X locality) and balanced to ~equal non-zero counts. Returns
    ``(first_subtensor, last_subtensor_exclusive)`` pairs; fewer than
    *num_workers* ranges when there are fewer sub-tensors.

    *weights* replaces the per-sub-tensor cost model: when given (one
    non-negative weight per sub-tensor), ranges balance cumulative weight
    instead of cumulative nnz. ``weights=None`` is exactly the nnz
    behaviour.
    """
    if num_workers <= 0:
        raise ShapeError(f"num_workers must be positive, got {num_workers}")
    n_sub = int(ptr.shape[0] - 1)
    if n_sub <= 0:
        return []
    if weights is not None:
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != (n_sub,):
            raise ShapeError(
                f"weights must have one entry per sub-tensor "
                f"({n_sub}), got shape {weights.shape}"
            )
        ptr = np.concatenate(([0], np.cumsum(weights)))
    total = int(ptr[-1] - ptr[0])
    num_workers = min(num_workers, n_sub)
    if num_workers == 1 or total == 0:
        return [(0, n_sub)]
    # Cut at sub-tensor boundaries closest to equal cumulative-weight
    # shares (nnz shares by default).
    targets = (np.arange(1, num_workers) * total) // num_workers
    cuts = np.searchsorted(ptr[1:], ptr[0] + targets, side="left") + 1
    bounds = np.unique(np.concatenate(([0], cuts, [n_sub])))
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(bounds.shape[0] - 1)
        if bounds[i + 1] > bounds[i]
    ]


def partition_by_count(n_sub: int, num_chunks: int) -> List[Tuple[int, int]]:
    """Equal sub-tensor-*count* ranges — the naive baseline.

    Ignores fiber sizes entirely, so skewed tensors land most non-zeros
    in a few chunks; kept as the comparison point for the size-aware
    :func:`partition_subtensors` (``parallel_sparta(chunking="count")``).
    """
    if num_chunks <= 0:
        raise ShapeError(f"num_chunks must be positive, got {num_chunks}")
    n_sub = int(n_sub)
    if n_sub <= 0:
        return []
    num_chunks = min(num_chunks, n_sub)
    bounds = (np.arange(num_chunks + 1) * n_sub) // num_chunks
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(num_chunks)
        if bounds[i + 1] > bounds[i]
    ]


def partition_imbalance(
    ptr: np.ndarray, ranges: List[Tuple[int, int]]
) -> float:
    """Load imbalance of a partition: max worker nnz / mean worker nnz.

    1.0 is perfect balance; the scalability model uses this as the
    load-imbalance term for the computation stages.
    """
    if not ranges:
        return 1.0
    loads = [int(ptr[hi] - ptr[lo]) for lo, hi in ranges]
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean
