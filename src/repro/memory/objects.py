"""Table 2 — expected access patterns of the six data objects per stage.

Both a reference (the characterization report prints it) and an oracle:
tests verify that the traffic the engines actually emit matches these
signatures.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.core.profile import AccessKind, AccessPattern, DataObject
from repro.core.stages import Stage

#: (object, stage) -> (pattern, allowed access kinds). Entries absent from
#: this map mean the object is not touched in that stage (the "-" cells).
TABLE2: Dict[
    Tuple[DataObject, Stage],
    Tuple[AccessPattern, FrozenSet[AccessKind]],
] = {
    # Input processing: X is permuted/sorted in place (random RW); Y is
    # streamed once (seq RO); HtY is built with random insertions.
    (DataObject.X, Stage.INPUT_PROCESSING): (
        AccessPattern.RANDOM,
        frozenset({AccessKind.READ, AccessKind.WRITE}),
    ),
    (DataObject.Y, Stage.INPUT_PROCESSING): (
        AccessPattern.SEQUENTIAL,
        frozenset({AccessKind.READ}),
    ),
    (DataObject.HTY, Stage.INPUT_PROCESSING): (
        AccessPattern.RANDOM,
        frozenset({AccessKind.READ, AccessKind.WRITE}),
    ),
    # Index search: X streamed in sorted order; HtY probed randomly.
    (DataObject.X, Stage.INDEX_SEARCH): (
        AccessPattern.SEQUENTIAL,
        frozenset({AccessKind.READ}),
    ),
    (DataObject.HTY, Stage.INDEX_SEARCH): (
        AccessPattern.RANDOM,
        frozenset({AccessKind.READ}),
    ),
    # Accumulation: HtA random read-modify-write; Z_local appended.
    (DataObject.HTA, Stage.ACCUMULATION): (
        AccessPattern.RANDOM,
        frozenset({AccessKind.READ, AccessKind.WRITE}),
    ),
    (DataObject.Z_LOCAL, Stage.ACCUMULATION): (
        AccessPattern.SEQUENTIAL,
        frozenset({AccessKind.WRITE}),
    ),
    # Writeback: Z_local streamed out, Z streamed in.
    (DataObject.Z_LOCAL, Stage.WRITEBACK): (
        AccessPattern.SEQUENTIAL,
        frozenset({AccessKind.READ}),
    ),
    (DataObject.Z, Stage.WRITEBACK): (
        AccessPattern.SEQUENTIAL,
        frozenset({AccessKind.WRITE}),
    ),
    # Output sorting: Z sorted in place.
    (DataObject.Z, Stage.OUTPUT_SORTING): (
        AccessPattern.RANDOM,
        frozenset({AccessKind.READ, AccessKind.WRITE}),
    ),
}

#: Sparta's DRAM priority order (§4.2): "HtY > HtA > Z_local > Z".
PLACEMENT_PRIORITY = (
    DataObject.HTY,
    DataObject.HTA,
    DataObject.Z_LOCAL,
    DataObject.Z,
)

#: objects pinned to PMM by observation 3 (placement-insensitive)
ALWAYS_PMM = (DataObject.X, DataObject.Y)
