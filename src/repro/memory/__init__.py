"""Heterogeneous memory substrate: devices, placement, simulation."""

from repro.memory.devices import (
    GB,
    HeterogeneousMemory,
    MemoryDevice,
    dram,
    pmm,
)
from repro.memory.estimate import (
    SizeEstimates,
    estimate_from_tensors,
    hta_size_upper,
    hty_size,
    z_size,
    zlocal_size,
)
from repro.memory.objects import ALWAYS_PMM, PLACEMENT_PRIORITY, TABLE2
from repro.memory.placement import (
    DRAM,
    PMM,
    Placement,
    all_dram_placement,
    all_pmm_placement,
    single_object_pmm,
    sparta_placement,
)
from repro.memory.policies import (
    DEFAULT_IAL_LAG,
    characterized_priority,
    dram_only_placement,
    ial_schedule,
    optane_only_placement,
    sparta_policy,
    sparta_policy_characterized,
)
from repro.memory.simulator import (
    HMSimulator,
    Migration,
    PlacementSchedule,
    SimulatedRun,
    SimulatedStage,
)
from repro.memory.trace import (
    object_traffic_bytes,
    observed_signatures,
    stage_traffic_bytes,
    verify_table2,
)

__all__ = [
    "ALWAYS_PMM",
    "DRAM",
    "GB",
    "HMSimulator",
    "HeterogeneousMemory",
    "MemoryDevice",
    "Migration",
    "PLACEMENT_PRIORITY",
    "PMM",
    "Placement",
    "PlacementSchedule",
    "SimulatedRun",
    "SimulatedStage",
    "SizeEstimates",
    "TABLE2",
    "DEFAULT_IAL_LAG",
    "all_dram_placement",
    "all_pmm_placement",
    "dram",
    "characterized_priority",
    "dram_only_placement",
    "estimate_from_tensors",
    "hta_size_upper",
    "hty_size",
    "ial_schedule",
    "object_traffic_bytes",
    "observed_signatures",
    "optane_only_placement",
    "pmm",
    "single_object_pmm",
    "sparta_placement",
    "sparta_policy",
    "sparta_policy_characterized",
    "stage_traffic_bytes",
    "verify_table2",
    "z_size",
    "zlocal_size",
]
