"""Data-placement policies: Sparta static, IAL, Memory mode, references."""

from repro.memory.policies.bandwidth_aware import bandwidth_aware_placement
from repro.memory.policies.ial import DEFAULT_IAL_LAG, ial_schedule
from repro.memory.policies.static import (
    characterized_priority,
    dram_only_placement,
    optane_only_placement,
    sparta_policy,
    sparta_policy_characterized,
)

__all__ = [
    "DEFAULT_IAL_LAG",
    "bandwidth_aware_placement",
    "characterized_priority",
    "dram_only_placement",
    "ial_schedule",
    "optane_only_placement",
    "sparta_policy",
    "sparta_policy_characterized",
]
