"""Static policies: Sparta's priority placement and the two references."""

from __future__ import annotations

from typing import Optional

from repro.core.profile import DataObject, RunProfile
from repro.memory.placement import (
    Placement,
    all_dram_placement,
    all_pmm_placement,
    sparta_placement,
)


def sparta_policy(
    profile: RunProfile,
    dram_capacity: int,
    *,
    threads: int = 1,
    estimates: Optional[dict] = None,
) -> Placement:
    """Sparta's static placement for a run (§4.2).

    Uses the §4.2 size estimates when provided; otherwise falls back to
    the run's measured peak object sizes (a *tighter* bound than Eq. 6 —
    fine for simulation, since the estimators are validated separately to
    upper-bound these measurements).
    """
    sizes = estimates or {
        obj: profile.object_bytes.get(obj, 0)
        for obj in (
            DataObject.HTY,
            DataObject.HTA,
            DataObject.Z_LOCAL,
            DataObject.Z,
        )
    }
    return sparta_placement(sizes, dram_capacity, threads=threads)


def characterized_priority(profile: RunProfile, simulator) -> tuple:
    """Rank the four placeable objects by measured placement sensitivity.

    This is how §4.2 derives its priority: run the Figure-3
    characterization (each object alone in PMM) and order objects by the
    slowdown each causes. 11 of the paper's 15 datasets give
    HtY > HtA > Z_local > Z; the others differ — "for those uncommon
    cases, we can use the same method", which is what this function is.
    """
    from repro.memory.placement import single_object_pmm

    candidates = (
        DataObject.HTY,
        DataObject.HTA,
        DataObject.Z_LOCAL,
        DataObject.Z,
    )
    costs = {}
    for obj in candidates:
        run = simulator.simulate(profile, single_object_pmm(obj))
        costs[obj] = run.total_seconds
    return tuple(
        sorted(candidates, key=lambda o: costs[o], reverse=True)
    )


def sparta_policy_characterized(
    profile: RunProfile,
    simulator,
    dram_capacity: int,
    *,
    threads: int = 1,
) -> Placement:
    """Sparta's placement with the priority measured from this run."""
    priority = characterized_priority(profile, simulator)
    sizes = {
        obj: profile.object_bytes.get(obj, 0)
        for obj in (
            DataObject.HTY,
            DataObject.HTA,
            DataObject.Z_LOCAL,
            DataObject.Z,
        )
    }
    return sparta_placement(
        sizes, dram_capacity, threads=threads, priority=priority
    )


def dram_only_placement() -> Placement:
    """Everything in DRAM (upper reference of Figure 7)."""
    return all_dram_placement()


def optane_only_placement() -> Placement:
    """Everything in PMM (the Figure-7 baseline, AppDirect to Optane)."""
    return all_pmm_placement()
