"""IAL-style reactive page-hotness management (the paper's software
comparator, "Improved Active List", Yan et al. ASPLOS'19 lineage).

IAL tracks page hotness and migrates hot data to DRAM *reactively*. We
model it at object granularity with the pipeline stages as tracking
epochs:

* everything starts in PMM (data is allocated there; DRAM fills on
  observed hotness);
* within each epoch, objects are ranked purely by traffic volume — all a
  pattern-agnostic runtime sees — and the hottest are migrated into DRAM
  until capacity, evicting colder residents; the migrations complete only
  part-way through the epoch (the simulator's ``lag_fraction``);
* every migration pays sequential read + write traffic.

Its two failure modes versus Sparta emerge naturally: (1) hotness lags,
so single-stage bursts (HtY in index search) get DRAM only for the tail
of the stage while paying full movement cost; (2) placement-insensitive
objects (X, Y) look hot by volume and get migrated pointlessly, evicting
useful residents and consuming PMM bandwidth (the paper's Figure 8
observation).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.profile import DataObject, RunProfile
from repro.core.stages import STAGE_ORDER
from repro.errors import PlacementError
from repro.memory.placement import DRAM, PMM
from repro.memory.simulator import Migration, PlacementSchedule
from repro.memory.trace import stage_traffic_bytes


def ial_schedule(
    profile: RunProfile,
    dram_capacity: int,
    *,
    hot_threshold_bytes: int = 1,
) -> PlacementSchedule:
    """Build IAL's per-stage placement schedule for a measured run."""
    if dram_capacity < 0:
        raise PlacementError("dram_capacity must be non-negative")
    sizes: Dict[DataObject, int] = {
        obj: profile.object_bytes.get(obj, 0) for obj in DataObject
    }
    location: Dict[DataObject, str] = {obj: PMM for obj in DataObject}
    per_stage: Dict = {}
    migrations: List[Migration] = []

    for stage in STAGE_ORDER:
        # IAL converges on the stage's hot set part-way through the
        # epoch; the simulator's lag_fraction models the catch-up delay.
        hotness = stage_traffic_bytes(profile, stage)
        ranked = sorted(
            (
                (obj, heat)
                for obj, heat in hotness.items()
                if heat >= hot_threshold_bytes and sizes.get(obj, 0) > 0
            ),
            key=lambda kv: kv[1],
            reverse=True,
        )
        want_dram: List[DataObject] = []
        budget = dram_capacity
        for obj, _ in ranked:
            if sizes[obj] <= budget:
                want_dram.append(obj)
                budget -= sizes[obj]
        # Evict residents that are no longer wanted, then promote.
        for obj in DataObject:
            if location[obj] == DRAM and obj not in want_dram:
                migrations.append(
                    Migration(stage, obj, sizes[obj], DRAM, PMM)
                )
                location[obj] = PMM
        for obj in want_dram:
            if location[obj] != DRAM:
                migrations.append(
                    Migration(stage, obj, sizes[obj], PMM, DRAM)
                )
                location[obj] = DRAM
        per_stage[stage] = dict(location)
    return PlacementSchedule("ial", per_stage, migrations, strict=True)


#: fraction of a stage IAL spends before its migrations take effect
DEFAULT_IAL_LAG = 0.5
