"""Bandwidth-aware static placement (Yu et al., ICS'17 lineage).

A third comparator for the placement study: rank objects by *traffic
density* (bytes moved per byte of footprint) and pack the densest into
DRAM. Unlike Sparta's policy it is pattern-agnostic — it sees volumes,
not read/write direction or sequential/random structure — so it can
prefer a high-volume sequential-read object (cheap on PMM) over a
lower-volume random-write one (expensive on PMM). The ablation
``benchmarks/bench_ablation_policies.py`` quantifies that gap.
"""

from __future__ import annotations

from typing import Dict

from repro.core.profile import DataObject, RunProfile
from repro.errors import PlacementError
from repro.memory.placement import DRAM, PMM, Placement
from repro.memory.trace import object_traffic_bytes


def bandwidth_aware_placement(
    profile: RunProfile, dram_capacity: int
) -> Placement:
    """Pack objects into DRAM by descending traffic density."""
    if dram_capacity < 0:
        raise PlacementError("dram_capacity must be non-negative")
    traffic = object_traffic_bytes(profile)
    sizes: Dict[DataObject, int] = {
        obj: profile.object_bytes.get(obj, 0) for obj in DataObject
    }
    density = {
        obj: traffic.get(obj, 0) / sizes[obj]
        for obj in DataObject
        if sizes.get(obj, 0) > 0
    }
    mapping: Dict[DataObject, str] = {obj: PMM for obj in DataObject}
    remaining = int(dram_capacity)
    for obj in sorted(density, key=lambda o: density[o], reverse=True):
        if sizes[obj] <= remaining:
            mapping[obj] = DRAM
            remaining -= sizes[obj]
    return Placement("bandwidth_aware", mapping)
