"""Memory device models: DRAM and Intel Optane DC PMM.

All constants are the paper's own measurements (§2.3):

====================== ======= =======
quantity                 DRAM    PMM
====================== ======= =======
seq read latency (ns)      79     174
rand read latency (ns)     87     304
seq write latency (ns)     86     104
rand write latency (ns)    87     127
read bandwidth (GB/s)     104      39
write bandwidth (GB/s)     80      13
====================== ======= =======

Effective bandwidth for a (kind, pattern) signature scales the measured
bandwidth by the sequential/random latency ratio — random accesses on PMM
lose ~43% of read bandwidth, matching the paper's observation 2 that
"sequential and random accesses have large performance difference" on PMM
but not on DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.profile import AccessKind, AccessPattern
from repro.errors import ShapeError

GB = 1_000_000_000


@dataclass(frozen=True)
class MemoryDevice:
    """One memory tier with capacity and per-signature bandwidths."""

    name: str
    capacity_bytes: int
    #: bytes/second for each (kind, pattern) signature
    bandwidth: Dict[Tuple[AccessKind, AccessPattern], float]

    def effective_bandwidth(
        self, kind: AccessKind, pattern: AccessPattern
    ) -> float:
        """Bytes/second for one access signature."""
        return self.bandwidth[(kind, pattern)]

    def seconds_for(
        self, nbytes: int, kind: AccessKind, pattern: AccessPattern
    ) -> float:
        """Time to move *nbytes* with the given signature."""
        return nbytes / self.effective_bandwidth(kind, pattern)


def _bw_table(
    read_bw: float,
    write_bw: float,
    seq_read_ns: float,
    rand_read_ns: float,
    seq_write_ns: float,
    rand_write_ns: float,
) -> Dict[Tuple[AccessKind, AccessPattern], float]:
    return {
        (AccessKind.READ, AccessPattern.SEQUENTIAL): read_bw * GB,
        (AccessKind.READ, AccessPattern.RANDOM): read_bw
        * GB
        * (seq_read_ns / rand_read_ns),
        (AccessKind.WRITE, AccessPattern.SEQUENTIAL): write_bw * GB,
        (AccessKind.WRITE, AccessPattern.RANDOM): write_bw
        * GB
        * (seq_write_ns / rand_write_ns),
    }


def dram(capacity_bytes: int) -> MemoryDevice:
    """A DRAM tier with the paper's §2.3 characteristics."""
    if capacity_bytes <= 0:
        raise ShapeError("DRAM capacity must be positive")
    return MemoryDevice(
        name="DRAM",
        capacity_bytes=int(capacity_bytes),
        bandwidth=_bw_table(104, 80, 79, 87, 86, 87),
    )


def pmm(capacity_bytes: int) -> MemoryDevice:
    """An Optane PMM tier with the paper's §2.3 characteristics."""
    if capacity_bytes <= 0:
        raise ShapeError("PMM capacity must be positive")
    return MemoryDevice(
        name="PMM",
        capacity_bytes=int(capacity_bytes),
        bandwidth=_bw_table(39, 13, 174, 304, 104, 127),
    )


@dataclass(frozen=True)
class HeterogeneousMemory:
    """A DRAM + PMM pair (the paper's evaluation machine has 96 GB DRAM
    and 768 GB Optane on the socket).

    ``extras`` admits additional tiers (e.g. an HBM or CXL device built
    with :class:`MemoryDevice` directly); :meth:`device` resolves them
    by name so placements and migration schedules can reference any
    configured tier, not just the canonical pair.
    """

    dram: MemoryDevice
    pmm: MemoryDevice
    extras: Tuple[MemoryDevice, ...] = ()

    @classmethod
    def paper_machine(cls, scale: float = 1.0) -> "HeterogeneousMemory":
        """The paper's Optane server, optionally scaled down.

        ``scale`` shrinks capacities so scaled datasets still exercise
        capacity pressure (e.g. ``scale=1e-4`` gives ~10 MB DRAM).
        """
        if scale <= 0:
            raise ShapeError("scale must be positive")
        return cls(
            dram=dram(max(int(96 * GB * scale), 1)),
            pmm=pmm(max(int(768 * GB * scale), 1)),
        )

    def tiers(self) -> Tuple[MemoryDevice, ...]:
        """Every configured tier, fast pair first."""
        return (self.dram, self.pmm) + self.extras

    def device(self, name: str) -> MemoryDevice:
        """Look up a tier by name ("DRAM", "PMM", or an extra tier)."""
        for dev in self.tiers():
            if name == dev.name:
                return dev
        raise ShapeError(f"unknown device {name!r}")
