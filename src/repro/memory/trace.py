"""Traffic-trace utilities: aggregate and classify engine traffic.

The engines emit :class:`~repro.core.profile.TrafficRecord`s; this module
groups them per (object, stage) and checks them against Table 2's expected
access signatures — the characterization the placement policy is built on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
    TrafficRecord,
)
from repro.core.stages import Stage
from repro.memory.objects import TABLE2


def traffic_by_object_stage(
    records: Iterable[TrafficRecord],
) -> Dict[Tuple[DataObject, Stage], List[TrafficRecord]]:
    """Group records by (object, stage)."""
    out: Dict[Tuple[DataObject, Stage], List[TrafficRecord]] = defaultdict(
        list
    )
    for rec in records:
        out[(rec.obj, rec.stage)].append(rec)
    return dict(out)


def observed_signatures(
    profile: RunProfile,
) -> Dict[Tuple[DataObject, Stage], Tuple[AccessPattern, frozenset]]:
    """Observed (pattern, kinds) per (object, stage) from a run.

    When an object sees both patterns in a stage, the byte-dominant
    pattern is reported (Table 2 lists the dominant signature).
    """
    grouped = traffic_by_object_stage(profile.traffic)
    out = {}
    for key, recs in grouped.items():
        kinds = frozenset(r.kind for r in recs)
        by_pattern: Dict[AccessPattern, int] = defaultdict(int)
        for r in recs:
            by_pattern[r.pattern] += r.nbytes
        pattern = max(by_pattern.items(), key=lambda kv: kv[1])[0]
        out[key] = (pattern, kinds)
    return out


def verify_table2(profile: RunProfile) -> List[str]:
    """Check a run's traffic against Table 2; returns violation messages.

    A violation is an (object, stage) whose observed dominant pattern
    differs from Table 2, or whose access kinds are not a subset of the
    allowed kinds. Objects/stages with no recorded traffic are fine (an
    engine may legitimately skip work, e.g. no output sorting).
    """
    problems: List[str] = []
    for key, (pattern, kinds) in observed_signatures(profile).items():
        if key not in TABLE2:
            problems.append(
                f"{key[0].value} touched in stage {key[1].value}, "
                "which Table 2 marks as untouched"
            )
            continue
        want_pattern, want_kinds = TABLE2[key]
        if pattern != want_pattern:
            problems.append(
                f"{key[0].value}/{key[1].value}: dominant pattern "
                f"{pattern.value}, Table 2 says {want_pattern.value}"
            )
        if not kinds <= want_kinds:
            problems.append(
                f"{key[0].value}/{key[1].value}: kinds "
                f"{sorted(k.value for k in kinds)} not allowed by Table 2"
            )
    return problems


def stage_traffic_bytes(
    profile: RunProfile, stage: Stage
) -> Dict[DataObject, int]:
    """Total bytes moved per object within one stage."""
    out: Dict[DataObject, int] = defaultdict(int)
    for rec in profile.traffic:
        if rec.stage == stage:
            out[rec.obj] += rec.nbytes
    return dict(out)


def object_traffic_bytes(profile: RunProfile) -> Dict[DataObject, int]:
    """Total bytes moved per object across the whole run."""
    out: Dict[DataObject, int] = defaultdict(int)
    for rec in profile.traffic:
        out[rec.obj] += rec.nbytes
    return dict(out)
