"""Static data placement (paper §4.2).

A placement maps each of the six data objects to "DRAM" or "PMM". Sparta's
policy is *static* and *algorithm-aware*:

* X and Y always go to PMM (observation 3: their sequential-read patterns
  make placement irrelevant);
* the remaining objects are packed into DRAM by priority
  HtY > HtA > Z_local > Z (from the Figure-3 characterization), each
  placed in DRAM only if it fits after higher-priority objects;
* HtA and Z_local are per-thread: DRAM is evenly partitioned between
  threads for them, so their DRAM budget is ``threads x`` the per-thread
  estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterable, Mapping, Tuple

from repro.core.profile import DataObject
from repro.errors import PlacementError
from repro.memory.objects import ALWAYS_PMM, PLACEMENT_PRIORITY

DRAM = "DRAM"
PMM = "PMM"

#: the per-thread data objects (§4.2 partitions DRAM evenly for these)
PER_THREAD_OBJECTS = (DataObject.HTA, DataObject.Z_LOCAL)


@dataclass(frozen=True)
class Placement:
    """An immutable object -> device mapping with a policy label.

    The mapping is snapshotted behind a read-only proxy at construction
    — later mutation of the dict a caller passed in cannot leak into the
    placement, and in-place writes through ``.mapping`` raise. That
    makes instances genuinely immutable, so they are hashable and usable
    as cache keys (e.g. memoizing simulations per placement).
    """

    policy: str
    mapping: Mapping[DataObject, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mapping", MappingProxyType(dict(self.mapping))
        )

    def __hash__(self) -> int:
        return hash((self.policy, self._mapping_key()))

    def _mapping_key(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(
            sorted((obj.value, dev) for obj, dev in self.mapping.items())
        )

    def __reduce__(self):
        # MappingProxyType does not pickle; rebuild from a plain dict.
        return (Placement, (self.policy, dict(self.mapping)))

    def device_of(self, obj: DataObject) -> str:
        """Device holding *obj* (objects default to PMM when unmapped)."""
        return self.mapping.get(obj, PMM)

    def objects_on(self, device: str) -> Tuple[DataObject, ...]:
        """All objects mapped to *device*."""
        return tuple(
            o for o in DataObject if self.device_of(o) == device
        )


def all_dram_placement() -> Placement:
    """Every object in DRAM — the paper's "DRAM-only" reference."""
    return Placement("dram_only", {o: DRAM for o in DataObject})


def all_pmm_placement() -> Placement:
    """Every object in PMM — the paper's "Optane-only" baseline."""
    return Placement("optane_only", {o: PMM for o in DataObject})


def single_object_pmm(obj: DataObject) -> Placement:
    """All in DRAM except *obj* — the Figure-3 characterization probes."""
    mapping = {o: DRAM for o in DataObject}
    mapping[obj] = PMM
    return Placement(f"pmm_{obj.value}", mapping)


def sparta_placement(
    estimates: Mapping[DataObject, int],
    dram_capacity: int,
    *,
    threads: int = 1,
    priority: Iterable[DataObject] = PLACEMENT_PRIORITY,
) -> Placement:
    """Sparta's static priority placement (§4.2).

    *estimates* holds the per-object byte sizes (per-thread for HtA and
    Z_local, as Eqs. 5-6 produce them). An object goes to DRAM only when
    it fits in the space left by higher-priority objects; partial
    placement is not modeled (the paper places "as much as possible" —
    at this granularity an object is either resident or not).
    """
    if dram_capacity < 0:
        raise PlacementError("dram_capacity must be non-negative")
    if threads <= 0:
        raise PlacementError("threads must be positive")
    mapping: Dict[DataObject, str] = {o: PMM for o in ALWAYS_PMM}
    remaining = int(dram_capacity)
    for obj in priority:
        if obj in mapping:
            raise PlacementError(
                f"priority list contains pinned-to-PMM object {obj.value}"
            )
        try:
            size = int(estimates[obj])
        except KeyError:
            raise PlacementError(
                f"no size estimate for {obj.value}"
            ) from None
        if obj in PER_THREAD_OBJECTS:
            size *= threads
        if size <= remaining:
            mapping[obj] = DRAM
            remaining -= size
        else:
            mapping[obj] = PMM
    for obj in DataObject:
        mapping.setdefault(obj, PMM)
    return Placement("sparta", mapping)
