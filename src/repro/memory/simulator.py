"""Heterogeneous-memory execution simulator.

Converts a run's traffic records (measured from the real algorithm
execution) plus a data placement into execution time and per-device
bandwidth, using the paper's DRAM/PMM device characteristics.

Model: each stage costs its measured CPU seconds plus a *memory penalty*:

    penalty(record) = A x bytes x (1/BW_dev(sig) - 1/BW_DRAM(sig))

i.e. placing an object in DRAM is the baseline (the measured run) and PMM
placements add the bandwidth shortfall for that record's access signature
(read/write x sequential/random). ``A`` is a single amplification scalar
mapping this reproduction's scaled-down traffic onto the measured compute
time; it is auto-calibrated per run so an all-PMM placement spends a fixed
fraction of its time on memory stalls (defaults to the paper's observed
memory-boundedness). All *relative* effects — which object hurts most in
PMM, which policy wins, bandwidth-timeline shapes — come from the traffic
records, the Table-2 access signatures and the §2.3 device asymmetries,
never from the calibration scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
    TrafficRecord,
)
from repro.core.stages import STAGE_ORDER, Stage
from repro.errors import PlacementError
from repro.memory.devices import HeterogeneousMemory, MemoryDevice
from repro.memory.placement import DRAM, PMM, Placement

#: default fraction of an all-PMM run spent on memory stalls, used to
#: auto-calibrate the amplification scalar (the paper's Optane-only runs
#: are 17%-65% slower than Sparta's placement, implying this range)
DEFAULT_PMM_STALL_FRACTION = 0.35


@dataclass
class Migration:
    """One object move at a stage boundary (dynamic policies only)."""

    before_stage: Stage
    obj: DataObject
    nbytes: int
    src: str
    dst: str


@dataclass
class PlacementSchedule:
    """Per-stage placements plus the migrations that produced them.

    ``strict=True`` turns silent defaulting off: the schedule is
    validated at construction (every ``STAGE_ORDER`` stage present with
    every :class:`DataObject` mapped, migrations referencing known
    stages) and :meth:`device_of` raises :class:`PlacementError` on an
    unmapped lookup instead of quietly simulating the object in PMM —
    a typo'd stage key or a policy that forgot an object is a bug, not
    a pessimal placement. Policy generators (IAL, the migration engine)
    emit strict schedules; hand-built partial schedules keep the lax
    default for backward compatibility.
    """

    policy: str
    per_stage: Dict[Stage, Mapping[DataObject, str]]
    migrations: List[Migration] = field(default_factory=list)
    strict: bool = False

    def __post_init__(self) -> None:
        if self.strict:
            self.validate()

    def validate(self) -> None:
        """Raise :class:`PlacementError` on an incomplete schedule."""
        missing = [s.value for s in STAGE_ORDER if s not in self.per_stage]
        if missing:
            raise PlacementError(
                f"schedule {self.policy!r} is missing stages {missing}"
            )
        unknown = [
            str(s) for s in self.per_stage if s not in STAGE_ORDER
        ]
        if unknown:
            raise PlacementError(
                f"schedule {self.policy!r} maps unknown stages {unknown}"
            )
        for stage, mapping in self.per_stage.items():
            unmapped = [o.value for o in DataObject if o not in mapping]
            if unmapped:
                raise PlacementError(
                    f"schedule {self.policy!r} leaves {unmapped} "
                    f"unmapped at stage {stage.value}"
                )
        for mig in self.migrations:
            if mig.before_stage not in STAGE_ORDER:
                raise PlacementError(
                    f"schedule {self.policy!r} migrates "
                    f"{mig.obj.value} before unknown stage "
                    f"{mig.before_stage!r}"
                )
            if mig.nbytes < 0:
                raise PlacementError(
                    f"schedule {self.policy!r}: negative migration "
                    f"size for {mig.obj.value}"
                )

    def device_of(self, stage: Stage, obj: DataObject) -> str:
        try:
            return self.per_stage[stage][obj]
        except KeyError:
            if self.strict:
                raise PlacementError(
                    f"strict schedule {self.policy!r} has no placement "
                    f"for {obj.value} at stage {getattr(stage, 'value', stage)!r}"
                ) from None
            return PMM


@dataclass
class SimulatedStage:
    """Simulated cost of one pipeline stage."""

    stage: Stage
    cpu_seconds: float
    penalty_seconds: float
    migration_seconds: float
    #: amplified bytes moved per device in this stage (for Figure 8)
    device_bytes: Dict[str, float]

    @property
    def seconds(self) -> float:
        return self.cpu_seconds + self.penalty_seconds + self.migration_seconds


@dataclass
class SimulatedRun:
    """Simulated execution under one policy."""

    policy: str
    stages: List[SimulatedStage]
    amplification: float

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages)

    def stage_seconds(self) -> Dict[Stage, float]:
        return {s.stage: s.seconds for s in self.stages}

    def device_seconds(self) -> Dict[str, float]:
        """Per-device share of the simulated run time.

        Each stage's seconds are attributed to devices in proportion to
        the stage's amplified device bytes; a stage that moved no bytes
        (pure compute) is charged to DRAM. Feeds the
        ``hm.<policy>.device_seconds.<device>`` metrics in
        :class:`repro.obs.MetricsRegistry`.
        """
        out: Dict[str, float] = {DRAM: 0.0, PMM: 0.0}
        for st in self.stages:
            total_bytes = sum(st.device_bytes.values())
            if total_bytes <= 0.0:
                out[DRAM] = out.get(DRAM, 0.0) + st.seconds
                continue
            for dev, nbytes in st.device_bytes.items():
                out[dev] = out.get(dev, 0.0) + st.seconds * (
                    nbytes / total_bytes
                )
        return out

    def bandwidth_timeline(
        self, samples_per_stage: int = 8
    ) -> List[Tuple[float, float, float]]:
        """(time, DRAM GB/s, PMM GB/s) step series across the run.

        Within a stage, bandwidth is the stage's amplified device bytes
        over the stage duration (the paper's Figure 8 sampling).
        """
        out: List[Tuple[float, float, float]] = []
        t = 0.0
        for st in self.stages:
            dur = st.seconds
            if dur <= 0:
                continue
            dram_bw = st.device_bytes.get(DRAM, 0.0) / dur / 1e9
            pmm_bw = st.device_bytes.get(PMM, 0.0) / dur / 1e9
            for i in range(samples_per_stage):
                out.append((t + dur * i / samples_per_stage, dram_bw, pmm_bw))
            t += dur
        out.append((t, 0.0, 0.0))
        return out

    def timeline_csv(self, samples_per_stage: int = 8) -> str:
        """The Figure-8 timeline as CSV (seconds, DRAM GB/s, PMM GB/s)."""
        lines = ["seconds,dram_gbps,pmm_gbps"]
        for t, d, p in self.bandwidth_timeline(samples_per_stage):
            lines.append(f"{t:.9f},{d:.6f},{p:.6f}")
        return "\n".join(lines) + "\n"


class HMSimulator:
    """Simulate SpTC executions on a DRAM+PMM machine."""

    def __init__(
        self,
        hm: HeterogeneousMemory,
        *,
        amplification: Optional[float] = None,
        pmm_stall_fraction: float = DEFAULT_PMM_STALL_FRACTION,
    ) -> None:
        self.hm = hm
        self._fixed_amplification = amplification
        if not 0.0 < pmm_stall_fraction < 1.0:
            raise PlacementError(
                "pmm_stall_fraction must be in (0, 1), got "
                f"{pmm_stall_fraction}"
            )
        self.pmm_stall_fraction = pmm_stall_fraction

    # ------------------------------------------------------------------
    def _delta_per_byte(
        self, device: MemoryDevice, kind: AccessKind, pattern: AccessPattern
    ) -> float:
        """Seconds/byte a record pays beyond its all-DRAM cost."""
        base = 1.0 / self.hm.dram.effective_bandwidth(kind, pattern)
        actual = 1.0 / device.effective_bandwidth(kind, pattern)
        return max(actual - base, 0.0)

    def _raw_all_pmm_penalty(self, profile: RunProfile) -> float:
        total = 0.0
        for rec in profile.traffic:
            total += rec.nbytes * self._delta_per_byte(
                self.hm.pmm, rec.kind, rec.pattern
            )
        return total

    def amplification_for(self, profile: RunProfile) -> float:
        """The calibration scalar used for this profile's simulations."""
        if self._fixed_amplification is not None:
            return self._fixed_amplification
        raw = self._raw_all_pmm_penalty(profile)
        cpu = profile.total_seconds
        if raw <= 0.0 or cpu <= 0.0:
            return 1.0
        f = self.pmm_stall_fraction
        return (f / (1.0 - f)) * cpu / raw

    # ------------------------------------------------------------------
    def simulate(
        self, profile: RunProfile, placement: Placement
    ) -> SimulatedRun:
        """Simulate a static placement."""
        schedule = PlacementSchedule(
            policy=placement.policy,
            per_stage={
                stage: dict(placement.mapping) for stage in STAGE_ORDER
            },
        )
        return self.simulate_schedule(profile, schedule)

    def simulate_schedule(
        self,
        profile: RunProfile,
        schedule: PlacementSchedule,
        *,
        lag_fraction: float = 0.0,
        overlap: bool = False,
    ) -> SimulatedRun:
        """Simulate per-stage placements with migration costs.

        ``lag_fraction`` models reactive policies (IAL): that fraction of
        each stage's accesses still sees the *previous* stage's placement,
        because hotness tracking and migration complete only part-way
        through the epoch. Static schedules use 0.

        ``overlap=True`` models asynchronous migration: each device
        streams its share of the stage's migration traffic concurrently
        with the others, so the stage pays ``max`` over per-device
        migration seconds (the ``max(T_fast, T_slow)`` timing of
        overlap-capable engines) instead of the purely additive sum a
        stop-the-world copier would pay.

        Device names in placements and migrations are normalized through
        :meth:`HeterogeneousMemory.device`, and per-device byte totals
        are accumulated under the canonical tier names — extra tiers
        beyond the pre-seeded DRAM/PMM pair account correctly instead of
        raising ``KeyError``.
        """
        if not 0.0 <= lag_fraction <= 1.0:
            raise PlacementError(
                f"lag_fraction must be in [0, 1], got {lag_fraction}"
            )
        amp = self.amplification_for(profile)
        migrations_by_stage: Dict[Stage, List[Migration]] = {}
        for mig in schedule.migrations:
            migrations_by_stage.setdefault(mig.before_stage, []).append(mig)

        stages: List[SimulatedStage] = []
        prev_stage: Optional[Stage] = None
        for stage in STAGE_ORDER:
            cpu = profile.stage_seconds.get(stage, 0.0)
            penalty = 0.0
            device_bytes: Dict[str, float] = {DRAM: 0.0, PMM: 0.0}
            for rec in profile.traffic:
                if rec.stage != stage:
                    continue
                splits = [(1.0 - lag_fraction, stage)]
                if lag_fraction > 0.0:
                    splits.append(
                        (lag_fraction, prev_stage if prev_stage else stage)
                    )
                for weight, placed_stage in splits:
                    if weight <= 0.0:
                        continue
                    device = self.hm.device(
                        schedule.device_of(placed_stage, rec.obj)
                    )
                    nbytes = amp * rec.nbytes * weight
                    device_bytes[device.name] = (
                        device_bytes.get(device.name, 0.0) + nbytes
                    )
                    if device.name != DRAM:
                        penalty += nbytes * self._delta_per_byte(
                            device, rec.kind, rec.pattern
                        )
            mig_busy: Dict[str, float] = {}
            for mig in migrations_by_stage.get(stage, []):
                src = self.hm.device(mig.src)
                dst = self.hm.device(mig.dst)
                nbytes = amp * mig.nbytes
                mig_busy[src.name] = mig_busy.get(
                    src.name, 0.0
                ) + nbytes / src.effective_bandwidth(
                    AccessKind.READ, AccessPattern.SEQUENTIAL
                )
                mig_busy[dst.name] = mig_busy.get(
                    dst.name, 0.0
                ) + nbytes / dst.effective_bandwidth(
                    AccessKind.WRITE, AccessPattern.SEQUENTIAL
                )
                device_bytes[src.name] = (
                    device_bytes.get(src.name, 0.0) + nbytes
                )
                device_bytes[dst.name] = (
                    device_bytes.get(dst.name, 0.0) + nbytes
                )
            if overlap:
                mig_seconds = max(mig_busy.values(), default=0.0)
            else:
                mig_seconds = sum(mig_busy.values())
            if cpu > 0 or penalty > 0 or mig_seconds > 0:
                stages.append(
                    SimulatedStage(
                        stage, cpu, penalty, mig_seconds, device_bytes
                    )
                )
            prev_stage = stage
        return SimulatedRun(schedule.policy, stages, amp)

    # ------------------------------------------------------------------
    def simulate_memory_mode(
        self,
        profile: RunProfile,
        *,
        random_conflict_factor: float = 0.8,
    ) -> SimulatedRun:
        """Simulate PMM "Memory mode" (DRAM as a direct-mapped HW cache).

        The direct-mapped cache is shared by *all* objects: its hit rate
        is the fraction of the run's whole working set the DRAM covers
        (direct mapping means objects conflict across stages), degraded
        further for random accesses by conflict misses. Misses pay the
        PMM shortfall plus a cache-fill write into DRAM — which is why
        Memory mode's *DRAM* bandwidth exceeds Sparta's (Figure 8) while
        its performance trails: fills are traffic the application never
        asked for.
        """
        amp = self.amplification_for(profile)
        dram_cap = self.hm.dram.capacity_bytes
        fill_cost = 1.0 / self.hm.dram.effective_bandwidth(
            AccessKind.WRITE, AccessPattern.SEQUENTIAL
        )
        working_set = sum(profile.object_bytes.values())
        base_hit = (
            min(1.0, dram_cap / working_set) if working_set > 0 else 1.0
        )
        stages: List[SimulatedStage] = []
        for stage in STAGE_ORDER:
            cpu = profile.stage_seconds.get(stage, 0.0)
            recs = [r for r in profile.traffic if r.stage == stage]
            penalty = 0.0
            device_bytes: Dict[str, float] = {DRAM: 0.0, PMM: 0.0}
            for rec in recs:
                hit = base_hit
                if rec.pattern is AccessPattern.RANDOM:
                    hit *= random_conflict_factor
                nbytes = amp * rec.nbytes
                miss_bytes = nbytes * (1.0 - hit)
                device_bytes[DRAM] += nbytes * hit + miss_bytes  # fills
                device_bytes[PMM] += miss_bytes
                penalty += miss_bytes * self._delta_per_byte(
                    self.hm.pmm, rec.kind, rec.pattern
                )
                penalty += miss_bytes * fill_cost
            if cpu > 0 or penalty > 0:
                stages.append(
                    SimulatedStage(stage, cpu, penalty, 0.0, device_bytes)
                )
        return SimulatedRun("memory_mode", stages, amp)
