"""Data-object size estimators (paper §4.2, Eqs. 5-6).

The static placement policy must know object sizes *before* allocation:

* HtY — exact, Eq. 5: bucket pointers plus one (indices, value, chain
  pointer) record per Y non-zero;
* HtA — upper bound, Eq. 6: nnz^X_Fmax x nnz^Y_Fmax entries, the largest
  X sub-tensor times the largest Y sub-tensor;
* Z_local — HtA's size plus the X free indices replicated per entry;
* Z — the sum of all Z_local sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

#: sizes (bytes) of the quantities in Eqs. 5-6
SIZE_ENTRY_POINTER = 8  # Size_ep
SIZE_INDEX = 8  # Size_idx
SIZE_VALUE = 8  # Size_val


def hty_size(nnz_y: int, order_y: int, num_buckets: int) -> int:
    """Eq. 5: exact memory consumption of HtY.

    ``Size_ep * #Buckets + nnz_Y * (Size_idx * N_Y + Size_val + Size_ep)``
    """
    if nnz_y < 0 or order_y <= 0 or num_buckets <= 0:
        raise ShapeError("nnz_y >= 0, order_y > 0, num_buckets > 0 required")
    return SIZE_ENTRY_POINTER * num_buckets + nnz_y * (
        SIZE_INDEX * order_y + SIZE_VALUE + SIZE_ENTRY_POINTER
    )


def hta_size_upper(
    nnz_x_fmax: int,
    nnz_y_fmax: int,
    num_free_y: int,
    num_buckets: int,
) -> int:
    """Eq. 6: upper bound on one thread's HtA memory consumption.

    ``nnz^X_Fmax * nnz^Y_Fmax`` bounds the entries: each non-zero of the
    largest X sub-tensor can contribute at most every element of the
    largest Y sub-tensor.
    """
    if min(nnz_x_fmax, nnz_y_fmax, num_free_y, num_buckets) < 0:
        raise ShapeError("all estimator inputs must be non-negative")
    entries = nnz_x_fmax * nnz_y_fmax
    return SIZE_ENTRY_POINTER * num_buckets + entries * (
        SIZE_INDEX * num_free_y + SIZE_VALUE + SIZE_ENTRY_POINTER
    )


def zlocal_size(hta_bytes: int, num_free_x: int, nnz_hta: int) -> int:
    """§4.2: Z_local = size of HtA plus ``F^X_nz * nnz_HtA`` indices."""
    if hta_bytes < 0 or num_free_x < 0 or nnz_hta < 0:
        raise ShapeError("all estimator inputs must be non-negative")
    return hta_bytes + SIZE_INDEX * num_free_x * nnz_hta


def z_size(zlocal_bytes: list[int]) -> int:
    """§4.2: Z is the summation of every thread's Z_local size."""
    return int(sum(zlocal_bytes))


@dataclass(frozen=True)
class SizeEstimates:
    """All four §4.2 estimates for one SpTC run."""

    hty: int
    hta_per_thread: int
    zlocal_per_thread: int
    z: int

    def as_dict(self) -> dict:
        """Mapping keyed like the placement policy expects."""
        from repro.core.profile import DataObject

        return {
            DataObject.HTY: self.hty,
            DataObject.HTA: self.hta_per_thread,
            DataObject.Z_LOCAL: self.zlocal_per_thread,
            DataObject.Z: self.z,
        }


def estimate_from_tensors(
    x_fiber_ptr: np.ndarray,
    nnz_y: int,
    order_y: int,
    hty_buckets: int,
    hty_max_group: int,
    num_free_x: int,
    num_free_y: int,
    threads: int = 1,
    hta_buckets: int = 1024,
) -> SizeEstimates:
    """Produce all §4.2 estimates from input-processing statistics.

    Everything here is known after the input-processing stage and before
    the index-search stage — the point where the paper performs HtA's
    dynamic allocation.
    """
    if threads <= 0:
        raise ShapeError("threads must be positive")
    fiber_sizes = np.diff(x_fiber_ptr)
    nnz_x_fmax = int(fiber_sizes.max()) if fiber_sizes.size else 0
    hty = hty_size(nnz_y, order_y, hty_buckets)
    hta = hta_size_upper(nnz_x_fmax, hty_max_group, num_free_y, hta_buckets)
    entries_bound = nnz_x_fmax * hty_max_group
    zl = zlocal_size(hta, num_free_x, entries_bound)
    return SizeEstimates(
        hty=hty,
        hta_per_thread=hta,
        zlocal_per_thread=zl,
        z=z_size([zl] * threads),
    )
