"""Dynamic data placement & migration engine (ROADMAP: dynamic HM layer).

Sparta's §4.2 placement is *static*: one object → device mapping chosen
before the run and held for all five stages. That is provably wrong in
two regimes this repo now reaches:

* **within a run** when the DRAM cannot hold every placement-sensitive
  object at once — the stages touch disjoint hot sets (HtY in stages
  1-2, HtA/Z_local in stage 3, Z in stages 4-5), so time-multiplexing
  the fast tier across stage boundaries beats any single static pick;
* **across requests** in server mode, where the operand registry and
  warm HtY caches pin fast-tier bytes a per-contraction static policy
  does not know about, shrinking the capacity it packs against.

:class:`MigrationEngine` consumes the per-stage
:class:`~repro.core.profile.TrafficRecord` stream (measured, or
forecast from the planner's :class:`~repro.planner.cost_model.CostModel`
statistics) and emits strict
:class:`~repro.memory.simulator.PlacementSchedule` objects with explicit
:class:`~repro.memory.simulator.Migration` entries at stage boundaries.
Four policies (the design space of the Data_Placement_Optimization
simulator lineage — look-ahead vs. past-window scoring, inclusive vs.
exclusive fast-tier caching):

* ``lookahead`` — score objects by the PMM penalty the *upcoming*
  stages would pay (geometric discount per stage of distance), promote
  the densest, demote what has no future; exclusive caching.
* ``ewma`` — past-window scoring: an exponentially weighted moving
  average of observed penalty density, updated after every stage and
  carried across requests (the cross-request learning a reactive
  runtime would do); demotes objects whose EWMA went cold mid-run.
* ``inclusive`` — lookahead scoring with an inclusive fast tier: a
  promoted object keeps its slow-tier master copy, so demoting it while
  still *clean* (no writes since promotion) is free — the copy is
  dropped, not written back.
* ``hybrid`` — blended lookahead + EWMA score with inclusive caching.

Allocation-time placement is free: an object's *first* placement (the
stage its traffic first appears) is where it is malloc'd, so only
relocations of already-materialized data emit migrations. Input
operands X and Y are materialized in the slow tier before the run (they
arrive from files or the serve registry).

The engine never inspects wall-clock time — schedules are deterministic
functions of the traffic records, the device table and the engine
state, so simulation comparisons are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import STAGE_ORDER, Stage
from repro.errors import PlacementError
from repro.memory.devices import HeterogeneousMemory
from repro.memory.objects import TABLE2
from repro.memory.placement import DRAM, PMM
from repro.memory.simulator import (
    HMSimulator,
    Migration,
    PlacementSchedule,
    SimulatedRun,
)

__all__ = [
    "DYNAMIC_POLICIES",
    "MigrationEngine",
    "StreamRequest",
    "StreamResult",
    "forecast_benefit",
    "predict_object_traffic",
    "simulate_stream",
    "stage_benefit",
    "static_stream_scheduler",
]

#: the dynamic policies the engine implements (``ttt --placement
#: dynamic:<policy>`` accepts exactly these names)
DYNAMIC_POLICIES = ("lookahead", "ewma", "inclusive", "hybrid")

#: geometric discount per stage of look-ahead distance
LOOKAHEAD_DISCOUNT = 0.5

#: stages of look-ahead window (current stage + this many ahead)
DEFAULT_LOOKAHEAD = 2

#: EWMA weight of the newest epoch's observation
DEFAULT_EWMA_ALPHA = 0.6

#: objects materialized before the run starts (inputs live in the
#: slow/capacity tier: files, pinned registry segments)
_PREMATERIALIZED = (DataObject.X, DataObject.Y)


def _pmm_delta_per_byte(
    hm: HeterogeneousMemory, kind: AccessKind, pattern: AccessPattern
) -> float:
    """Seconds/byte an access pays in PMM beyond its DRAM cost."""
    fast = 1.0 / hm.dram.effective_bandwidth(kind, pattern)
    slow = 1.0 / hm.pmm.effective_bandwidth(kind, pattern)
    return max(slow - fast, 0.0)


def stage_benefit(
    profile: RunProfile, hm: HeterogeneousMemory
) -> Dict[Stage, Dict[DataObject, float]]:
    """Seconds saved per stage by holding each object in DRAM.

    Computed record-by-record from the run's measured traffic with the
    per-signature §2.3 bandwidth asymmetries — a sequential-read object
    (X, Y) accrues far less benefit per byte than a random read-write
    one (HtY, HtA), which is exactly the pattern-awareness a
    volume-only tracker (IAL) lacks. Values are in un-amplified
    seconds; only their relative order matters to the engine.
    """
    out: Dict[Stage, Dict[DataObject, float]] = {
        stage: {} for stage in STAGE_ORDER
    }
    for rec in profile.traffic:
        delta = _pmm_delta_per_byte(hm, rec.kind, rec.pattern)
        per_obj = out.setdefault(rec.stage, {})
        per_obj[rec.obj] = per_obj.get(rec.obj, 0.0) + rec.nbytes * delta
    return out


def predict_object_traffic(stats) -> Dict[Stage, Dict[DataObject, int]]:
    """Per-(stage, object) predicted Table-2 byte totals.

    The per-object decomposition of
    :meth:`repro.planner.cost_model.CostModel.predict_traffic` — the
    same estimated counts, attributed to the object each term reads or
    writes, so a :class:`MigrationEngine` can score placements *before*
    the contraction runs (``lookahead`` promotion on predicted probe
    spikes). Per-stage sums equal ``predict_traffic`` exactly.
    """
    from repro.core.common import HT_ENTRY_BYTES, coo_row_bytes
    from repro.core.kernels import HTA_CACHE_HIT

    rowb_x = coo_row_bytes(len(stats.x_shape))
    rowb_y = coo_row_bytes(len(stats.y_shape))
    rowb_z = coo_row_bytes(stats.nfx + stats.nfy)
    products = stats.est_products
    created = stats.est_created
    miss = 1.0 - HTA_CACHE_HIT
    return {
        Stage.INPUT_PROCESSING: {
            DataObject.X: int(2 * stats.nnz_x * rowb_x),
            DataObject.Y: int(stats.nnz_y * rowb_y),
            DataObject.HTY: int(
                stats.nnz_y * HT_ENTRY_BYTES + stats.groups * 8
            ),
        },
        Stage.INDEX_SEARCH: {
            DataObject.X: int(stats.nnz_x * rowb_x),
            DataObject.HTY: int(
                stats.nnz_x * 8
                + stats.nnz_x * HT_ENTRY_BYTES
                + products * 16
            ),
        },
        Stage.ACCUMULATION: {
            DataObject.HTA: int(
                products * 16 * miss
                + (
                    max(products - created, 0) * 8
                    + created * HT_ENTRY_BYTES
                )
                * miss
            ),
            DataObject.Z_LOCAL: int(created * (8 * stats.nfx + 16)),
        },
        Stage.WRITEBACK: {
            DataObject.Z_LOCAL: int(created * rowb_z),
            DataObject.Z: int(created * rowb_z),
        },
        Stage.OUTPUT_SORTING: {
            DataObject.Z: int(2 * created * rowb_z),
        },
    }


def forecast_benefit(
    stats, hm: HeterogeneousMemory
) -> Dict[Stage, Dict[DataObject, float]]:
    """Predicted :func:`stage_benefit` from planner statistics.

    Converts :func:`predict_object_traffic` bytes into seconds-saved
    using each (object, stage) cell's Table-2 access signature — the
    pre-run forecast a server-side engine scores incoming requests
    with, before any traffic has been measured.
    """
    out: Dict[Stage, Dict[DataObject, float]] = {}
    for stage, per_obj in predict_object_traffic(stats).items():
        cell: Dict[DataObject, float] = {}
        for obj, nbytes in per_obj.items():
            pattern, kinds = TABLE2[(obj, stage)]
            delta = sum(
                _pmm_delta_per_byte(hm, kind, pattern) for kind in kinds
            ) / len(kinds)
            cell[obj] = nbytes * delta
        out[stage] = cell
    return out


@dataclass
class _ObjectState:
    """Where one data object lives mid-run."""

    location: str = PMM
    materialized: bool = False
    #: a valid master copy exists in the slow tier (inclusive caching)
    slow_copy: bool = True


class MigrationEngine:
    """Emit per-stage placement schedules with explicit migrations.

    One engine instance serves a stream of runs: per-request state
    (object locations, dirtiness) resets in :meth:`schedule_run`, while
    the EWMA hotness profile persists across requests — feed it the
    server's completed-request profiles via :meth:`observe` /
    :meth:`consume` and the ``ewma``/``hybrid`` policies learn the
    workload mix.
    """

    def __init__(
        self,
        hm: HeterogeneousMemory,
        *,
        policy: str = "lookahead",
        lookahead_stages: int = DEFAULT_LOOKAHEAD,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
    ) -> None:
        if policy not in DYNAMIC_POLICIES:
            raise PlacementError(
                f"unknown dynamic policy {policy!r}; "
                f"expected one of {DYNAMIC_POLICIES}"
            )
        if lookahead_stages < 0:
            raise PlacementError("lookahead_stages must be >= 0")
        if not 0.0 < ewma_alpha <= 1.0:
            raise PlacementError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        self.hm = hm
        self.policy = policy
        self.inclusive = policy in ("inclusive", "hybrid")
        self.lookahead_stages = int(lookahead_stages)
        self.ewma_alpha = float(ewma_alpha)
        #: benefit-density EWMA (seconds saved per byte per epoch)
        self._ewma: Dict[DataObject, float] = {}
        self.counters: Dict[str, int] = {}
        self.reset_counters()

    # ------------------------------------------------------------------
    def reset_counters(self) -> None:
        self.counters = {
            "runs": 0,
            "epochs": 0,
            "observed_profiles": 0,
            "promotions": 0,
            "demotions": 0,
            "free_demotions": 0,
            "freed": 0,
            "promoted_bytes": 0,
            "demoted_bytes": 0,
        }

    def reset(self) -> None:
        """Forget learned hotness and zero the counters."""
        self._ewma.clear()
        self.reset_counters()

    # ------------------------------------------------------------------
    def _update_ewma(
        self,
        benefit: Mapping[DataObject, float],
        sizes: Mapping[DataObject, int],
    ) -> None:
        a = self.ewma_alpha
        for obj in DataObject:
            size = sizes.get(obj, 0)
            if size <= 0:
                continue
            density = benefit.get(obj, 0.0) / size
            self._ewma[obj] = (
                a * density + (1.0 - a) * self._ewma.get(obj, 0.0)
            )

    def observe(self, profile: RunProfile) -> None:
        """Fold one completed run's traffic into the hotness EWMA.

        Server mode: called with the cross-request stream from the
        serve layer's :class:`~repro.serve.telemetry.TrafficFeed`, so
        the engine's past-window policies see traffic from *other*
        requests, not just the run being scheduled.
        """
        benefit = stage_benefit(profile, self.hm)
        sizes = profile.object_bytes
        for stage in STAGE_ORDER:
            self._update_ewma(benefit.get(stage, {}), sizes)
            self.counters["epochs"] += 1
        self.counters["observed_profiles"] += 1

    def consume(self, feed) -> int:
        """Drain a serve-layer traffic feed; returns profiles absorbed.

        *feed* is duck-typed on ``drain()`` yielding objects with a
        ``profile`` attribute (the shape
        :class:`repro.serve.telemetry.TrafficFeed` publishes), keeping
        the memory layer importable without the serve layer.
        """
        n = 0
        for event in feed.drain():
            self.observe(event.profile)
            n += 1
        return n

    # ------------------------------------------------------------------
    def _scores(
        self,
        stage_index: int,
        benefit: Mapping[Stage, Mapping[DataObject, float]],
        sizes: Mapping[DataObject, int],
    ) -> Dict[DataObject, float]:
        """Seconds-saved score of DRAM residency for the coming stage."""
        look: Dict[DataObject, float] = {}
        horizon = min(
            stage_index + self.lookahead_stages, len(STAGE_ORDER) - 1
        )
        for j in range(stage_index, horizon + 1):
            weight = LOOKAHEAD_DISCOUNT ** (j - stage_index)
            for obj, sec in benefit.get(STAGE_ORDER[j], {}).items():
                look[obj] = look.get(obj, 0.0) + weight * sec
        if self.policy in ("lookahead", "inclusive"):
            return look
        past = {
            obj: self._ewma.get(obj, 0.0) * sizes.get(obj, 0)
            for obj in DataObject
        }
        if self.policy == "ewma":
            return past
        # hybrid: trust the forecast, hedged by learned history
        return {
            obj: 0.5 * look.get(obj, 0.0) + 0.5 * past.get(obj, 0.0)
            for obj in set(look) | set(past)
        }

    def schedule_run(
        self,
        profile: RunProfile,
        pinned_bytes: int = 0,
        *,
        benefit: Optional[
            Mapping[Stage, Mapping[DataObject, float]]
        ] = None,
    ) -> PlacementSchedule:
        """Build this run's strict per-stage schedule with migrations.

        ``pinned_bytes`` is fast-tier capacity already held outside this
        run (serve-registry pins, warm HtY caches) — the cross-request
        pressure a per-contraction static policy cannot see. *benefit*
        overrides the measured :func:`stage_benefit` (pass
        :func:`forecast_benefit` output to schedule from planner
        predictions).
        """
        if pinned_bytes < 0:
            raise PlacementError("pinned_bytes must be non-negative")
        capacity = max(self.hm.dram.capacity_bytes - pinned_bytes, 0)
        sizes = {
            obj: int(profile.object_bytes.get(obj, 0))
            for obj in DataObject
        }
        benefit = (
            benefit
            if benefit is not None
            else stage_benefit(profile, self.hm)
        )
        first_touch: Dict[DataObject, Stage] = {}
        last_touch: Dict[DataObject, int] = {}
        dirty_stages: Dict[DataObject, set] = {}
        for rec in profile.traffic:
            idx = STAGE_ORDER.index(rec.stage)
            if (
                rec.obj not in first_touch
                or idx < STAGE_ORDER.index(first_touch[rec.obj])
            ):
                first_touch[rec.obj] = rec.stage
            last_touch[rec.obj] = max(last_touch.get(rec.obj, 0), idx)
            if rec.kind is AccessKind.WRITE:
                dirty_stages.setdefault(rec.obj, set()).add(rec.stage)

        state = {obj: _ObjectState() for obj in DataObject}
        for obj in _PREMATERIALIZED:
            state[obj].materialized = True

        per_stage: Dict[Stage, Dict[DataObject, str]] = {}
        migrations: List[Migration] = []
        for si, stage in enumerate(STAGE_ORDER):
            scores = self._scores(si, benefit, sizes)
            active = [
                obj
                for obj in DataObject
                if sizes[obj] > 0
                and (
                    state[obj].materialized
                    or first_touch.get(obj) == stage
                )
            ]
            # Highest seconds-saved density first. An object already in
            # DRAM (or about to be allocated, which places for free)
            # qualifies on any positive score; promoting materialized
            # PMM data pays a copy, so its score must beat that cost —
            # the hysteresis that stops volume-hot-but-cheap objects
            # (Y's one sequential scan) from churning the fast tier.
            def _admission_floor(obj: DataObject) -> float:
                st = state[obj]
                if not st.materialized or st.location == DRAM:
                    return 0.0
                return sizes[obj] * (
                    1.0
                    / self.hm.pmm.effective_bandwidth(
                        AccessKind.READ, AccessPattern.SEQUENTIAL
                    )
                    + 1.0
                    / self.hm.dram.effective_bandwidth(
                        AccessKind.WRITE, AccessPattern.SEQUENTIAL
                    )
                )

            want = sorted(
                (
                    o
                    for o in active
                    if scores.get(o, 0.0) > _admission_floor(o)
                ),
                key=lambda o: scores[o] / sizes[o],
                reverse=True,
            )
            free = capacity
            chosen: List[DataObject] = []
            for obj in want:
                if sizes[obj] <= free:
                    chosen.append(obj)
                    free -= sizes[obj]
            # Cold residents keep their slot while room remains — an
            # unnecessary demotion is pure cost.
            keepers = sorted(
                (
                    o
                    for o in active
                    if state[o].location == DRAM and o not in chosen
                ),
                key=lambda o: scores.get(o, 0.0) / sizes[o],
                reverse=True,
            )
            for obj in keepers:
                if sizes[obj] <= free:
                    chosen.append(obj)
                    free -= sizes[obj]
            target = {
                obj: (DRAM if obj in chosen else PMM)
                for obj in DataObject
            }
            # demotions before promotions: the freed bytes are what the
            # promotions move into
            for obj in DataObject:
                st = state[obj]
                if (
                    st.location == DRAM
                    and target[obj] == PMM
                    and st.materialized
                ):
                    if si > last_touch.get(obj, -1):
                        # the pipeline is done with this object — its
                        # pages are freed, not written back
                        self.counters["freed"] += 1
                    elif self.inclusive and st.slow_copy:
                        self.counters["free_demotions"] += 1
                    else:
                        migrations.append(
                            Migration(
                                stage, obj, sizes[obj], DRAM, PMM
                            )
                        )
                        self.counters["demotions"] += 1
                        self.counters["demoted_bytes"] += sizes[obj]
                    st.location = PMM
                    st.slow_copy = True
            for obj in DataObject:
                st = state[obj]
                if target[obj] != DRAM or st.location == DRAM:
                    continue
                if st.materialized:
                    migrations.append(
                        Migration(stage, obj, sizes[obj], PMM, DRAM)
                    )
                    self.counters["promotions"] += 1
                    self.counters["promoted_bytes"] += sizes[obj]
                    # the slow master copy survives a promotion only
                    # under inclusive caching
                    st.slow_copy = self.inclusive
                else:
                    # allocation-time placement: born in DRAM, no slow
                    # copy to fall back on
                    st.slow_copy = False
                st.location = DRAM
            for obj in active:
                st = state[obj]
                if not st.materialized and first_touch.get(obj) == stage:
                    st.materialized = True
                    if st.location == PMM:
                        st.slow_copy = True
                if st.location == DRAM and stage in dirty_stages.get(
                    obj, ()
                ):
                    st.slow_copy = False
            per_stage[stage] = {
                obj: state[obj].location for obj in DataObject
            }
            self._update_ewma(benefit.get(stage, {}), sizes)
            self.counters["epochs"] += 1
        self.counters["runs"] += 1
        return PlacementSchedule(
            f"dynamic:{self.policy}", per_stage, migrations, strict=True
        )

    # ------------------------------------------------------------------
    def fold_metrics(
        self, registry, *, prefix: str = "memory.migration"
    ) -> None:
        """Export engine counters as ``memory.migration.*`` metrics."""
        registry.set(f"{prefix}.policy", self.policy)
        registry.set(
            f"{prefix}.inclusive", int(self.inclusive)
        )
        for name, value in self.counters.items():
            registry.set(f"{prefix}.{name}", int(value))


# ----------------------------------------------------------------------
# multi-contraction streams (the Figure-9 successor scenario)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamRequest:
    """One contraction in a served stream.

    ``pinned_bytes`` is the fast-tier capacity the serve layer holds
    while this request runs (registry-pinned operands, warm HtY cache
    segments) — the cross-request state that makes per-contraction
    static placement wrong.
    """

    profile: RunProfile
    pinned_bytes: int = 0


@dataclass
class StreamResult:
    """Simulated cost of one policy over a request stream."""

    policy: str
    runs: List[SimulatedRun] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(run.total_seconds for run in self.runs)

    @property
    def migration_seconds(self) -> float:
        return sum(
            st.migration_seconds
            for run in self.runs
            for st in run.stages
        )

    @property
    def penalty_seconds(self) -> float:
        return sum(
            st.penalty_seconds
            for run in self.runs
            for st in run.stages
        )

    def summary(self) -> dict:
        return {
            "policy": self.policy,
            "requests": len(self.runs),
            "total_seconds": self.total_seconds,
            "penalty_seconds": self.penalty_seconds,
            "migration_seconds": self.migration_seconds,
        }


def static_stream_scheduler(
    hm: HeterogeneousMemory,
) -> Callable[[RunProfile, int], PlacementSchedule]:
    """Per-contraction static §4.2 placement, as a stream scheduler.

    The honest static baseline: Sparta's priority placement recomputed
    for each request against the DRAM that is actually free (even
    granting it awareness of registry pins — which the real static
    policy lacks — it still holds one mapping for all five stages).
    """

    def scheduler(
        profile: RunProfile, pinned_bytes: int = 0
    ) -> PlacementSchedule:
        from repro.memory.policies.static import sparta_policy

        capacity = max(hm.dram.capacity_bytes - pinned_bytes, 0)
        placement = sparta_policy(profile, capacity)
        return PlacementSchedule(
            placement.policy,
            {
                stage: dict(placement.mapping)
                for stage in STAGE_ORDER
            },
            strict=True,
        )

    return scheduler


def simulate_stream(
    sim: HMSimulator,
    requests: Iterable[StreamRequest],
    scheduler: Callable[[RunProfile, int], PlacementSchedule],
    *,
    lag_fraction: float = 0.0,
    overlap: bool = False,
    policy: Optional[str] = None,
) -> StreamResult:
    """Run every request's schedule through the simulator and total it.

    *scheduler* maps ``(profile, pinned_bytes)`` to a schedule —
    :meth:`MigrationEngine.schedule_run`,
    :func:`static_stream_scheduler` output, or an
    :func:`~repro.memory.policies.ial.ial_schedule` adapter. Stateful
    schedulers (the engine's EWMA) see the requests in order, exactly
    as a server would feed them.
    """
    runs: List[SimulatedRun] = []
    label = policy
    for req in requests:
        schedule = scheduler(req.profile, req.pinned_bytes)
        if label is None:
            label = schedule.policy
        runs.append(
            sim.simulate_schedule(
                req.profile,
                schedule,
                lag_fraction=lag_fraction,
                overlap=overlap,
            )
        )
    return StreamResult(label or "stream", runs)
