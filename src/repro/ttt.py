"""``ttt`` — tensor-times-tensor command line, mirroring the artifact.

The paper's artifact exposes ``build/ttt`` with these options
(Appendix B.3); this module reproduces the interface over ``.tns`` files:

    -X FIRST INPUT TENSOR
    -Y SECOND INPUT TENSOR
    -Z OUTPUT TENSOR (optional)
    -m NUMBER OF CONTRACT MODES
    -x CONTRACT MODES FOR TENSOR X (0-based)
    -y CONTRACT MODES FOR TENSOR Y (0-based)
    -t NTHREADS (optional)

and the artifact's ``EXPERIMENT_MODES`` environment variable selects the
engine: ``0`` = COOY+SPA, ``1`` = COOY+HtA, ``3`` = HtY+HtA (Sparta),
``4`` = HtY+HtA with the heterogeneous-memory simulation report.

Run: ``python -m repro.ttt -X x.tns -Y y.tns -m 2 -x 2 3 -y 0 1``
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.core import contract
from repro.core.stages import STAGE_ORDER
from repro.tensor import read_tns, write_tns

#: EXPERIMENT_MODES values of the artifact mapped to engine names
EXPERIMENT_MODES = {
    "0": "spa",
    "1": "coo_hta",
    "3": "sparta",
    "4": "sparta",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ttt",
        description="Sparse tensor contraction (Sparta reproduction)",
    )
    parser.add_argument("-X", required=True, help="first input tensor (.tns)")
    parser.add_argument("-Y", required=True, help="second input tensor (.tns)")
    parser.add_argument("-Z", default=None, help="output tensor (optional)")
    parser.add_argument(
        "-m", type=int, required=True, help="number of contract modes"
    )
    parser.add_argument(
        "-x", type=int, nargs="+", required=True,
        help="contract modes for tensor X (0-based)",
    )
    parser.add_argument(
        "-y", type=int, nargs="+", required=True,
        help="contract modes for tensor Y (0-based)",
    )
    parser.add_argument(
        "-t", "--nt", type=int, default=1, help="number of threads"
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="parallel worker backend when -t > 1 (process = "
             "shared-memory worker processes, real multi-core scaling)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="respawn rounds for failed parallel workers before the "
             "pool is declared irrecoverable (default: 2)",
    )
    parser.add_argument(
        "--on-failure", choices=("raise", "serial"), default="raise",
        help="after retries are exhausted, either raise "
             "PoolDegradedError or degrade to a serial recomputation "
             "of the missing chunks (default: raise)",
    )
    parser.add_argument(
        "--plan", choices=("off", "auto"), default="off",
        help="'auto' lets the cost-model planner (repro.planner) pick "
             "the schedule — serial vs thread/process workers, bounded "
             "by -t — instead of running the engine exactly as given "
             "(sparta engine only)",
    )
    parser.add_argument(
        "--explain-plan", action="store_true",
        help="print the planner's per-candidate cost table for this "
             "contraction (implies consulting the planner; combine "
             "with --plan auto to also execute its choice)",
    )
    parser.add_argument(
        "--memory-budget", default=None, metavar="BYTES",
        help="hard cap on live contraction allocations (int bytes or "
             "'512M'/'2G'); when the working set exceeds it, execution "
             "goes out-of-core — fused chunks spill to run files and "
             "the final merge streams over them. Results are "
             "bit-identical either way (sparta engine only)",
    )
    parser.add_argument(
        "--spill-root", default=None, metavar="DIR",
        help="directory for out-of-core run files (default: system "
             "temp dir); created per run and removed on completion",
    )
    parser.add_argument(
        "--serve-url", default=None, metavar="URL",
        help="route the contraction through a running contraction "
             "server (python -m repro.serve) at tcp://host:port "
             "instead of executing locally; operands are pinned in "
             "the server's registry, results are bit-identical to a "
             "local run",
    )
    parser.add_argument(
        "--placement", default="sparta", metavar="POLICY",
        choices=(
            "sparta", "ial", "dynamic:lookahead", "dynamic:ewma",
            "dynamic:inclusive", "dynamic:hybrid",
        ),
        help="placement policy for the heterogeneous-memory simulation "
             "(EXPERIMENT_MODES=4): 'sparta' (static §4.2 priority, "
             "default), 'ial' (reactive hotness comparator) or "
             "'dynamic:<policy>' for the migration engine "
             "(lookahead | ewma | inclusive | hybrid); non-default "
             "policies print their per-stage schedule, migrations and "
             "simulated seconds next to the static references",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace of the run and write it as Chrome "
             "trace-event JSON (open in Perfetto: ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's unified metrics (profile counters, stage "
             "seconds, Table-2 traffic aggregates) as JSON",
    )
    return parser


def _served_options(args, method: str) -> dict:
    """The ``contract()`` options a served run passes through.

    Mirrors the local execution branches of :func:`main` exactly, so a
    served run computes the same bytes a local invocation would.
    """
    options: dict = {"method": method}
    if args.plan == "auto":
        options["plan"] = "auto"
        options["max_workers"] = args.nt
    elif args.nt > 1 and method == "sparta":
        options = {
            "method": "parallel",
            "threads": args.nt,
            "backend": args.backend,
            "max_retries": args.max_retries,
            "on_failure": args.on_failure,
        }
    if args.memory_budget is not None:
        options["memory_budget"] = args.memory_budget
        if args.spill_root is not None:
            options["spill_root"] = args.spill_root
    return options


def _run_served(args, x, y, method: str) -> int:
    """Execute the request on a remote contraction server."""
    from repro.serve import ServeClient

    client = ServeClient.connect(args.serve_url)
    try:
        hx = f"ttt-{x.fingerprint()[:12]}"
        hy = f"ttt-{y.fingerprint()[:12]}"
        client.pin(hx, x)
        client.pin(hy, y)
        resp = client.submit(
            hx, hy, tuple(args.x), tuple(args.y),
            options=_served_options(args, method),
        )
    finally:
        client.close()
    print(
        f"served via {args.serve_url} (request {resp.request_id}, "
        f"worker {resp.worker}, queue {resp.queue_seconds:.6f} s)"
    )
    if args.plan == "auto":
        print(f"planner chose: {resp.profile.flags['planner']}")
    print(f"Z: {resp.tensor}")
    print("stage seconds:")
    for stage in STAGE_ORDER:
        seconds = resp.profile.stage_seconds.get(stage, 0.0)
        print(f"  {stage.value:18s} {seconds:.6f}")
    print(f"total: {resp.profile.total_seconds:.6f} s")
    if args.Z:
        write_tns(resp.tensor, args.Z)
        print(f"wrote {args.Z}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run one contraction; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if len(args.x) != args.m or len(args.y) != args.m:
        print(
            f"error: -m {args.m} but got {len(args.x)} X modes and "
            f"{len(args.y)} Y modes",
            file=sys.stderr,
        )
        return 2

    mode = os.environ.get("EXPERIMENT_MODES", "3")
    try:
        method = EXPERIMENT_MODES[mode]
    except KeyError:
        print(
            f"error: EXPERIMENT_MODES={mode!r} not in "
            f"{sorted(EXPERIMENT_MODES)}",
            file=sys.stderr,
        )
        return 2

    if (args.plan == "auto" or args.explain_plan) and method != "sparta":
        print(
            f"error: --plan auto/--explain-plan need the sparta engine "
            f"(EXPERIMENT_MODES=3), not {method!r}",
            file=sys.stderr,
        )
        return 2
    if args.memory_budget is not None and method != "sparta":
        print(
            f"error: --memory-budget needs the sparta engine "
            f"(EXPERIMENT_MODES=3), not {method!r}",
            file=sys.stderr,
        )
        return 2

    if args.placement != "sparta" and mode != "4":
        print(
            f"error: --placement {args.placement} needs the "
            "heterogeneous-memory simulation (EXPERIMENT_MODES=4)",
            file=sys.stderr,
        )
        return 2

    if args.serve_url is not None:
        if args.trace or args.metrics or args.explain_plan:
            print(
                "error: --trace/--metrics/--explain-plan run locally "
                "and are not available with --serve-url",
                file=sys.stderr,
            )
            return 2
        if mode == "4":
            print(
                "error: EXPERIMENT_MODES=4 (heterogeneous-memory "
                "simulation) is a local-run mode; not available with "
                "--serve-url",
                file=sys.stderr,
            )
            return 2

    x = read_tns(args.X)
    y = read_tns(args.Y)
    print(f"X: {x}")
    print(f"Y: {y}")
    print(f"engine: {method} (EXPERIMENT_MODES={mode}), threads: {args.nt}")

    if args.serve_url is not None:
        return _run_served(args, x, y, method)

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()

    rss_sampler = None
    if args.metrics:
        from repro.obs import PeakRssSampler

        rss_sampler = PeakRssSampler().start()

    if args.explain_plan:
        from repro.planner import plan_contraction

        decision = plan_contraction(
            x, y, tuple(args.x), tuple(args.y), max_workers=args.nt
        )
        print(decision.explain())

    if args.plan == "auto":
        result = contract(
            x, y, tuple(args.x), tuple(args.y), method=method,
            plan="auto", max_workers=args.nt, tracer=tracer,
            memory_budget=args.memory_budget,
            spill_root=args.spill_root,
        )
        print(f"planner chose: {result.profile.flags['planner']}")
    elif args.nt > 1 and method == "sparta":
        from repro.parallel import parallel_sparta

        par = parallel_sparta(
            x, y, tuple(args.x), tuple(args.y),
            threads=args.nt, backend=args.backend,
            max_retries=args.max_retries, on_failure=args.on_failure,
            tracer=tracer,
            memory_budget=args.memory_budget,
            spill_root=args.spill_root,
        )
        print(f"backend: {par.backend}, wall: {par.wall_seconds:.6f} s")
        result = par.result
        if result.profile.flags.get("degraded") == "serial":
            failures = result.profile.counters.get(
                "ft_worker_failures", 0
            )
            print(
                f"warning: pool degraded to serial recomputation after "
                f"{failures} worker failure(s); results are exact but "
                f"timings are not representative",
                file=sys.stderr,
            )
    else:
        kwargs = {}
        if args.memory_budget is not None:
            kwargs["memory_budget"] = args.memory_budget
            kwargs["spill_root"] = args.spill_root
        result = contract(
            x, y, tuple(args.x), tuple(args.y), method=method,
            tracer=tracer, **kwargs,
        )

    if args.memory_budget is not None:
        spilled = result.profile.counters.get("ooc_spill_bytes", 0)
        print(
            f"memory budget: {args.memory_budget} "
            f"({result.profile.flags.get('ooc', 'in_core')}, "
            f"{spilled} bytes spilled, "
            f"{result.profile.counters.get('ooc_run_files', 0)} "
            f"run files)"
        )

    print(f"Z: {result.tensor}")
    print("stage seconds:")
    for stage in STAGE_ORDER:
        seconds = result.profile.stage_seconds.get(stage, 0.0)
        print(f"  {stage.value:18s} {seconds:.6f}")
    print(f"total: {result.profile.total_seconds:.6f} s")

    migration_engine = None
    if mode == "4":
        from repro.memory import (
            HMSimulator,
            MigrationEngine,
            all_dram_placement,
            all_pmm_placement,
            dram,
            ial_schedule,
            pmm,
        )
        from repro.memory.devices import HeterogeneousMemory
        from repro.memory.policies import sparta_policy_characterized
        from repro.memory.policies.ial import DEFAULT_IAL_LAG

        peak = max(result.profile.peak_bytes(), 1)
        hm = HeterogeneousMemory(
            dram=dram(max(peak // 2, 1)), pmm=pmm(peak * 20)
        )
        sim = HMSimulator(hm)
        policy = sparta_policy_characterized(
            result.profile, sim, hm.dram.capacity_bytes
        )
        t_sp = sim.simulate(result.profile, policy).total_seconds
        t_opt = sim.simulate(
            result.profile, all_pmm_placement()
        ).total_seconds
        t_dram = sim.simulate(
            result.profile, all_dram_placement()
        ).total_seconds
        print("heterogeneous-memory simulation (DRAM = 1/2 footprint):")
        print(f"  sparta placement {t_sp:.6f} s")
        print(f"  optane-only      {t_opt:.6f} s "
              f"({t_opt / t_sp:.2f}x of sparta)")
        print(f"  dram-only        {t_dram:.6f} s")
        if args.placement == "ial":
            schedule = ial_schedule(
                result.profile, hm.dram.capacity_bytes
            )
            run = sim.simulate_schedule(
                result.profile, schedule,
                lag_fraction=DEFAULT_IAL_LAG,
            )
        elif args.placement.startswith("dynamic:"):
            migration_engine = MigrationEngine(
                hm, policy=args.placement.split(":", 1)[1]
            )
            schedule = migration_engine.schedule_run(result.profile)
            run = sim.simulate_schedule(
                result.profile, schedule, overlap=True
            )
        else:
            schedule = run = None
        if run is not None:
            mig_s = sum(st.migration_seconds for st in run.stages)
            print(f"  {schedule.policy:16s} {run.total_seconds:.6f} s "
                  f"({run.total_seconds / t_sp:.2f}x of sparta, "
                  f"{len(schedule.migrations)} migrations, "
                  f"{mig_s:.6f} s moving)")

    if tracer is not None:
        tracer.write(args.trace)
        print(f"wrote trace: {args.trace} "
              f"({len(tracer.records)} records; open in Perfetto)")
    if args.metrics:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry.from_profile(
            result.profile
        ).record_caches()
        if migration_engine is not None:
            registry.record_migration(migration_engine)
        if rss_sampler is not None:
            rss_sampler.stop()
            rss_sampler.record(registry)
        registry.write(args.metrics)
        print(f"wrote metrics: {args.metrics}")
    if args.Z:
        write_tns(result.tensor, args.Z)
        print(f"wrote {args.Z}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
