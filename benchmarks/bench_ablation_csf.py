"""Ablation — COO+hashtable vs CSF for locating Y sub-tensors (§3.2).

The paper chooses COO over CSF because CSF only accelerates lookups on
its *root* modes: "except the first mode, all the other contract modes
have to do linear search as well". This bench measures all three cases:

* CSF prefix search (contract modes are the tree's leading modes) — fast;
* CSF trailing search (contract modes are the tree's trailing modes) —
  degenerates to a scan;
* HtY hash lookup — fast regardless of mode position, which is the point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashtable import HashTensor
from repro.tensor import CSFTensor, linearize, random_tensor_fibered

DIMS = (40, 40, 30, 30)
NNZ = 20_000
N_PROBES = 300


@pytest.fixture(scope="module")
def data():
    y = random_tensor_fibered(DIMS, NNZ, 2, 5_000, seed=21)
    csf = CSFTensor.from_coo(y)
    hty = HashTensor.from_coo(y, (0, 1))
    rng = np.random.default_rng(5)
    rows = rng.integers(0, y.nnz, size=N_PROBES)
    lead = [tuple(int(v) for v in y.indices[i, :2]) for i in rows]
    trail = [tuple(int(v) for v in y.indices[i, 2:]) for i in rows]
    lead_ln = linearize(y.indices[rows][:, :2], DIMS[:2])
    return csf, hty, lead, trail, lead_ln


def test_csf_prefix_search(benchmark, data):
    csf, _, lead, _, _ = data

    def search():
        found = 0
        for prefix in lead:
            s, e = csf.search_prefix(prefix)
            found += e > s
        return found

    assert benchmark(search) == N_PROBES


def test_csf_trailing_search(benchmark, data):
    csf, _, _, trail, _ = data
    probes = trail[:20]  # O(nnz) each; keep the bench bounded

    def search():
        found = 0
        for t in probes:
            found += csf.search_trailing(t).size > 0
        return found

    assert benchmark(search) == len(probes)


def test_hty_search(benchmark, data):
    _, hty, _, _, lead_ln = data
    gids = benchmark(hty.lookup_many, lead_ln)
    assert (gids >= 0).all()
