"""Figure 2 bench — SpTC-SPA stage breakdown.

Benchmarks the baseline engine end-to-end and asserts the paper's
headline observation: the computation stages (index search +
accumulation + writeback) dominate, input/output processing is minor.
"""

from __future__ import annotations

from repro.core import contract
from repro.core.stages import COMPUTATION_STAGES


def bench_case(case):
    return contract(case.x, case.y, case.cx, case.cy, method="spa")


def test_spa_breakdown_chicago(benchmark, chicago2):
    res = benchmark.pedantic(
        bench_case, args=(chicago2,), rounds=2, iterations=1
    )
    fractions = res.profile.stage_fractions()
    compute = sum(fractions.get(s, 0.0) for s in COMPUTATION_STAGES)
    assert compute > 0.8, f"computation stages only {compute:.0%} of time"


def test_spa_breakdown_uracil(benchmark, uracil3):
    res = benchmark.pedantic(
        bench_case, args=(uracil3,), rounds=2, iterations=1
    )
    fractions = res.profile.stage_fractions()
    # Uracil 3-mode is the search-dominated case (99.3% in the paper).
    from repro.core.stages import Stage

    assert fractions.get(Stage.INDEX_SEARCH, 0.0) > 0.5
