"""PR10 bench: dynamic placement & migration vs static placement.

Demonstrates the tentpole property: under multi-contraction server
traffic whose working set exceeds DRAM (registry pins included), the
:class:`~repro.memory.migration.MigrationEngine`'s best policy
time-multiplexes the fast tier across stage boundaries and beats the
per-request static §4.2 placement on simulated total seconds — while
never losing when everything fits in DRAM.

Measurements (written to ``BENCH_PR10.json``; the job fails when a
gate fails):

* the Figure-9-successor stream (``repro.experiments.
  dynamic_placement``): per-policy simulated totals and migration
  seconds for the pressured and fits scenarios;
* ``dynamic_beats_static_10pct`` — the best dynamic policy improves
  on static by >= 10% total simulated seconds under pressure;
* ``no_regression_when_fits`` — that same policy does not lose to
  static when DRAM holds the whole working set (no migration churn);
* ``ial_not_better_than_best_dynamic`` — the reactive volume-only
  comparator does not beat the pattern-aware engine (sanity: the
  engine's advantage is not an artifact of the simulator's migration
  accounting, which IAL shares).

Both gates compare *simulated* seconds: penalties and migration costs
are deterministic functions of the recorded traffic bytes, and the
amplification scalar ties stall shares to each profile's own CPU
seconds, so the percentages are stable across machine speeds.

Usage: ``python benchmarks/bench_dynamic_placement.py [--quick]``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

WIN_FACTOR = 0.10


def measure(quick: bool):
    from repro.experiments.dynamic_placement import POLICIES, run

    rows = run(scale=0.1 if quick else 0.2, repeats=1 if quick else 2)
    out = []
    for row in rows:
        out.append(
            {
                "scenario": row.scenario,
                "requests": row.requests,
                "dram_bytes": row.dram_bytes,
                "pinned_bytes": row.pinned_bytes,
                "best_dynamic": row.best_dynamic,
                "policies": {
                    p: {
                        "total_seconds": row.seconds[p],
                        "migration_seconds": row.migration_seconds[p],
                        "win_over_static": row.win_over_static(p),
                    }
                    for p in POLICIES
                },
            }
        )
    return out


def check_gates(gates):
    """Validate the gates dict; returns failure strings.

    Values may be measurements, booleans or ``"skipped"``; ``None``
    always fails (a dropped gate must never read as a pass).
    """
    failures = []
    for name, value in gates.items():
        if value is None:
            failures.append(
                f"{name}: null gate value (skipped gates must be "
                f"recorded as 'skipped')"
            )
            continue
        if value is False:
            failures.append(f"{name}: False")
    return failures


def run(*, quick: bool = False):
    scenarios = measure(quick)
    pressured = next(
        s for s in scenarios if s["scenario"] == "pressured"
    )
    fits = next(s for s in scenarios if s["scenario"] == "fits")
    best = pressured["best_dynamic"]
    pressured_win = pressured["policies"][best]["win_over_static"]
    fits_win = fits["policies"][best]["win_over_static"]
    ial_vs_best = (
        pressured["policies"]["ial"]["total_seconds"]
        >= pressured["policies"][best]["total_seconds"]
    )
    return {
        "bench": "pr10_dynamic_placement",
        "quick": quick,
        "win_factor": WIN_FACTOR,
        "scenarios": scenarios,
        "best_dynamic": best,
        "pressured_win_over_static": pressured_win,
        "fits_win_over_static": fits_win,
        "gates": {
            "dynamic_beats_static_10pct": pressured_win >= WIN_FACTOR,
            "no_regression_when_fits": fits_win >= 0.0,
            "ial_not_better_than_best_dynamic": ial_vs_best,
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller stream and scale (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    payload = run(quick=args.quick)
    path = root / "BENCH_PR10.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for scenario in payload["scenarios"]:
        print(
            f"  {scenario['scenario']}: {scenario['requests']} requests, "
            f"DRAM {scenario['dram_bytes']} B "
            f"(pinned {scenario['pinned_bytes']} B)"
        )
        for policy, cell in scenario["policies"].items():
            print(
                f"    {policy:18s} {cell['total_seconds']:8.4f} s  "
                f"({cell['win_over_static']:+.1%} vs static, "
                f"{cell['migration_seconds']:.4f} s migrating)"
            )
    print(
        f"  best dynamic: {payload['best_dynamic']} "
        f"({payload['pressured_win_over_static']:+.1%} pressured, "
        f"{payload['fits_win_over_static']:+.1%} fits; "
        f"gate >= {WIN_FACTOR:.0%} / >= 0%)"
    )
    print(f"wrote {path}")
    failures = check_gates(payload["gates"])
    if failures:
        for failure in failures:
            print(f"gate failure: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        "gates: "
        + " ".join(f"{k}={v}" for k, v in payload["gates"].items())
    )


if __name__ == "__main__":
    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "src")
    )
    main()
