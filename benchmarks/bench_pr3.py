"""All-stage parallelism benchmark — writes ``BENCH_PR3.json``.

Measures the scaled Figure-6 workloads three ways:

* ``serial`` — the fused engine (the speedup baseline);
* ``seed`` — the parallel executor with stages 1 and 5 still serial
  (``parallel_stage1=False, merge_output=False``), i.e. the pre-PR
  configuration whose Amdahl ceiling this PR removes;
* ``allstage`` — the full pipeline: partitioned HtY build, fused
  chunk compute, and merge-based output sorting.

The machine-readable record lands at the repo root as ``BENCH_PR3.json``
(per-stage seconds, end-to-end speedups, worker and CPU counts) so CI
can upload it as an artifact, together with two observability
artifacts from one extra traced all-stage run: ``TRACE_SAMPLE.json``
(Chrome trace-event JSON — open in Perfetto) and
``BENCH_PR3_metrics.json`` (the :class:`repro.obs.MetricsRegistry`
flat metric dump).  ``--quick`` runs one workload with one
repeat for the CI smoke job.  Speedup *assertions* are host-gated and
live in ``bench_fig6_scalability.py``; this script only records what it
measures — on a single-core container the parallel numbers will simply
show the overhead floor.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core import contract
from repro.datasets import make_case
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import parallel_sparta

WORKERS = 4
QUICK_WORKLOADS = (("nips", 1),)
FULL_WORKLOADS = (("nips", 1), ("chicago", 2), ("uracil", 3))
BENCH_SCALE = 0.2


def _stage_seconds(profile):
    return {s.value: secs for s, secs in profile.stage_seconds.items()}


def _best_serial(case, repeats):
    best_wall, best = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = contract(
            case.x, case.y, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, best = wall, res
    return best_wall, best


def _best_parallel(case, backend, repeats, **flags):
    best_wall, best = float("inf"), None
    for _ in range(repeats):
        par = parallel_sparta(
            case.x, case.y, case.cx, case.cy,
            threads=WORKERS, backend=backend, **flags,
        )
        if par.wall_seconds < best_wall:
            best_wall, best = par.wall_seconds, par
    return best_wall, best


def measure_workload(name, modes, *, backend, repeats):
    case = make_case(name, modes, scale=BENCH_SCALE, seed=0)
    serial_wall, serial = _best_serial(case, repeats)
    seed_wall, seed = _best_parallel(
        case, backend, repeats,
        parallel_stage1=False, merge_output=False,
    )
    all_wall, allstage = _best_parallel(case, backend, repeats)
    assert allstage.result.tensor.allclose(serial.tensor)
    return {
        "workload": f"{name}-{modes}mode",
        "nnz_x": int(case.x.nnz),
        "nnz_y": int(case.y.nnz),
        "serial": {
            "wall_seconds": serial_wall,
            "stage_seconds": _stage_seconds(serial.profile),
        },
        "seed": {
            "wall_seconds": seed_wall,
            "stage_seconds": _stage_seconds(seed.result.profile),
            "speedup": serial_wall / max(seed_wall, 1e-12),
        },
        "allstage": {
            "wall_seconds": all_wall,
            "stage_seconds": _stage_seconds(allstage.result.profile),
            "speedup": serial_wall / max(all_wall, 1e-12),
            "load_imbalance": allstage.load_imbalance,
        },
    }


def run(*, quick=False, backend=None):
    cores = os.cpu_count() or 1
    if backend is None:
        backend = "process" if cores >= 4 else "thread"
    repeats = 1 if quick else 3
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    rows = [
        measure_workload(name, modes, backend=backend, repeats=repeats)
        for name, modes in workloads
    ]
    return {
        "bench": "pr3_allstage_parallelism",
        "workers": WORKERS,
        "cpu_cores": cores,
        "backend": backend,
        "quick": quick,
        "scale": BENCH_SCALE,
        "workloads": rows,
    }


def write_observability_artifacts(root, *, backend, quick):
    """One traced all-stage run → trace + metrics artifacts for CI.

    The timed measurements above run untraced; this extra run exists
    only to produce the artifacts, so its wall time is irrelevant.
    """
    name, modes = (QUICK_WORKLOADS if quick else FULL_WORKLOADS)[0]
    case = make_case(name, modes, scale=BENCH_SCALE, seed=0)
    tracer = Tracer()
    par = parallel_sparta(
        case.x, case.y, case.cx, case.cy,
        threads=WORKERS, backend=backend, tracer=tracer,
    )
    trace_path = root / "TRACE_SAMPLE.json"
    tracer.write(trace_path)
    metrics_path = root / "BENCH_PR3_metrics.json"
    MetricsRegistry.from_profile(par.result.profile).write(metrics_path)
    return trace_path, metrics_path


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="one workload, one repeat (CI smoke mode)",
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default=None,
        help="override the cpu-count-based backend choice",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, backend=args.backend)
    root = Path(__file__).resolve().parent.parent
    path = root / "BENCH_PR3.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"{payload['backend']} backend, {payload['workers']} workers, "
        f"{payload['cpu_cores']} cores"
    )
    for row in payload["workloads"]:
        print(
            f"  {row['workload']}: serial "
            f"{row['serial']['wall_seconds']:.3f}s | seed "
            f"{row['seed']['speedup']:.2f}x | all-stage "
            f"{row['allstage']['speedup']:.2f}x"
        )
    print(f"wrote {path}")
    trace_path, metrics_path = write_observability_artifacts(
        root, backend=payload["backend"], quick=args.quick
    )
    print(f"wrote {trace_path}")
    print(f"wrote {metrics_path}")


if __name__ == "__main__":
    main()
