"""Ablation — HiCOO storage for X (the paper's format follow-up).

Measures Sparta with X held in COO vs HiCOO: identical outputs, reduced
X footprint and stage-1/2 traffic on clustered tensors.
"""

from __future__ import annotations

import pytest

from repro.core import sparta
from repro.core.profile import DataObject
from repro.tensor import random_tensor_fibered
from repro.tensor.hicoo import HiCOOTensor


@pytest.fixture(scope="module")
def clustered_pair():
    # Fibered X clusters non-zeros -> HiCOO compresses.
    x = random_tensor_fibered((64, 64, 32, 32), 6000, 2, 40, seed=171)
    y = random_tensor_fibered((32, 32, 24, 24), 9000, 2, 800, seed=172)
    return x, y


@pytest.mark.parametrize("x_format", ["coo", "hicoo"])
def test_sparta_x_format(benchmark, clustered_pair, x_format):
    x, y = clustered_pair
    res = benchmark.pedantic(
        lambda: sparta(x, y, (2, 3), (0, 1), x_format=x_format),
        rounds=2,
        iterations=1,
    )
    assert res.nnz > 0


def test_hicoo_reduces_x_footprint(clustered_pair):
    x, y = clustered_pair
    coo_run = sparta(x, y, (2, 3), (0, 1))
    hic_run = sparta(x, y, (2, 3), (0, 1), x_format="hicoo")
    assert hic_run.tensor.allclose(coo_run.tensor)
    assert (
        hic_run.profile.object_bytes[DataObject.X]
        < coo_run.profile.object_bytes[DataObject.X]
    )
    ratio = hic_run.profile.counters["x_compression_x1000"] / 1000
    assert ratio > 1.0
    # Sanity against the format's own accounting.
    direct = HiCOOTensor.from_coo(x)
    assert direct.compression_ratio() == pytest.approx(ratio, rel=0.15)
