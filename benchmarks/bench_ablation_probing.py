"""Ablation — separate chaining vs open-addressing (linear probing).

The paper uses separate chaining for HtY/HtA and cites SpGEMM work with
"more advanced algorithms" as a possible improvement. This bench runs
the same build+probe stream through both tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashtable import (
    ChainingHashTable,
    LinearProbingHashTable,
    default_num_buckets,
)

N_KEYS = 20_000
N_PROBES = 60_000


@pytest.fixture(scope="module")
def streams():
    rng = np.random.default_rng(17)
    keys = rng.choice(10**9, size=N_KEYS, replace=False)
    probes = np.concatenate(
        (
            rng.choice(keys, size=N_PROBES // 2),
            rng.choice(10**9, size=N_PROBES // 2),  # mostly misses
        )
    ).astype(np.int64)
    return keys.astype(np.int64), probes


def test_chaining_build_probe(benchmark, streams):
    keys, probes = streams

    def run():
        t = ChainingHashTable(
            default_num_buckets(N_KEYS), capacity_hint=N_KEYS
        )
        t.insert_many(keys)
        return t.lookup_many(probes)

    out = benchmark(run)
    assert (out[: N_PROBES // 2] >= 0).all()


def test_linear_probing_build_probe(benchmark, streams):
    keys, probes = streams

    def run():
        t = LinearProbingHashTable(N_KEYS * 2, capacity_hint=N_KEYS)
        t.insert_many(keys)
        return t.lookup_many(probes)

    out = benchmark(run)
    assert (out[: N_PROBES // 2] >= 0).all()


def test_tables_agree(streams):
    keys, probes = streams
    chain = ChainingHashTable(default_num_buckets(N_KEYS))
    probe = LinearProbingHashTable(N_KEYS * 2)
    chain.insert_many(keys)
    probe.insert_many(keys)
    a = chain.lookup_many(probes) >= 0
    b = probe.lookup_many(probes) >= 0
    assert np.array_equal(a, b)
