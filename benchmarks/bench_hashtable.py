"""Hash-table microbenches: batch ops scaling and probe consistency.

Pins the claims the parallel stage-1 path rests on:

* ``insert_many`` / ``lookup_many`` beat per-key scalar loops by a wide
  margin (the chain walks are the inner loop of HtY builds and stage-2
  searches);
* ``ChainingHashTable.merge_partials`` over k sorted key chunks costs
  about the same as one ``insert_many`` of the union — the stage-1 merge
  adds no superlinear overhead as worker counts grow;
* probe counters stay consistent between batch and scalar paths:
  ``lookup_many`` charges exactly what per-key ``lookup`` charges, and
  ``insert_many`` matches scalar ``insert`` whenever the batch's keys
  land in distinct buckets (within one bucket a scalar loop re-walks the
  chain its own batch grew — g(g-1)/2 extra comparisons for a g-key
  group — which the vectorized splice never does).

Run directly (``python benchmarks/bench_hashtable.py``) to write
``results/BENCH_hashtable.json``; under pytest the same measurements run
as assertions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.hashtable.chaining import ChainingHashTable, _hash_keys

SIZES = (1_000, 10_000, 100_000)
MERGE_WAYS = (1, 2, 4, 8)
KEY_SPACE = 1 << 40


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _keys(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.sort(
        rng.choice(KEY_SPACE, size=n, replace=False).astype(np.int64)
    )


def measure_batch_vs_scalar(n=20_000):
    """insert/lookup wall time, vectorized vs per-key Python loop."""
    keys = _keys(n)
    rng = np.random.default_rng(1)
    queries = rng.integers(0, KEY_SPACE, size=n).astype(np.int64)

    def batch_insert():
        t = ChainingHashTable(1 << 15, capacity_hint=n)
        t.insert_many(keys)
        return t

    def scalar_insert():
        t = ChainingHashTable(1 << 15, capacity_hint=n)
        for k in keys:
            t.insert(int(k))
        return t

    table = batch_insert()

    def batch_lookup():
        table.lookup_many(queries)

    def scalar_lookup():
        for k in queries:
            table.lookup(int(k))

    return {
        "n": n,
        "insert_many_seconds": _best_of(batch_insert),
        "insert_scalar_seconds": _best_of(scalar_insert, repeats=1),
        "lookup_many_seconds": _best_of(batch_lookup),
        "lookup_scalar_seconds": _best_of(scalar_lookup, repeats=1),
    }


def measure_scaling():
    """insert_many / lookup_many wall time across table sizes."""
    rows = []
    for n in SIZES:
        keys = _keys(n, seed=n)
        rng = np.random.default_rng(n + 1)
        queries = rng.integers(0, KEY_SPACE, size=n).astype(np.int64)

        def insert():
            t = ChainingHashTable(
                max(1 << (n - 1).bit_length(), 16), capacity_hint=n
            )
            t.insert_many(keys)
            return t

        table = insert()
        rows.append(
            {
                "n": n,
                "insert_many_seconds": _best_of(insert),
                "lookup_many_seconds": _best_of(
                    lambda: table.lookup_many(queries)
                ),
                "load_factor": table.load_factor,
            }
        )
    return rows


def measure_merge_partials(n=100_000):
    """merge_partials cost vs one-shot insert_many, across way counts."""
    keys = _keys(n, seed=3)

    def one_shot():
        t = ChainingHashTable(
            max(1 << (n - 1).bit_length(), 16), capacity_hint=n
        )
        t.insert_many(keys)
        return t

    base = _best_of(one_shot)
    rows = []
    for ways in MERGE_WAYS:
        chunks = [np.sort(c) for c in np.array_split(keys, ways)]
        secs = _best_of(
            lambda: ChainingHashTable.merge_partials(chunks)
        )
        rows.append(
            {
                "ways": ways,
                "merge_seconds": secs,
                "one_shot_seconds": base,
                "overhead": secs / base,
            }
        )
    return rows


def probe_consistency(n=5_000):
    """Batch-vs-scalar probe counter deltas under identical streams."""
    rng = np.random.default_rng(7)
    keys = _keys(n, seed=9)
    queries = rng.integers(0, KEY_SPACE, size=n).astype(np.int64)

    table = ChainingHashTable(1 << 12, capacity_hint=n)
    table.insert_many(keys)
    p0 = table.probes
    batch_slots = table.lookup_many(queries)
    lookup_batch = table.probes - p0
    p0 = table.probes
    scalar_slots = np.array([table.lookup(int(k)) for k in queries])
    lookup_scalar = table.probes - p0
    assert np.array_equal(batch_slots, scalar_slots)

    # Distinct-bucket insert stream: at most one key per bucket, so the
    # scalar loop never walks a chain its own batch grew.
    num_buckets = 1 << 13
    cand = _keys(4 * n, seed=11)
    buckets = _hash_keys(cand, num_buckets)
    _, first = np.unique(buckets, return_index=True)
    distinct = np.sort(cand[first])
    b_table = ChainingHashTable(num_buckets, capacity_hint=distinct.size)
    b_table.insert_many(distinct)
    s_table = ChainingHashTable(num_buckets, capacity_hint=distinct.size)
    for k in distinct:
        s_table.insert(int(k))
    return {
        "lookup_many_probes": int(lookup_batch),
        "lookup_scalar_probes": int(lookup_scalar),
        "insert_many_probes": int(b_table.probes),
        "insert_scalar_probes": int(s_table.probes),
        "distinct_bucket_keys": int(distinct.size),
    }


# ----------------------------------------------------------------------
# pytest entry points


def test_probe_counters_consistent():
    row = probe_consistency()
    assert row["lookup_many_probes"] == row["lookup_scalar_probes"]
    assert row["insert_many_probes"] == row["insert_scalar_probes"]


def test_batch_ops_beat_scalar():
    row = measure_batch_vs_scalar(n=5_000)
    assert (
        row["insert_scalar_seconds"] > 3.0 * row["insert_many_seconds"]
    ), row
    assert (
        row["lookup_scalar_seconds"] > 3.0 * row["lookup_many_seconds"]
    ), row


def test_merge_partials_overhead_bounded():
    rows = measure_merge_partials(n=30_000)
    # Merging k sorted chunks costs at most a few times the one-shot
    # build (one extra concatenate + argsort of the union).
    assert all(r["overhead"] < 4.0 for r in rows), rows


# ----------------------------------------------------------------------


def main():
    payload = {
        "batch_vs_scalar": measure_batch_vs_scalar(),
        "scaling": measure_scaling(),
        "merge_partials": measure_merge_partials(),
        "probe_consistency": probe_consistency(),
    }
    out = Path(__file__).resolve().parent.parent / "results"
    out.mkdir(exist_ok=True)
    path = out / "BENCH_hashtable.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    b = payload["batch_vs_scalar"]
    print(
        f"insert_many {b['insert_many_seconds']:.4f}s vs scalar "
        f"{b['insert_scalar_seconds']:.4f}s "
        f"({b['insert_scalar_seconds'] / b['insert_many_seconds']:.1f}x)"
    )
    print(
        f"lookup_many {b['lookup_many_seconds']:.4f}s vs scalar "
        f"{b['lookup_scalar_seconds']:.4f}s "
        f"({b['lookup_scalar_seconds'] / b['lookup_many_seconds']:.1f}x)"
    )
    for r in payload["merge_partials"]:
        print(
            f"merge_partials {r['ways']}-way: {r['merge_seconds']:.4f}s "
            f"({r['overhead']:.2f}x one-shot)"
        )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
