"""Ablation — HtY bucket count / load factor (§3.3).

The separate-chaining table uses fixed-size buckets; chains grow as the
load factor rises and every probe walks them. This bench sweeps bucket
counts around the default (load factor ~1) to show the sensitivity the
default avoids.
"""

from __future__ import annotations

import pytest

from repro.datasets import make_case
from repro.hashtable import HashTensor


@pytest.fixture(scope="module")
def case():
    return make_case("chicago", 2, scale=0.2, seed=0)


@pytest.mark.parametrize("load_factor", [0.25, 1.0, 8.0, 64.0])
def test_hty_bucket_sweep(benchmark, case, load_factor):
    from repro.core.plan import ContractionPlan
    from repro.tensor import linearize

    plan = ContractionPlan.create(case.x, case.y, case.cx, case.cy)
    hty = HashTensor.from_coo(case.y, plan.cy)
    groups = max(hty.num_groups, 1)
    num_buckets = max(int(groups / load_factor), 1)
    probes = linearize(case.x.indices[:, plan.cx], plan.contract_dims)

    def build_and_probe():
        table = HashTensor.from_coo(
            case.y, plan.cy, num_buckets=num_buckets
        )
        return table.lookup_many(probes)

    gids = benchmark(build_and_probe)
    assert gids.shape[0] == case.x.nnz


def test_chain_lengths_balanced(case):
    """At load factor ~1 the default hashing keeps chains short."""
    from repro.core.plan import ContractionPlan

    plan = ContractionPlan.create(case.x, case.y, case.cx, case.cy)
    hty = HashTensor.from_coo(case.y, plan.cy)
    lengths = hty.table.chain_lengths()
    assert lengths.max() <= 16, f"max chain {lengths.max()} too long"
