"""Ablation — the three index-search structures for Y.

The paper's choice space for stage 2:

* **linear** — scan sorted COO non-zeros per probe (Algorithm 1);
* **binary** — binary search over sorted distinct contract keys (what a
  CSF-style structure offers when the contract modes are leading);
* **hash** — HtY's O(1) expected probe (Algorithm 2).

Hash must beat binary must beat linear on search-heavy workloads.
"""

from __future__ import annotations

import time

import pytest

from repro.core.looped import looped_contract


def _run(case, y_structure):
    return looped_contract(
        case.x, case.y, case.cx, case.cy,
        engine_name=f"ablation_{y_structure}",
        y_structure=y_structure,
        accumulator="hash",
    )


@pytest.mark.parametrize(
    "structure", ["coo", "coo_bsearch", "hash"]
)
def test_search_structure(benchmark, uracil3, structure):
    res = benchmark.pedantic(
        lambda: _run(uracil3, structure), rounds=2, iterations=1
    )
    assert res.nnz > 0


def test_results_identical(uracil3):
    a = _run(uracil3, "coo")
    b = _run(uracil3, "coo_bsearch")
    c = _run(uracil3, "hash")
    assert a.tensor.allclose(b.tensor)
    assert b.tensor.allclose(c.tensor)


def test_search_ordering(uracil3):
    """Wall-clock order on the search-dominated case: linear slowest."""
    times = {}
    for structure in ("coo", "coo_bsearch"):
        t0 = time.perf_counter()
        _run(uracil3, structure)
        times[structure] = time.perf_counter() - t0
    assert times["coo_bsearch"] < times["coo"]


def test_probe_counts_ordered(uracil3):
    linear = _run(uracil3, "coo").profile.counters["search_probes"]
    binary = _run(
        uracil3, "coo_bsearch"
    ).profile.counters["search_probes"]
    hashed = _run(uracil3, "hash").profile.counters["search_probes"]
    assert hashed < binary < linear
