"""Planner-vs-hand-picked schedule benchmark — writes ``BENCH_PR7.json``.

For every bench-matrix workload (the scaled Figure-6 trio) we measure
three *hand-picked* schedules — the fused serial engine, thread x 4 and
process x 4 — and the cost-model planner's own pick via
``contract(plan="auto", max_workers=4)``.  The planner is only allowed
to choose *among* these schedule shapes, so its wall time should track
whichever hand-picked configuration wins on this host.

Gates (also runnable as pytest):

* ``planner_within_10pct_of_best`` — on every workload the planner's
  end-to-end wall (statistics + decision + chosen engine) is within
  10% of the best hand-picked wall;
* ``uracil_3mode_speedup_vs_serial`` — the uracil-3mode small case
  (BENCH_PR3's 0.81x regression) stays >= 1.0x against serial: the
  wall of the *schedule the planner chose*, re-run through its
  explicit knobs, may not lose to the fused serial engine.  When the
  planner routes serial (the fix for the original regression) the two
  schedules coincide and the gate passes exactly; if a coefficient
  drift ever routes uracil back to the parallel machinery, the gate
  reproduces the 0.81x-style loss and fails.

The machine-readable record lands at the repo root as
``BENCH_PR7.json`` (per-schedule walls, the planner's chosen flag and
candidate count, gate verdicts) so the bench-smoke job can upload it as
an artifact.  ``--quick`` runs one workload with fewer repeats.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import contract
from repro.datasets import make_case
from repro.parallel import parallel_sparta

WORKERS = 4
BENCH_SCALE = 0.2
QUICK_WORKLOADS = (("nips", 1),)
FULL_WORKLOADS = (("nips", 1), ("chicago", 2), ("uracil", 3))
TOLERANCE = 1.10  # planner wall must be <= 1.10x best hand-picked


def _best_of_n_interleaved(fns, repeats):
    """Best-of-N walls for several configs, sampled round-robin.

    Interleaving the repeats means clock-speed / load drift over the
    measurement window lands on every configuration equally instead of
    biasing whichever block ran in the quiet (or noisy) stretch.
    """
    best = {label: float("inf") for label in fns}
    order = list(fns)
    for r in range(repeats):
        # rotate the start position so no config always runs in the
        # wake of another's pool teardown
        for i in range(len(order)):
            label = order[(r + i) % len(order)]
            t0 = time.perf_counter()
            fns[label]()
            best[label] = min(best[label], time.perf_counter() - t0)
    return best


def _sorted_bits(tensor):
    t = tensor.sort()
    return np.asarray(t.indices), t.values.view(np.uint64)


def measure_workload(name, modes, *, repeats):
    case = make_case(name, modes, scale=BENCH_SCALE, seed=0)

    def serial():
        return contract(
            case.x, case.y, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )

    def thread():
        return parallel_sparta(
            case.x, case.y, case.cx, case.cy,
            threads=WORKERS, backend="thread", planner="off",
        )

    def process():
        return parallel_sparta(
            case.x, case.y, case.cx, case.cy,
            threads=WORKERS, backend="process", planner="off",
        )

    def planner():
        return contract(
            case.x, case.y, case.cx, case.cy,
            plan="auto", max_workers=WORKERS,
        )

    # Bit-identity first: the planner may only change which engine
    # runs, never what it computes.
    ref = serial()
    auto = planner()
    ref_idx, ref_bits = _sorted_bits(ref.tensor)
    auto_idx, auto_bits = _sorted_bits(auto.tensor)
    assert np.array_equal(ref_idx, auto_idx), f"{case.label}: indices"
    assert np.array_equal(ref_bits, auto_bits), f"{case.label}: values"

    fns = {
        "serial": serial,
        f"thread_x{WORKERS}": thread,
        f"process_x{WORKERS}": process,
        "planner": planner,
    }
    chosen_engine = auto.profile.flags["planner"].split(":", 1)[1]
    chosen_workers = int(auto.profile.counters["planner_workers"])
    if chosen_engine == "serial":
        chosen_label = "serial"
    else:
        chosen_label = f"{chosen_engine}_x{chosen_workers}"
    if chosen_label not in fns:
        # The planner picked a worker count outside the hand-picked
        # set; measure that exact schedule too for the pick-quality
        # gate (no planning on the hot path).
        fns[chosen_label] = lambda: parallel_sparta(
            case.x, case.y, case.cx, case.cy,
            threads=chosen_workers, backend=chosen_engine,
            planner="off",
        )
    walls = _best_of_n_interleaved(fns, repeats)
    planner_wall = walls.pop("planner")
    chosen_wall = walls[chosen_label]
    hand = {
        k: v for k, v in walls.items()
        if k in ("serial", f"thread_x{WORKERS}", f"process_x{WORKERS}")
    }
    best_label = min(hand, key=hand.get)
    best_wall = hand[best_label]
    return {
        "workload": f"{name}-{modes}mode",
        "nnz_x": int(case.x.nnz),
        "nnz_y": int(case.y.nnz),
        "hand_picked": hand,
        "best_hand_picked": {
            "config": best_label,
            "wall_seconds": best_wall,
        },
        "planner": {
            "wall_seconds": planner_wall,
            "chosen_schedule": chosen_label,
            "chosen_schedule_wall_seconds": chosen_wall,
            "chose": auto.profile.flags["planner"],
            "workers": int(auto.profile.counters["planner_workers"]),
            "candidates": int(
                auto.profile.counters["planner_candidates"]
            ),
            "est_products": int(
                auto.profile.counters["planner_est_products"]
            ),
        },
        "planner_vs_best": planner_wall / max(best_wall, 1e-12),
        "speedup_vs_serial": hand["serial"] / max(chosen_wall, 1e-12),
        "within_10pct_of_best": planner_wall <= TOLERANCE * best_wall,
    }


def run(*, quick=False):
    repeats = 5 if quick else 15
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    rows = [
        measure_workload(name, modes, repeats=repeats)
        for name, modes in workloads
    ]
    uracil = next(
        (r for r in rows if r["workload"] == "uracil-3mode"), None
    )
    return {
        "bench": "pr7_planner_vs_hand_picked",
        "workers": WORKERS,
        "scale": BENCH_SCALE,
        "quick": quick,
        "tolerance": TOLERANCE,
        "workloads": rows,
        "gates": {
            "planner_within_10pct_of_best": all(
                r["within_10pct_of_best"] for r in rows
            ),
            # Quick mode doesn't run uracil: record the gate as
            # explicitly "skipped", never null — a null in the artifact
            # means the gate silently vanished and check_gates fails.
            "uracil_3mode_speedup_vs_serial": (
                uracil["speedup_vs_serial"] if uracil else "skipped"
            ),
        },
    }


def check_gates(gates):
    """Validate a BENCH_PR7 ``gates`` dict; return failure strings.

    A gate value may be a measurement, ``True``/``False`` or the string
    ``"skipped"`` (deliberately not run, e.g. ``--quick``). ``None`` is
    always a failure: it means a gate was dropped without being marked
    skipped, which historically let regressions slide through CI as
    vacuous passes.
    """
    failures = []
    for name, value in gates.items():
        if value is None:
            failures.append(
                f"{name}: null gate value (skipped gates must be "
                f"recorded as 'skipped')"
            )
    if not gates.get("planner_within_10pct_of_best"):
        failures.append("planner_within_10pct_of_best: False")
    u = gates.get("uracil_3mode_speedup_vs_serial")
    if isinstance(u, (int, float)) and u < 1.0:
        failures.append(
            f"uracil_3mode_speedup_vs_serial: {u:.2f}x < 1.0x"
        )
    return failures


def test_planner_within_10pct_of_best_hand_picked():
    for name, modes in FULL_WORKLOADS:
        row = measure_workload(name, modes, repeats=15)
        assert row["within_10pct_of_best"], (
            f"{row['workload']}: planner {row['planner']['wall_seconds']:.4f}s "
            f"(chose {row['planner']['chose']}) is "
            f"{row['planner_vs_best']:.2f}x the best hand-picked "
            f"({row['best_hand_picked']['config']} "
            f"{row['best_hand_picked']['wall_seconds']:.4f}s)"
        )


def test_uracil_small_case_not_regressed():
    row = measure_workload("uracil", 3, repeats=15)
    assert row["speedup_vs_serial"] >= 1.0, (
        f"uracil-3mode planner pick {row['planner']['chose']} is "
        f"{row['speedup_vs_serial']:.2f}x vs serial (< 1.0x)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="one workload, fewer repeats (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    root = Path(__file__).resolve().parent.parent
    path = root / "BENCH_PR7.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for row in payload["workloads"]:
        print(
            f"  {row['workload']:<16} planner "
            f"{row['planner']['wall_seconds']:.4f}s "
            f"({row['planner']['chose']}) | best hand "
            f"{row['best_hand_picked']['wall_seconds']:.4f}s "
            f"({row['best_hand_picked']['config']}) | "
            f"{row['planner_vs_best']:.2f}x of best"
        )
    gates = payload["gates"]
    u = gates["uracil_3mode_speedup_vs_serial"]
    print(
        f"gates: within-10pct={gates['planner_within_10pct_of_best']} "
        f"uracil-vs-serial="
        + (f"{u:.2f}x" if isinstance(u, (int, float)) else str(u))
    )
    print(f"wrote {path}")
    failures = check_gates(gates)
    if failures:
        for failure in failures:
            print(f"gate failure: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
