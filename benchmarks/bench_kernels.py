"""Kernel micro-benchmarks: TTM, TTV, MTTKRP and the contraction engines.

Baseline throughput numbers for the sparse-tensor x dense kernels the
paper's intro contrasts SpTC against, plus a vectorized-vs-sparta engine
comparison on the same workload.

Also home of the PR-6 codegen gates: the per-signature generated
kernels (``repro/core/codegen/``) must beat the generic fused kernel by
a >=2x geometric mean on the ``bench_fastpath`` workloads, measured on
the kernel region itself (stages 2–4 on pre-built ``px``/HtY — input
processing is identical either way and would dilute the ratio), and
the planner-lite guard must bring the small uracil-3mode contraction
back to >=1.0x vs serial. Run directly
(``python benchmarks/bench_kernels.py``) to write ``BENCH_PR6.json`` at
the repo root; under pytest the same measurements run as assertions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import contract
from repro.core.common import prepare_x
from repro.core.htycache import cached_plan
from repro.core.kernels import assemble_fused, fused_compute
from repro.core.profile import RunProfile
from repro.hashtable.tensor_table import HashTensor
from repro.tensor import random_tensor_fibered
from repro.tensor.ops import mttkrp, ttm, ttv


@pytest.fixture(scope="module")
def tensor():
    return random_tensor_fibered((80, 90, 100), 40_000, 1, 60, seed=241)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_ttm(benchmark, tensor, rng):
    m = rng.standard_normal((16, tensor.shape[1]))
    out = benchmark(ttm, tensor, m, 1)
    assert out.shape == (80, 16, 100)


def test_ttv(benchmark, tensor, rng):
    v = rng.standard_normal(tensor.shape[2])
    out = benchmark(ttv, tensor, v, 2)
    assert out.order == 2


def test_mttkrp(benchmark, tensor, rng):
    factors = [rng.standard_normal((d, 8)) for d in tensor.shape]
    out = benchmark(mttkrp, tensor, factors, 0)
    assert out.shape == (80, 8)


def test_engine_vectorized(benchmark, chicago2):
    res = benchmark.pedantic(
        lambda: contract(
            chicago2.x, chicago2.y, chicago2.cx, chicago2.cy,
            method="vectorized",
        ),
        rounds=3,
        iterations=1,
    )
    assert res.nnz > 0


def test_engine_sparta_element_granularity(benchmark, chicago2):
    """The faithful per-element loop — slower, kept for semantics."""
    res = benchmark.pedantic(
        lambda: contract(
            chicago2.x, chicago2.y, chicago2.cx, chicago2.cy,
            method="sparta", swap_larger_to_y=False,
            granularity="element",
        ),
        rounds=1,
        iterations=1,
    )
    assert res.nnz > 0


def test_two_phase_symbolic(benchmark, chicago2):
    from repro.core import two_phase_contract

    res = benchmark.pedantic(
        lambda: two_phase_contract(
            chicago2.x, chicago2.y, chicago2.cx, chicago2.cy
        ),
        rounds=2,
        iterations=1,
    )
    assert res.result.nnz > 0


# ----------------------------------------------------------------------
# PR-6 codegen gates


def _kernel_region(case):
    """Pre-build px/HtY once; return a stages-2–4 runner per codegen."""
    plan = cached_plan(case.x, case.y, case.cx, case.cy)
    px = prepare_x(case.x, plan, RunProfile("bench-prep"))
    hty = HashTensor.from_coo(case.y, plan.cy)

    def run(codegen):
        profile = RunProfile("bench")
        fr = fused_compute(
            px,
            hty,
            y_structure="hash",
            accumulator="hash",
            profile=profile,
            codegen=codegen,
        )
        z = assemble_fused(
            fr.out_fgrp,
            fr.out_fy,
            fr.out_vals,
            px.fx_rows,
            plan,
            profile,
            codegen=codegen,
        )
        return z, profile

    return run


def measure_codegen():
    """Kernel-region timings, generic fused vs generated kernels."""
    # Both pytest and direct execution put benchmarks/ on sys.path.
    from bench_fastpath import FUSED_CASES, _best_of, _fused_case

    rows = []
    for dataset, n_modes in FUSED_CASES:
        case = _fused_case(dataset, n_modes)
        run = _kernel_region(case)
        z_gen, _ = run(False)
        z_cg, p_cg = run(True)  # warm the kernel cache before timing
        assert np.array_equal(z_cg.indices, z_gen.indices)
        assert np.array_equal(
            z_cg.values.view(np.uint64), z_gen.values.view(np.uint64)
        ), f"{case.label}: codegen kernel not bit-identical"
        t_generic = _best_of(lambda: run(False), repeats=3)
        t_codegen = _best_of(lambda: run(True), repeats=3)
        strategies = {
            k: v for k, v in p_cg.counters.items()
            if k.startswith("codegen_")
        }
        rows.append(
            {
                "case": case.label,
                "nnz_x": case.x.nnz,
                "nnz_y": case.y.nnz,
                "nnz_z": int(z_cg.nnz),
                "generic_seconds": t_generic,
                "codegen_seconds": t_codegen,
                "speedup": t_generic / t_codegen,
                "strategies": strategies,
            }
        )
    return rows


def measure_planner_uracil():
    """Small uracil-3mode: planner-auto parallel vs the serial engine.

    BENCH_PR3 showed this case at 0.81x — the parallel machinery's
    start-up outweighed the tiny contraction. The planner-lite guard
    must route it to the serial fused path and recover >=1.0x.
    """
    from repro.datasets import make_case
    from repro.parallel import parallel_sparta

    case = make_case("uracil", 3, scale=0.2, seed=0)

    def serial():
        return contract(
            case.x, case.y, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )

    def parallel():
        return parallel_sparta(
            case.x, case.y, case.cx, case.cy,
            threads=4, planner="auto",
        )

    ref = serial()
    par = parallel()
    assert np.array_equal(
        par.result.tensor.sort().values.view(np.uint64),
        ref.tensor.sort().values.view(np.uint64),
    )
    t_serial = _best_of_n(serial, 7)
    t_parallel = _best_of_n(parallel, 7)
    return {
        "case": case.label,
        "planner": par.result.profile.flags.get("planner", ""),
        "backend": par.backend,
        "est_products": int(
            par.result.profile.counters.get("planner_est_products", 0)
        ),
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "speedup_vs_serial": t_serial / t_parallel,
    }


def _best_of_n(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def test_codegen_speedup_geomean():
    rows = measure_codegen()
    g = _geomean([r["speedup"] for r in rows])
    detail = ", ".join(
        f"{r['case']}: {r['speedup']:.2f}x" for r in rows
    )
    assert g >= 2.0, f"codegen geomean {g:.2f}x < 2x ({detail})"


def test_planner_restores_uracil_small_case():
    row = measure_planner_uracil()
    assert row["planner"] == "serial_small", row
    assert row["speedup_vs_serial"] >= 1.0, (
        f"uracil-3mode planner route {row['speedup_vs_serial']:.2f}x "
        f"< 1.0x vs serial"
    )


def main():
    codegen_rows = measure_codegen()
    planner_row = measure_planner_uracil()
    payload = {
        "codegen_kernel_region": codegen_rows,
        "codegen_geomean": _geomean(
            [r["speedup"] for r in codegen_rows]
        ),
        "planner_uracil": planner_row,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for row in codegen_rows:
        print(
            f"{row['case']:<24} generic {row['generic_seconds']:.4f}s  "
            f"codegen {row['codegen_seconds']:.4f}s  "
            f"{row['speedup']:.2f}x  {row['strategies']}"
        )
    print(f"codegen geomean: {payload['codegen_geomean']:.2f}x")
    print(
        f"{planner_row['case']:<24} serial "
        f"{planner_row['serial_seconds']:.4f}s  planner-auto "
        f"{planner_row['parallel_seconds']:.4f}s  "
        f"{planner_row['speedup_vs_serial']:.2f}x "
        f"({planner_row['planner']})"
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
